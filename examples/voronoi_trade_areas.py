"""Trade areas on a road network via network Voronoi cells.

The bichromatic example of the paper (Fig. 1b) asks which residential
blocks a restaurant attracts.  The network Voronoi diagram answers the
dual, planning-level question in one sweep: which part of the city does
each existing restaurant *own* (every node it is the nearest restaurant
of), and which competitors border it?  The script then drops a new
restaurant on the busiest border and shows its reverse nearest
neighbors -- the customers it steals -- computed both by the paper's
eager algorithm and by the Voronoi-neighbor method, which must agree.

Run with:  python examples/voronoi_trade_areas.py
"""

from repro import GraphDatabase
from repro.datasets.spatial import generate_spatial
from repro.datasets.workload import place_node_points
from repro.voronoi.nvd import NetworkVoronoi
from repro.voronoi.rnn import voronoi_rnn

NUM_NODES = 2_500
RESTAURANT_DENSITY = 0.004


def main() -> None:
    print(f"generating a {NUM_NODES}-junction road network...")
    city = generate_spatial(NUM_NODES, seed=3)
    restaurants = place_node_points(city, RESTAURANT_DENSITY, seed=4,
                                    first_id=100)
    db = GraphDatabase(city, restaurants, node_order="hilbert")
    print(f"  {city.num_nodes} junctions, {city.num_edges} road segments, "
          f"{len(restaurants)} restaurants")

    print("\nbuilding the network Voronoi diagram (one multi-source sweep)...")
    nvd = NetworkVoronoi.build(db.view)
    sizes = nvd.cell_sizes()
    adjacency = nvd.adjacency(db.view)
    print(f"{'restaurant':>10s} {'junctions owned':>16s} {'rivals on border':>17s}")
    for rid in sorted(sizes, key=sizes.get, reverse=True):
        print(f"{rid:>10d} {sizes[rid]:>16d} {len(adjacency[rid]):>17d}")

    # Site selection: next to the most isolated incumbent (the one whose
    # nearest rival is farthest away) -- a new restaurant there becomes
    # that incumbent's new nearest neighbor, i.e. its RNN.
    def isolation(rid: int) -> float:
        node = restaurants.node_of(rid)
        return min(
            db.network_distance(node, restaurants.node_of(other))
            for other in restaurants.ids() if other != rid
        )

    lonely = max(restaurants.ids(), key=isolation)
    lonely_node = restaurants.node_of(lonely)
    new_site = next(
        nbr for nbr, _ in city.neighbors(lonely_node)
        if nvd.owners_of(nbr) == (lonely,)
    )
    print(f"\nrestaurant {lonely} is the most isolated (nearest rival "
          f"{isolation(lonely):.0f}m away);")
    print(f"opening a new restaurant one block over, at junction {new_site}")

    stolen = db.rknn(new_site, k=1, method="eager")
    via_voronoi = voronoi_rnn(db.view, new_site)
    assert sorted(stolen.points) == via_voronoi, "methods must agree"
    print("incumbents for which the new site is now the nearest rival:")
    for rid in via_voronoi:
        print(f"  restaurant {rid} (owned {sizes[rid]} junctions)")

    print(f"\ncosts: eager settled {stolen.counters.nodes_visited} node "
          f"visits; the Voronoi route re-sweeps all {city.num_nodes} "
          "junctions (see benchmarks/bench_ablation_voronoi.py)")


if __name__ == "__main__":
    main()
