"""Choosing the processing method from problem characteristics.

The paper's Section 6 summary is a decision procedure in prose: eager-M
when materialization is possible, eager on exponentially-expanding
networks, lazy when CPU dominates and the network is local.  Its
conclusion asks for cost models that make the choice automatically.
This script runs both automations shipped in :mod:`repro.analytics`:

* :func:`recommend_method` -- the paper's qualitative rules, driven by
  a measured expansion profile;
* :class:`CalibratingPlanner` -- an optimizer that samples each
  candidate method and routes queries to the measured winner.

Run with:  python examples/query_planning.py
"""

from repro import GraphDatabase
from repro.analytics import (
    CalibratingPlanner,
    estimate_selectivity,
    network_report,
    recommend_method,
)
from repro.datasets.brite import generate_brite
from repro.datasets.spatial import generate_spatial
from repro.datasets.workload import place_node_points

SCENARIOS = (
    ("road network", lambda: generate_spatial(2_000, seed=1)),
    ("internet overlay", lambda: generate_brite(2_000, seed=1)),
)
DENSITY = 0.02


def main() -> None:
    for name, make_graph in SCENARIOS:
        graph = make_graph()
        points = place_node_points(graph, DENSITY, seed=3, first_id=100)
        db = GraphDatabase(graph, points)
        print(f"=== {name} " + "=" * max(0, 58 - len(name)))
        for line in network_report(db).summary_lines():
            print(f"  {line}")

        sel = estimate_selectivity(db, k=1, samples=15)
        print(f"  selectivity: measured mean |RNN| = {sel.mean:.2f} "
              f"(closed form: {sel.expected:.0f}, max seen {sel.maximum})")

        advice = recommend_method(db, k=1)
        print(f"\n  rule-based recommendation: {advice.method!r}")
        print(f"    because {advice.rationale}")

        planner = CalibratingPlanner(db, methods=("eager", "lazy"), samples=4)
        plan = planner.plan_for(1)
        print("\n  measured calibration:")
        for line in plan.explain().splitlines()[1:]:
            print(f"  {line}")

        query = db.points.node_of(100)
        result = planner.rknn(query, 1, exclude={100})
        print(f"\n  planned query at node {query}: RNN = "
              f"{sorted(result.points)} ({result.io} I/Os)\n")


if __name__ == "__main__":
    main()
