"""Ad-hoc RNN queries on a co-authorship graph (paper Section 6.1).

The network is a DBLP-style collaboration graph with unit edge weights,
so distances are degrees of separation.  An ad-hoc query asks: "for
which authors *matching a condition* am I the (reverse) nearest
neighbor?"  Because the interesting set depends on the condition,
materialization is impossible and only eager and lazy apply -- the
setting of the paper's Table 1.

Run with:  python examples/dblp_degrees_of_separation.py
"""

import random

from repro import GraphDatabase, NodePointSet
from repro.datasets.dblp import generate_dblp


def main() -> None:
    print("generating a DBLP-like co-authorship network...")
    dblp = generate_dblp(num_nodes=4_260, num_edges=13_199, seed=1)
    graph = dblp.graph
    print(f"  {graph.num_nodes} authors, {graph.num_edges} co-author edges "
          "(unit weights = degrees of separation)")

    rng = random.Random(9)
    query_author = rng.randrange(graph.num_nodes)

    for papers in (1, 2, 3):
        matching = dblp.authors_with_papers(papers)
        points = NodePointSet({node: node for node in matching})
        db = GraphDatabase(graph, points, buffer_pages=64)
        exclude = frozenset(
            {query_author} if points.point_at(query_author) is not None else set()
        )

        print(f"\ncondition: exactly {papers} SIGMOD paper(s) "
              f"({len(matching)} matching authors)")
        for method in ("eager", "lazy"):
            db.clear_buffer()
            result = db.rknn(query_author, k=1, method=method, exclude=exclude)
            print(
                f"  {method:6s}: {len(result):3d} authors have the query "
                "author as closest match   "
                f"[{result.io:4d} page I/Os, {result.cpu_seconds * 1000:7.1f} ms CPU]"
            )

        db.clear_buffer()
        result = db.rknn(query_author, k=1, method="eager", exclude=exclude)
        for node in list(result)[:5]:
            separation = db.network_distance(node, query_author)
            print(f"    author {node} at {separation:.0f} degrees of separation")


if __name__ == "__main__":
    main()
