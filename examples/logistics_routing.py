"""Dispatch routing on a road network: the shortest-path substrate.

A courier depot answers two kinds of distance questions all day:

* *ad hoc* point-to-point routes ("how do I drive to this address?"),
  best served by guided search -- A* under Euclidean bounds when the
  map's weights are distances, ALT landmarks when they are travel
  times (where Euclidean bounds would be invalid, the paper's
  Section 2.2 caveat);
* *bulk* distance lookups ("which of my 40 parcels is closest to the
  van right now?"), best served by HEPV-style partial materialization
  -- far less storage than a full distance matrix, far less work per
  query than repeated Dijkstra.

This script runs both workloads over one generated city and prints the
work counters side by side; and because the traveler also wants the
nearest fuel stop at every leg, it closes with an in-route NN query
([16]) along the chosen route.

Run with:  python examples/logistics_routing.py
"""

import random

from repro import GraphDatabase, NodePointSet
from repro.core.in_route import in_route_nn_ids
from repro.datasets.spatial import generate_spatial
from repro.datasets.workload import place_node_points
from repro.hier.hepv import HierarchicalDistanceIndex
from repro.paths.astar import astar_path, euclidean_heuristic
from repro.paths.bidirectional import bidirectional_search
from repro.paths.dijkstra import shortest_path
from repro.paths.landmarks import LandmarkIndex

NUM_NODES = 2_000
FUEL_DENSITY = 0.01
BULK_LOOKUPS = 30


def main() -> None:
    rng = random.Random(6)
    print(f"generating a {NUM_NODES}-junction city...")
    city = generate_spatial(NUM_NODES, seed=8)
    depot, customer = rng.sample(range(city.num_nodes), 2)
    print(f"  depot at junction {depot}, customer at junction {customer}")

    # -- one ad hoc route, four engines ---------------------------------------
    print("\nad hoc route (same distance, different work):")
    plain = shortest_path(city, depot, customer)
    print(f"  dijkstra      settled {plain.nodes_settled:5d} nodes, "
          f"distance {plain.distance:,.0f}m over {plain.hops} segments")
    guided = astar_path(city, depot, customer,
                        euclidean_heuristic(city.coords, customer))
    print(f"  a* euclidean  settled {guided.nodes_settled:5d} nodes "
          "(valid: weights are road lengths)")
    landmarks = LandmarkIndex.build(city, city.num_nodes, count=6, seed=1)
    alt = astar_path(city, depot, customer, landmarks.heuristic(customer))
    print(f"  a* landmarks  settled {alt.nodes_settled:5d} nodes "
          "(valid on any weights; needs preprocessing)")
    both = bidirectional_search(city, depot, customer)
    print(f"  bidirectional settled {both.nodes_settled:5d} nodes "
          "(no assumptions, no preprocessing)")
    assert guided.distance == alt.distance == plain.distance

    # -- bulk lookups: partial materialization ----------------------------------
    print(f"\nbulk workload: {BULK_LOOKUPS} parcel-distance lookups")
    index = HierarchicalDistanceIndex.build(city, fragment_size=32)
    full = HierarchicalDistanceIndex.full_materialization_entries(city.num_nodes)
    print(f"  hepv index: {index.storage_entries:,} stored distances "
          f"(full matrix would be {full:,})")
    parcels = rng.sample(range(city.num_nodes), BULK_LOOKUPS)
    flat_settled = 0
    for parcel in parcels:
        flat_settled += shortest_path(city, depot, parcel).nodes_settled
    for parcel in parcels:
        index.distance(depot, parcel)
    nearest = min(parcels, key=lambda parcel: index.distance(depot, parcel))
    print(f"  flat dijkstra settled {flat_settled:,} nodes total; hepv "
          f"settled {index.stats.super_settled:,} super-graph nodes")
    print(f"  nearest parcel: junction {nearest} "
          f"({index.distance(depot, nearest):,.0f}m)")

    # -- fuel stops along the chosen route ([16]) --------------------------------
    stations = place_node_points(city, FUEL_DENSITY, seed=9, first_id=700)
    db = GraphDatabase(city, stations, node_order="hilbert")
    stops = in_route_nn_ids(db.view, guided.nodes, k=1)
    changes = [
        (node, ids) for i, (node, ids) in enumerate(stops)
        if i == 0 or ids != stops[i - 1][1]
    ]
    print(f"\nnearest fuel stop along the {len(guided.nodes)}-junction route "
          "(changes only):")
    for node, ids in changes:
        label = ", ".join(f"station {pid}" for pid in sorted(ids)) or "none"
        print(f"  from junction {node:5d}: {label}")


if __name__ == "__main__":
    main()
