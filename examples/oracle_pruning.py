"""Landmark distance oracle: identical answers, fewer expanded edges.

A delivery platform serves reverse-nearest-neighbor queries over a
city grid ("which couriers is this restaurant the closest option
for?").  The expansion-based algorithms spend most of their budget
relaxing edges; this example preprocesses the network into an ALT
landmark oracle, replays the same workload with and without it, and
shows the answers staying bitwise identical while the expansion work
and charged I/O drop.  It then hands the persisted label table to the
compact backend -- one preprocessing pass serves every backend.

Run::

    PYTHONPATH=src python examples/oracle_pruning.py
"""

from repro import GraphDatabase
from repro.compact import CompactDatabase
from repro.datasets.grid import generate_grid
from repro.datasets.workload import data_queries, place_node_points

CITY_BLOCKS = 400      # a 20 x 20 grid of intersections
COURIER_DENSITY = 0.02
LANDMARKS = 12


def replay(db, queries):
    """Cold-replay the workload, returning answers and counter totals."""
    answers = []
    before = db.tracker.snapshot()
    for query in queries:
        db.clear_buffer()
        result = db.rknn(query.location, 1, method="eager",
                         exclude=query.exclude)
        answers.append(result.points)
    return answers, db.tracker.diff(before)


def main():
    grid = generate_grid(CITY_BLOCKS, average_degree=4.0, seed=21)
    couriers = place_node_points(grid, COURIER_DENSITY, seed=22)
    workload = data_queries(couriers, count=8, seed=23)

    plain = GraphDatabase(grid, couriers)
    plain_answers, plain_cost = replay(plain, workload)

    oracled = GraphDatabase(grid, couriers)
    report = oracled.build_oracle(LANDMARKS, seed=24)
    print(f"built oracle: {len(report.landmarks)} landmarks, "
          f"{report.entries} labels on {report.pages} pages, "
          f"{report.io} build I/Os")

    fast_answers, fast_cost = replay(oracled, workload)
    assert fast_answers == plain_answers, "pruning must never change answers"

    reduction = plain_cost.edges_expanded / max(1, fast_cost.edges_expanded)
    print(f"edges expanded: {plain_cost.edges_expanded} -> "
          f"{fast_cost.edges_expanded} ({reduction:.1f}x fewer)")
    print(f"page I/O: {plain_cost.io_operations} -> "
          f"{fast_cost.io_operations}; "
          f"{fast_cost.oracle_prunes} probes/verifications settled "
          "by the bounds alone")

    compact = CompactDatabase(grid, couriers)
    compact.open_oracle(oracled.oracle_store)
    compact_answers, compact_cost = replay(compact, workload)
    assert compact_answers == plain_answers
    print(f"compact backend, same labels: {compact_cost.edges_expanded} "
          f"edges, {compact_cost.io_operations} page I/Os")


if __name__ == "__main__":
    main()
