"""Directed RNN: one-way streets change who your reverse neighbors are.

The paper's future-work section singles out directed networks ("spatial
maps with one-way streets") because the neighborhood relation becomes
asymmetric.  This example builds a small downtown grid where several
streets are one-way, places taxis on junctions, and asks: for a
passenger appearing at a junction, which taxis have the passenger as
their closest pickup *by driving distance* -- and how the answer
changes when the same streets are treated as two-way.

Run with:  python examples/one_way_streets.py
"""

import random

from repro import (
    DiGraph,
    DirectedGraphDatabase,
    Graph,
    GraphDatabase,
    NodePointSet,
)

GRID_SIDE = 12
NUM_TAXIS = 18


def build_downtown(side: int, rng: random.Random):
    """A side x side street grid; alternate rows/columns are one-way."""
    def node(row: int, col: int) -> int:
        return row * side + col

    arcs = []
    undirected = []
    for row in range(side):
        for col in range(side):
            if col + 1 < side:
                w = rng.uniform(80.0, 120.0)
                undirected.append((node(row, col), node(row, col + 1), w))
                if row % 2 == 0:       # even rows: eastbound only
                    arcs.append((node(row, col), node(row, col + 1), w))
                else:                  # odd rows: westbound only
                    arcs.append((node(row, col + 1), node(row, col), w))
            if row + 1 < side:
                w = rng.uniform(80.0, 120.0)
                undirected.append((node(row, col), node(row + 1, col), w))
                # avenues stay two-way
                arcs.append((node(row, col), node(row + 1, col), w))
                arcs.append((node(row + 1, col), node(row, col), w))
    total = side * side
    return DiGraph(total, arcs), Graph(total, undirected)


def main() -> None:
    rng = random.Random(11)
    downtown, two_way = build_downtown(GRID_SIDE, rng)
    taxi_nodes = rng.sample(range(downtown.num_nodes), NUM_TAXIS)
    taxis = NodePointSet({100 + i: node for i, node in enumerate(taxi_nodes)})

    directed_db = DirectedGraphDatabase(downtown, taxis)
    directed_db.materialize(2)
    undirected_db = GraphDatabase(two_way, taxis)

    print(f"downtown grid: {downtown.num_nodes} junctions, "
          f"{downtown.num_arcs} one-way street segments, {NUM_TAXIS} taxis")

    # look for a passenger for whom one-way streets change the answer
    empty_junctions = [
        n for n in range(downtown.num_nodes) if taxis.point_at(n) is None
    ]
    rng.shuffle(empty_junctions)
    passenger = empty_junctions[0]
    directed = directed_db.rknn(passenger, k=1, method="eager-m")
    undirected = undirected_db.rknn(passenger, k=1)
    for candidate in empty_junctions:
        d_result = directed_db.rknn(candidate, k=1, method="eager-m")
        u_result = undirected_db.rknn(candidate, k=1)
        if set(d_result.points) != set(u_result.points):
            passenger, directed, undirected = candidate, d_result, u_result
            break
    print(f"\npassenger appears at junction {passenger}")
    print("  taxis that should take the call (one-way aware): "
          f"{sorted(directed.points)}")
    print("  taxis a direction-blind model would pick:        "
          f"{sorted(undirected.points)}")

    gained = set(directed.points) - set(undirected.points)
    lost = set(undirected.points) - set(directed.points)
    if gained or lost:
        print("\none-way streets change the answer:")
        for taxi in sorted(gained):
            print(f"  taxi {taxi} gains the passenger "
                  "(its two-way 'shortcut' is actually against traffic)")
        for taxi in sorted(lost):
            print(f"  taxi {taxi} loses the passenger "
                  "(another taxi has a legal shorter route)")
    else:
        print("\n(for this passenger the two models agree; rerun with "
              "another seed to see them diverge)")

    # cost comparison of the directed algorithms
    print("\nalgorithm comparison for this query:")
    for method in ("eager-m", "eager", "naive"):
        directed_db.clear_buffer()
        result = directed_db.rknn(passenger, k=1, method=method)
        print(f"  {method:8s}: {result.io:4d} page I/Os, "
              f"{result.counters.nodes_visited:5d} node visits")


if __name__ == "__main__":
    main()
