"""Continuous RkNN along a route (paper Section 5.1, Fig. 19).

A service vehicle drives a route through a road network dotted with
customers (edge points).  The continuous reverse-NN query returns every
customer for whom some point of the route is their nearest service
location -- the customers this vehicle should be responsible for.

The script sweeps route lengths and reports how the responsibility set
and the query cost grow, reproducing the Fig. 19 trade-off between the
eager and lazy algorithm families.

Run with:  python examples/road_trip_monitor.py
"""

from repro import GraphDatabase
from repro.datasets.spatial import generate_spatial
from repro.datasets.workload import place_edge_points, random_route

NUM_NODES = 2_500
CUSTOMER_DENSITY = 0.02


def main() -> None:
    print(f"generating a road network (~{NUM_NODES} junctions)...")
    roads = generate_spatial(NUM_NODES, seed=4)
    customers = place_edge_points(roads, CUSTOMER_DENSITY, seed=5)
    db = GraphDatabase(roads, customers, node_order="hilbert", buffer_pages=64)
    db.materialize(2)
    print(f"  {roads.num_nodes} junctions, {len(customers)} customers")

    print("\nroute length sweep (continuous R1NN):")
    print(f"  {'len':>4} | {'customers':>9} | "
          f"{'eager io':>8} | {'lazy io':>8} | {'eager-m io':>10}")
    for length in (3, 8, 15, 25):
        route = random_route(roads, length, seed=42)
        costs = {}
        size = 0
        for method in ("eager", "lazy", "eager-m"):
            db.clear_buffer()
            result = db.continuous_rknn(route, k=1, method=method)
            costs[method] = result.io
            size = len(result)
        print(f"  {length:>4} | {size:>9} | {costs['eager']:>8} | "
              f"{costs['lazy']:>8} | {costs['eager-m']:>10}")

    route = random_route(roads, 15, seed=42)
    db.clear_buffer()
    assigned = db.continuous_rknn(route, k=1, method="eager-m")
    print(f"\nvehicle on a 15-junction route serves {len(assigned)} customers")
    for pid in list(assigned)[:8]:
        u, v, pos = customers.location(pid)
        print(f"  customer {pid} on segment ({u}, {v}) at offset {pos:.1f}")
    if len(assigned) > 8:
        print(f"  ... and {len(assigned) - 8} more")


if __name__ == "__main__":
    main()
