"""Online serving: micro-batched RkNN traffic over TCP, with live updates.

A ride-hailing dispatcher keeps a fleet's "which drivers consider this
pickup spot their nearest" (RkNN) queries hot while drivers join and
leave the map.  This example boots the serving tier (`repro.serve`)
over a grid network on a background thread and drives it the way a
fleet of clients would:

1. a pipelined burst of popular queries the micro-batcher coalesces
   into shared engine batches,
2. a driver joining mid-stream — the mutation drains in-flight
   batches, applies under the exclusive lease, and bumps the
   generation every later response pins,
3. a standing-query subscription receiving `join`/`leave` membership
   events pushed by the server,
4. the `/metrics` counters a load balancer would scrape.

Run with:  python examples/serve_load.py
"""

import random
import time

from repro import GraphDatabase, ServeClient, serve_in_thread
from repro.datasets.grid import generate_grid
from repro.datasets.workload import place_node_points


def main() -> None:
    graph = generate_grid(400, average_degree=4.0, seed=0)
    points = place_node_points(graph, 0.1, seed=1)
    db = GraphDatabase(graph, points)

    rng = random.Random(2)
    popular = [
        {"op": "query", "kind": "rknn", "query": rng.randrange(400), "k": 2,
         "method": "eager"}
        for _ in range(20)
    ] + [
        {"op": "query", "kind": "knn", "query": rng.randrange(400), "k": 2}
        for _ in range(5)
    ]
    burst = popular * 4
    rng.shuffle(burst)

    with serve_in_thread(db, window=0.002, max_batch=32) as handle:
        print(f"serving on {handle.host}:{handle.port}")
        with ServeClient(handle.host, handle.port) as client:
            start = time.perf_counter()
            responses = client.pipeline(burst)
            elapsed = time.perf_counter() - start
            ok = sum(1 for r in responses if r["status"] == "ok")
            print(f"burst: {ok}/{len(burst)} ok in {elapsed:.3f} s "
                  f"({len(burst) / elapsed:.0f} requests/s pipelined)")

            # a driver joins: every later response pins the new generation
            free_node = next(n for n in range(graph.num_nodes)
                             if points.point_at(n) is None)
            before = responses[-1]["generation"]
            applied = client.insert(9_000, free_node)
            print(f"insert applied: generation {before} -> "
                  f"{applied['generation']}")
            after = client.rknn(free_node, k=1)
            assert after["generation"] == applied["generation"]

            # a standing query watches the new driver's node
            with ServeClient(handle.host, handle.port) as subscriber:
                ack = subscriber.subscribe({0: free_node}, k=1)
                print(f"subscribed to RkNN({free_node}): "
                      f"initially {ack['results']['0']}")
                client.delete(9_000)
                event = subscriber.recv()
                print(f"membership event: point {event['point_id']} "
                      f"{event['kind']}s at generation "
                      f"{event['generation']}")

            metrics = client.metrics()
            admission = metrics["admission"]
            print(f"metrics: {metrics['queries_served']} served in "
                  f"{admission['batches']} batches "
                  f"({admission['coalesced']} coalesced), "
                  f"{metrics['cache']['hits']} cache hits, "
                  f"{metrics['mutations_applied']} mutations, "
                  f"generation {metrics['generation']}")


if __name__ == "__main__":
    main()
