"""Continuous RNN monitoring of a taxi fleet (paper ref. [10] analogue).

Taxi stands want to know, at every moment, which roaming taxis consider
them their nearest stand -- each stand's bichromatic RNN set predicts
its incoming workload (the paper's Fig. 1b semantics: the stands are
the reference set competing for the taxis).  Taxis log on and off all
day, so the result sets must be maintained under a stream of
insertions and deletions, not recomputed per request.

:class:`repro.streams.BichromaticRnnMonitor` does this with one
precomputed distance field per stand; the monochromatic counterpart
:class:`repro.streams.RnnMonitor` (taxis also competing with each
other, e.g. for radio relaying) additionally maintains the paper's
Section 4.1 materialized lists -- the last section shows it on the
same fleet.

Run with:  python examples/taxi_fleet_monitoring.py
"""

import random

from repro import GraphDatabase, NodePointSet
from repro.datasets.spatial import generate_spatial
from repro.streams.monitor import BichromaticRnnMonitor, RnnMonitor

NUM_NODES = 1_500
NUM_STANDS = 4
FLEET = 12
SHIFT_EVENTS = 18


def main() -> None:
    rng = random.Random(2)
    print(f"generating a {NUM_NODES}-junction city...")
    city = generate_spatial(NUM_NODES, seed=9)
    stands = {sid: rng.randrange(city.num_nodes) for sid in range(NUM_STANDS)}
    db = GraphDatabase(city, NodePointSet({}), node_order="hilbert")
    monitor = BichromaticRnnMonitor(db, stands, k=1)
    print(f"  monitoring stands at junctions {sorted(stands.values())}")

    taxi_ids = iter(range(1000, 9999))
    fleet: dict[int, int] = {}

    def free_junction() -> int:
        # restricted networks hold one point per node: park on a free one
        taken = set(fleet.values())
        while True:
            node = rng.randrange(city.num_nodes)
            if node not in taken:
                return node

    def describe(events) -> str:
        changes = [f"stand {e.query_id} {'+' if e.kind == 'join' else '-'}"
                   f"taxi {e.point_id}" for e in events]
        return "; ".join(changes) if changes else "no membership changes"

    print("\nmorning: the fleet logs on")
    for _ in range(FLEET):
        taxi = next(taxi_ids)
        node = free_junction()
        fleet[taxi] = node
        events = monitor.insert(taxi, node)
        print(f"  taxi {taxi} on at junction {node:5d}: {describe(events)}")

    print("\nworkload by stand:", monitor.counts(),
          "| total influence:", monitor.total_influence())
    busiest, size = monitor.most_influential()
    print(f"busiest stand: {busiest} ({size} taxis consider it nearest)")

    print("\nshift change: taxis come and go")
    for _ in range(SHIFT_EVENTS):
        if fleet and rng.random() < 0.5:
            taxi = rng.choice(sorted(fleet))
            del fleet[taxi]
            events = monitor.delete(taxi)
            print(f"  taxi {taxi} off: {describe(events)}")
        else:
            taxi = next(taxi_ids)
            node = free_junction()
            fleet[taxi] = node
            events = monitor.insert(taxi, node)
            print(f"  taxi {taxi} on:  {describe(events)}")

    print("\nend of shift -- final workload:", monitor.counts())
    for sid in sorted(stands):
        print(f"  stand {sid} (junction {stands[sid]:5d}): "
              f"taxis {monitor.result(sid)}")

    # -- monochromatic flavour: radio relaying among the fleet ----------------
    # each taxi relays through its nearest unit (taxi or stand); a
    # stand's monochromatic RNN set = taxis that report directly to it
    relay_db = GraphDatabase(city, NodePointSet(dict(fleet)),
                             node_order="hilbert")
    relay = RnnMonitor(relay_db, stands, k=1)
    print("\nradio relaying (taxis also relay for each other):")
    for sid in sorted(stands):
        print(f"  stand {sid} hears directly from taxis {relay.result(sid)}")


if __name__ == "__main__":
    main()
