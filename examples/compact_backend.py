"""Serve a workload from the compact (CSR flat-array) backend.

Builds the same network behind the disk-backed and compact facades,
verifies their answers agree, and compares the paper's combined cost
(CPU + 10 ms per charged I/O): the compact backend answers every query
with zero page I/O, so its combined cost is pure CPU.

Run with::

    PYTHONPATH=src python examples/compact_backend.py
"""

from repro import CompactDatabase, GraphDatabase, QuerySpec
from repro.datasets.grid import generate_grid
from repro.datasets.workload import data_queries, place_node_points

graph = generate_grid(800, average_degree=4.0, seed=3)
points = place_node_points(graph, 0.02, seed=4)
queries = data_queries(points, count=12, seed=5)

disk = GraphDatabase(graph, points, buffer_pages=64)
compact = CompactDatabase(graph, points)

disk_cost = compact_cost = 0.0
for query in queries:
    disk.clear_buffer()  # replay cold: every expansion pays its faults
    a = disk.rknn(query.location, k=2, method="eager", exclude=query.exclude)
    b = compact.rknn(query.location, k=2, method="eager", exclude=query.exclude)
    assert a.points == b.points, "backends must agree"
    disk_cost += a.total_seconds()
    compact_cost += b.total_seconds()

print(f"{len(queries)} R2NN queries, identical answers on both backends")
print(f"disk    : {disk_cost:.3f} s combined (10 ms per I/O)")
print(f"compact : {compact_cost:.3f} s combined (zero I/O)")
print(f"speedup : {disk_cost / compact_cost:.1f}x")

# the batch engine detects the backend: worker sessions share the
# read-only CSR arrays instead of cloning buffers
engine = compact.engine(cache_entries=128)
specs = [QuerySpec("rknn", query=q.location, k=2, exclude=q.exclude)
         for q in queries]
outcome = engine.run_batch(specs, workers=4)
print(f"engine  : {len(outcome)} queries via backend={engine.backend!r}, "
      f"{outcome.io} page I/Os across {4} shared-array workers")
