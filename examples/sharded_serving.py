"""Sharded serving: splitting the graph itself across storage shards.

PR 1's engine scaled the *query stream* (batching, caching, workers);
this example scales the *storage*: the network is cut into K
edge-disjoint shards, each with its own disk store, buffer pool and
cost counters, behind a `ShardedDatabase` that answers every query
identically to the single-store facade.

The walkthrough:

1. builds a grid network and cuts it into 4 shards (`shard build`'s
   programmatic form), printing the layout,
2. verifies answer parity against an unsharded `GraphDatabase`,
3. serves a batch through the engine with shard-aware worker routing
   (whole shards are assigned to workers; independent shards execute
   concurrently),
4. prints the per-shard I/O decomposition of the workload.

Run with:  python examples/sharded_serving.py
"""

from repro import GraphDatabase, QuerySpec, ShardedDatabase
from repro.datasets.grid import generate_grid
from repro.datasets.workload import data_queries, place_node_points

NUM_SHARDS = 4


def main() -> None:
    graph = generate_grid(900, average_degree=4.0, seed=0)
    points = place_node_points(graph, 0.05, seed=1)

    # 1. cut the graph into shards (the CLI twin: repro shard build)
    db = ShardedDatabase(graph, points, num_shards=NUM_SHARDS)
    store = db.store
    print(f"cut {graph.num_nodes} nodes / {graph.num_edges} edges into "
          f"{store.num_shards} shards: {store.num_cut_edges} cut edges "
          f"({store.num_cut_edges / graph.num_edges:.1%})")
    for shard in store.shards:
        print(f"  shard {shard.shard_id}: {shard.num_nodes} nodes, "
              f"{shard.num_intra_edges} intra edges, "
              f"{shard.num_boundary_nodes} boundary nodes, "
              f"{shard.disk.num_pages} pages")

    # 2. answers are identical to the single-store database
    single = GraphDatabase(graph, points)
    probes = data_queries(points, count=10, seed=2)
    for query in probes:
        sharded_answer = db.rknn(query.location, 2, exclude=query.exclude)
        single_answer = single.rknn(query.location, 2, exclude=query.exclude)
        assert sharded_answer.points == single_answer.points
    print(f"parity: {len(probes)} RkNN probes identical to the single store")

    # 3. batched serving with shard-aware worker routing
    arrivals = data_queries(points, count=30, seed=3) * 3
    specs = [QuerySpec("rknn", q.location, k=2, exclude=q.exclude)
             for q in arrivals]
    db.reset_stats()
    engine = db.engine(cache_entries=1024)
    cold = engine.run_batch(specs, workers=NUM_SHARDS)
    print(f"engine, cold cache: {len(cold)} queries, "
          f"{cold.hits} hits / {cold.misses} misses, {cold.io} page I/Os")
    warm = engine.run_batch(specs, workers=NUM_SHARDS)
    print(f"engine, warm cache: {warm.hits} hits / {warm.misses} misses, "
          f"{warm.io} page I/Os")

    # 4. where did the I/O land?  (worker sessions' counters are folded
    #    back into the parent's per-shard trackers)
    print("per-shard I/O decomposition of the batch:")
    for shard_id, counters in enumerate(db.shard_counters()):
        print(f"  shard {shard_id}: {counters.page_reads} page reads, "
              f"{counters.buffer_hits} buffer hits")


if __name__ == "__main__":
    main()
