"""Restaurant siting (paper Fig. 1b): bichromatic RNN for site selection.

A road network carries residential blocks (the data set P, on edges)
and existing restaurants (the reference set Q).  For each candidate
location of a new restaurant, the bichromatic reverse-NN query returns
the blocks that would be closer to the newcomer than to every rival --
its expected customer base.  The best site maximizes that set.

Run with:  python examples/restaurant_siting.py
"""

import random

from repro import GraphDatabase
from repro.datasets.spatial import generate_spatial
from repro.datasets.workload import place_edge_points

NUM_NODES = 2_500
BLOCK_DENSITY = 0.08
NUM_RESTAURANTS = 12
NUM_CANDIDATES = 6


def main() -> None:
    rng = random.Random(3)
    print(f"generating a road network (~{NUM_NODES} junctions)...")
    roads = generate_spatial(NUM_NODES, seed=1)
    blocks = place_edge_points(roads, BLOCK_DENSITY, seed=2)
    restaurants = place_edge_points(
        roads, NUM_RESTAURANTS / roads.num_nodes, seed=5, first_id=10_000
    )
    print(f"  {roads.num_nodes} junctions, {roads.num_edges} road segments, "
          f"{len(blocks)} residential blocks, {len(restaurants)} rivals")

    db = GraphDatabase(roads, blocks, node_order="hilbert")
    db.attach_reference(restaurants)

    edges = list(roads.edges())
    candidates = []
    for _ in range(NUM_CANDIDATES):
        u, v, w = edges[rng.randrange(len(edges))]
        candidates.append((u, v, round(rng.uniform(0.0, w), 1)))

    print(f"\nevaluating {NUM_CANDIDATES} candidate sites "
          f"(bichromatic RNN over {len(blocks)} blocks):")
    best = None
    for site in candidates:
        db.clear_buffer()
        result = db.bichromatic_rknn(site, k=1)
        print(
            f"  site on road ({site[0]:5d},{site[1]:5d}) at {site[2]:7.1f}: "
            f"{len(result):3d} blocks won   [{result.io} page I/Os]"
        )
        if best is None or len(result) > len(best[1]):
            best = (site, result)

    site, result = best
    print(
        f"\nbest site: road segment ({site[0]}, {site[1]}) offset {site[2]} "
        f"with {len(result)} captured blocks"
    )

    # how contested is the win? compare against k = 2 (blocks for which
    # the new site would be at least their second choice)
    db.clear_buffer()
    second_choice = db.bichromatic_rknn(site, k=2)
    print(
        "blocks keeping the new site among their top-2 choices: "
        f"{len(second_choice)}"
    )


if __name__ == "__main__":
    main()
