"""P2P scenario (paper Fig. 1a / Section 1): a new peer joins an overlay.

A peer-to-peer overlay is modeled as a BRITE-style internet topology
whose edge weights are link latencies.  Peers interested in the same
content live on some of the nodes.  When a new peer arrives, the peers
for which the newcomer becomes one of their k nearest neighbors --
its reverse k-NNs -- should re-wire to it.  The paper motivates k = 4
(Gnutella's fan-out).

The script also shows why the choice of algorithm matters on this
topology: preferential-attachment networks expand exponentially, the
regime where lazy evaluation collapses (paper Figs. 15-16).

Run with:  python examples/p2p_peer_arrival.py
"""

import random

from repro import GraphDatabase
from repro.datasets.brite import generate_brite
from repro.datasets.workload import place_node_points

NUM_NODES = 4_000
PEER_DENSITY = 0.02
FANOUT_K = 4


def main() -> None:
    rng = random.Random(7)
    print(f"generating a {NUM_NODES}-node overlay topology (BRITE-style)...")
    overlay = generate_brite(NUM_NODES, seed=1)
    peers = place_node_points(overlay, PEER_DENSITY, seed=2)
    db = GraphDatabase(overlay, peers, buffer_pages=64)
    db.materialize(FANOUT_K + 1)
    print(f"  {overlay.num_nodes} routers, {overlay.num_edges} links, "
          f"{len(peers)} peers sharing this content type")

    # a new peer joins at a random empty router
    occupied = {node for _, node in peers.items()}
    arrival_node = rng.choice(
        [n for n in range(overlay.num_nodes) if n not in occupied]
    )
    print(f"\nnew peer arrives at router {arrival_node}; "
          f"finding its reverse {FANOUT_K}-NNs...")

    for method in ("eager-m", "eager", "lazy"):
        db.clear_buffer()
        result = db.rknn(arrival_node, k=FANOUT_K, method=method)
        print(
            f"  {method:8s}: {len(result):3d} peers would re-wire   "
            f"[{result.io:6d} page I/Os, {result.cpu_seconds:6.3f} s CPU, "
            f"visited {result.counters.nodes_visited} nodes]"
        )

    db.clear_buffer()
    rewire = db.rknn(arrival_node, k=FANOUT_K, method="eager-m")
    print("\npeers that gain a closer neighbor (peer id, latency):")
    for pid in list(rewire)[:10]:
        latency = db.network_distance(peers.node_of(pid), arrival_node)
        print(f"  peer {pid:5d}  latency {latency:6.1f}")
    if len(rewire) > 10:
        print(f"  ... and {len(rewire) - 10} more")

    # the RkNN set is also the newcomer's expected workload (Section 1)
    print(
        f"\nexpected workload of the new peer: {len(rewire)} downstream "
        f"peers ({100.0 * len(rewire) / max(1, len(peers)):.1f}% of the swarm)"
    )


if __name__ == "__main__":
    main()
