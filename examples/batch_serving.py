"""Batch serving: absorbing repeated multi-user traffic with QueryEngine.

A location-based service answers the same popular queries over and
over.  This example builds a mid-sized grid network, simulates a
traffic trace where 25 distinct queries arrive 4 times each, and
serves it three ways:

1. one facade call per arrival (the paper's single-query protocol),
2. a cold engine batch (deduplication + locality-planned execution),
3. a warm engine batch (the result cache absorbs everything).

It then shows an update invalidating the cache mid-stream.

Run with:  python examples/batch_serving.py
"""

import time

from repro import GraphDatabase, QuerySpec
from repro.datasets.grid import generate_grid
from repro.datasets.workload import data_queries, place_node_points


def main() -> None:
    graph = generate_grid(400, average_degree=4.0, seed=0)
    points = place_node_points(graph, 0.1, seed=1)
    db = GraphDatabase(graph, points)

    arrivals = data_queries(points, count=25, seed=2) * 4
    specs = [
        QuerySpec("rknn", q.location, k=2, exclude=q.exclude) for q in arrivals
    ]
    print(f"traffic: {len(specs)} arrivals, "
          f"{len({s.key() for s in specs})} distinct queries")

    start = time.perf_counter()
    for spec in specs:
        db.rknn(spec.query, spec.k, exclude=spec.exclude)
    sequential = time.perf_counter() - start
    print(f"sequential facade calls: {sequential:.4f} s")

    engine = db.engine()
    cold = engine.run_batch(specs, workers=4)
    print(f"engine, cold cache: {cold.elapsed_seconds:.4f} s "
          f"({cold.hits} hits / {cold.misses} misses, {cold.io} page I/Os)")

    warm = engine.run_batch(specs, workers=4)
    print(f"engine, warm cache: {warm.elapsed_seconds:.4f} s "
          f"({warm.hits} hits / {warm.misses} misses, {warm.io} page I/Os)")
    speedup = sequential / warm.elapsed_seconds if warm.elapsed_seconds else 0.0
    print(f"warm-cache speedup over sequential: {speedup:.0f}x")

    # an update bumps the database generation: cached answers die
    free_node = next(
        n for n in range(graph.num_nodes) if points.point_at(n) is None
    )
    db.insert_point(9_999, free_node)
    after = engine.run_batch(specs, workers=4)
    print(f"after insert_point: {after.hits} hits / {after.misses} misses "
          "(stale entries invalidated)")


if __name__ == "__main__":
    main()
