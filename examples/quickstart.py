"""Quickstart: reverse nearest neighbors on a small network.

Builds the toy network of the library's README, runs an RNN query with
all four algorithms and prints results together with their I/O + CPU
costs -- the same accounting the paper's evaluation uses.

Run with:  python examples/quickstart.py
"""

from repro import GraphDatabase, NodePointSet

# A small undirected network: nodes 0..7, positive edge weights.
#
#        (p2) 5 --3-- 1 --5-- 4 [query] --4-- 3 --3-- 6 (p1)
#              \       \                             /
#               2 ------+--- 2 --------- 2 ----------
#               |
#               7 (p3)  (5 -- 2 costs 2; 2 -- 7 costs 5)
EDGES = [
    (4, 3, 4.0), (4, 1, 5.0), (3, 6, 3.0), (1, 5, 3.0),
    (6, 2, 2.0), (2, 5, 2.0), (5, 3, 6.0), (2, 7, 5.0), (1, 0, 6.0),
]

# Data points ("interesting" nodes): p1 at node 6, p2 at node 5, p3 at 7.
POINTS = NodePointSet({1: 6, 2: 5, 3: 7})


def main() -> None:
    db = GraphDatabase.from_edges(EDGES, points=POINTS)

    print("=== k nearest neighbors of node 2 ===")
    for pid, dist in db.knn(2, k=3):
        print(f"  point {pid} at network distance {dist}")

    print("\n=== reverse nearest neighbors of a query at node 2 ===")
    for method in ("eager", "lazy", "lazy-ep"):
        db.clear_buffer()
        result = db.rknn(query=2, k=1, method=method)
        print(
            f"  {method:8s} -> {list(result.points)}   "
            f"[{result.io} page I/Os, {result.cpu_seconds * 1000:.2f} ms CPU, "
            f"{result.counters.nodes_visited} node visits]"
        )

    # eager-M needs materialized K-NN lists (paper Section 4.1)
    db.materialize(3)
    db.clear_buffer()
    result = db.rknn(query=2, k=1, method="eager-m")
    print(
        f"  {'eager-m':8s} -> {list(result.points)}   "
        f"[{result.io} page I/Os, {result.cpu_seconds * 1000:.2f} ms CPU]"
    )

    print("\n=== reverse 2-NN (every point counts its two closest) ===")
    result = db.rknn(query=4, k=2)
    print(f"  R2NN(node 4) = {list(result.points)}")

    print("\n=== updates maintain the materialized lists ===")
    outcome = db.insert_point(9, 0)
    print(f"  inserted point 9 at node 0 (updated {outcome.affected_nodes} lists)")
    result = db.rknn(query=0, k=1)
    print(f"  RNN(node 0) now = {list(result.points)}")


if __name__ == "__main__":
    main()
