"""Why connectivity beats the triangle inequality (paper Section 2).

The network distance is a metric, so nothing stops us from indexing
data points in a generic metric-space structure (VP-tree) and answering
RNN queries with vicinity-radius point enclosure, exactly as Korn &
Muthukrishnan do with R-trees in Euclidean space.  The paper argues
this is a bad idea on graphs: the index sees distances only through a
black-box oracle, and on a network every oracle call is a Dijkstra.

This script runs both routes on the same query and prints the bill:
identical answers, wildly different work.

Run with:  python examples/metric_vs_graph.py
"""

import random

from repro import GraphDatabase
from repro.datasets.spatial import generate_spatial
from repro.datasets.workload import place_node_points
from repro.metric.rnn import MetricRnnIndex
from repro.metric.vptree import SearchStats

NUM_NODES = 2_000
DENSITY = 0.01


def main() -> None:
    rng = random.Random(11)
    print(f"generating a {NUM_NODES}-node spatial network...")
    graph = generate_spatial(NUM_NODES, seed=5)
    points = place_node_points(graph, DENSITY, seed=6, first_id=500)
    db = GraphDatabase(graph, points, node_order="hilbert")
    print(f"  {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"{len(points)} data points")
    query = rng.randrange(graph.num_nodes)
    print(f"query: RNN({query}), k = 1")

    # -- route 1: the paper's eager algorithm ---------------------------------
    db.clear_buffer()
    eager = db.rknn(query, k=1, method="eager")
    print("\n[eager]   result:", sorted(eager.points))
    print(f"[eager]   {eager.counters.nodes_visited} nodes visited, "
          f"{eager.io} page I/Os, 0 point-to-point Dijkstras")

    # -- route 2: VP-tree over the network metric ------------------------------
    db.clear_buffer()
    index = MetricRnnIndex(db.view)
    build_dijkstras = index.metric.evaluations
    stats = SearchStats()
    result = index.rnn(query, stats)
    print("\n[vp-tree] result:", result)
    print(f"[vp-tree] {build_dijkstras} Dijkstras to build the index "
          "(tree splits + vicinity radii)")
    print(f"[vp-tree] {stats.distance_calls} more distance calls at query "
          f"time ({stats.nodes_pruned} subtrees pruned by the triangle "
          "inequality)")

    assert sorted(eager.points) == result, "the two routes must agree"
    print("\nsame answer -- but the metric route re-derives from scratch, "
          "via Dijkstra,\nthe locality that eager's Lemma 1 gets from the "
          "adjacency lists for free.")


if __name__ == "__main__":
    main()
