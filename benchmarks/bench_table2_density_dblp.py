"""Table 2: cost versus data density on the DBLP graph (k = 1).

Paper setting: randomly selected "interesting" authors at density
D = |P|/|V|; eager and lazy compared.  Expected shape: cost decreases as
the density grows, the two algorithms incur similar I/O, and eager is
much more CPU-intensive at low densities (its range-NN probes revisit
nodes many times).
"""

import pytest

from repro import GraphDatabase
from repro.bench.harness import run_workload
from repro.bench.report import format_table, save_report
from repro.datasets.dblp import generate_dblp
from repro.datasets.workload import data_queries, place_node_points

METHODS = ("eager", "lazy")


@pytest.fixture(scope="module")
def dblp_graph(profile):
    scale = {"smoke": (600, 1_850), "small": (4_260, 13_199),
             "paper": (4_260, 13_199)}[profile.name]
    return generate_dblp(num_nodes=scale[0], num_edges=scale[1], seed=1).graph


def _dblp_buffer_pages(profile) -> int:
    """Paper-size graph -> the paper's 1 MB / 256-page buffer (Table 2's
    'similar I/O, eager more CPU' shape depends on probe re-reads being
    buffer hits)."""
    return profile.buffer_pages if profile.name == "smoke" else 256


def test_table2_density_sweep(benchmark, dblp_graph, profile):
    densities = [d for d in profile.densities if d >= 0.005]

    def experiment():
        rows = []
        for density in densities:
            points = place_node_points(dblp_graph, density, seed=5)
            db = GraphDatabase(dblp_graph, points,
                               buffer_pages=_dblp_buffer_pages(profile))
            queries = data_queries(points, count=profile.workload_size, seed=6)
            for method in METHODS:
                cost = run_workload(db, queries, k=1, method=method)
                rows.append({"D": density, **cost.row()})
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_table("Table 2 -- cost vs density D (DBLP, k=1)", rows)
    print("\n" + text)
    save_report("table2_density_dblp", text)

    if profile.name == "smoke":
        return  # smoke scale only checks the pipeline; shapes need size

    # shape 1: for each method, cost decreases as density increases
    for method in METHODS:
        totals = [r["total_s"] for r in rows if r["method"] == method]
        assert totals[0] >= totals[-1]
    # shape 2: eager is more CPU-intensive than lazy at the lowest density
    lowest = [r for r in rows if r["D"] == densities[0]]
    eager_cpu = next(r["cpu_s"] for r in lowest if r["method"] == "eager")
    lazy_cpu = next(r["cpu_s"] for r in lowest if r["method"] == "lazy")
    assert eager_cpu >= lazy_cpu
