"""Ablation: the price and payoff of materialization.

The paper's all-NN algorithm (Fig. 8) builds every node's K-NN list in
one network pass with complexity O(K |E| log(K |E|)), and Section 4.1
argues the space cost is O(K |V|).  This ablation measures, for growing
K: the build time, the on-disk size of the list file, and the query
speedup eager-M buys over plain eager -- the complete trade-off a user
must weigh before enabling materialization.
"""

import time

from benchmarks.conftest import make_spatial_db, spatial_queries
from repro.bench.harness import run_workload
from repro.bench.report import format_table, save_report

DENSITY = 0.01


def test_ablation_materialization_tradeoff(benchmark, spatial_graph, profile):
    def experiment():
        rows = []
        baseline = None
        for capacity in (0,) + tuple(profile.capacity_values):
            db = make_spatial_db(spatial_graph, profile, DENSITY)
            build_s = 0.0
            pages = 0
            if capacity > 0:
                start = time.perf_counter()
                db.materialize(capacity)
                build_s = time.perf_counter() - start
                pages = db.materialized.store.num_pages
            queries = spatial_queries(db, profile)
            method = "eager-m" if capacity > 0 else "eager"
            k = min(capacity, 1) if capacity > 0 else 1
            cost = run_workload(db, queries, k=max(1, k), method=method)
            if capacity == 0:
                baseline = cost.total_mean_s
            speedup = baseline / cost.total_mean_s if cost.total_mean_s else 0.0
            rows.append({
                "K": capacity or "-",
                "method": method,
                "build_s": round(build_s, 2),
                "list_pages": pages,
                "io": round(cost.io_mean, 1),
                "total_s": round(cost.total_mean_s, 4),
                "speedup": round(speedup, 2),
            })
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_table(
        "Ablation -- materialization trade-off (SF-like, D=0.01, k=1)", rows
    )
    print("\n" + text)
    save_report("ablation_materialization", text)

    if profile.name == "smoke":
        return  # smoke scale only checks the pipeline; shapes need size

    # space grows with K ...
    pages = [r["list_pages"] for r in rows if r["K"] != "-"]
    assert pages == sorted(pages)
    # ... and eager-M with K=1 is at least as fast as plain eager
    assert rows[1]["total_s"] <= rows[0]["total_s"] * 1.25
