"""Delta overlay: served read latency must not pay for concurrent writes.

Not a paper figure -- this benchmark gates the delta overlay's
headline claim (:mod:`repro.compact.overlay` through
:mod:`repro.serve`): because mutations append to the overlay log
instead of draining in-flight readers, a served read workload under a
**10% mutation mix** must keep its p95 latency within **1.5x** of the
same workload read-only.

Both phases run the same reader connections against the same server
configuration; the mixed phase adds one writer connection issuing the
mutation budget.  Reader latencies are measured closed-loop on the
reader connections only, so the comparison isolates exactly what the
overlay promises: writers on the wire, readers undisturbed.  The
phase order is read-only first, so the mixed phase cannot borrow
cache warmth the baseline did not have.

Two correctness closers keep the speed claim honest: the gate counters
must show **zero drains** during the mixed phase (the overlay applied
every mutation without blocking a batch), and the post-run head state
must answer bitwise identically to a from-scratch database built from
the final placement -- followed by a fold (``compact``) that changes
nothing.

Emits ``BENCH_overlay.json`` (via :mod:`emit`) with the deterministic
response/drain tallies regression-gated; wall-clock percentiles and
the latency ratio are recorded for the archived trajectory but stay
ungated across machines.
"""

import random
import threading
import time

from emit import emit

from repro import CompactDatabase, NodePointSet
from repro.bench.harness import latency_percentiles
from repro.bench.report import save_report
from repro.datasets.grid import generate_grid
from repro.datasets.workload import place_node_points
from repro.serve import ServeClient, serve_in_thread

DENSITY = 0.1
READERS = 3
QUERIES_PER_READER = 120
MUTATION_SHARE = 0.1
MAX_RATIO = 1.5
#: Wall-clock floor for the ratio gate: below this the baseline p95 is
#: scheduler noise and a fixed budget applies instead.
FLOOR_MS = 5.0
WINDOW = 0.002
MAX_BATCH = 16


def _build_inputs(profile):
    graph = generate_grid(profile.grid_fixed_nodes, average_degree=4.0,
                          seed=61)
    points = place_node_points(graph, DENSITY, seed=62)
    return graph, dict(points.items())


def _query_payloads(num_nodes: int, seed: int) -> list[dict]:
    rng = random.Random(seed)
    payloads = []
    for _ in range(QUERIES_PER_READER):
        node = rng.randrange(num_nodes)
        if rng.random() < 0.5:
            payloads.append({"op": "query", "kind": "rknn", "query": node,
                             "k": rng.choice((1, 2)), "method": "eager"})
        else:
            payloads.append({"op": "query", "kind": "knn", "query": node,
                             "k": 2})
    return payloads


def _mutation_script(graph, placement: dict, count: int):
    """``count`` point mutations: insert a fresh pid, then delete it.

    Alternating insert/delete keeps the placement bounded, and one
    writer connection applies the script in order, so the final
    placement is deterministic for the bitwise closer.
    """
    taken = set(placement.values())
    free = [node for node in range(graph.num_nodes) if node not in taken]
    script = []
    for i in range(count):
        pid = 9000 + i // 2
        if i % 2 == 0:
            script.append(("insert", pid, free[(i // 2) % len(free)]))
        else:
            script.append(("delete", pid, None))
    return script


def _run_phase(handle, payload_sets, script):
    """Closed-loop readers (latencies recorded) + optional writer."""
    latencies = []
    lock = threading.Lock()
    tally = {"ok": 0, "error": 0}

    def read(payloads):
        local = []
        with ServeClient(handle.host, handle.port) as client:
            for payload in payloads:
                began = time.perf_counter()
                response = client.request(payload)
                local.append(time.perf_counter() - began)
                status = "ok" if response.get("status") == "ok" else "error"
                with lock:
                    tally[status] += 1
        with lock:
            latencies.extend(local)

    def write():
        with ServeClient(handle.host, handle.port) as client:
            for index, (op, pid, node) in enumerate(script):
                response = (client.insert(pid, node) if op == "insert"
                            else client.delete(pid))
                assert response["status"] == "ok", response
                # spread the writes across the phase instead of
                # front-loading them
                time.sleep(0.001 * (index % 3))

    threads = [threading.Thread(target=read, args=(payloads,))
               for payloads in payload_sets]
    if script:
        threads.append(threading.Thread(target=write))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies, tally


def test_overlay_mutation_mix_keeps_read_p95(benchmark, profile):
    def experiment():
        graph, placement = _build_inputs(profile)
        payload_sets = [_query_payloads(graph.num_nodes, seed=63 + conn)
                        for conn in range(READERS)]
        total_requests = sum(len(p) for p in payload_sets)
        mutations = max(2, int(total_requests * MUTATION_SHARE) // 2 * 2)
        script = _mutation_script(graph, placement, mutations)

        def serve_db():
            return CompactDatabase(graph, NodePointSet(dict(placement)))

        # phase 1: read-only baseline
        with serve_in_thread(serve_db(), window=WINDOW,
                             max_batch=MAX_BATCH) as handle:
            read_latencies, read_tally = _run_phase(handle, payload_sets, [])

        # phase 2: same readers + 10% mutation mix on a writer connection
        with serve_in_thread(serve_db(), window=WINDOW,
                             max_batch=MAX_BATCH) as handle:
            mixed_latencies, mixed_tally = _run_phase(handle, payload_sets,
                                                      script)
            with ServeClient(handle.host, handle.port) as probe:
                metrics = probe.metrics()
                # bitwise closer: the head answers like a from-scratch
                # database of the final placement ...
                final = dict(placement)
                for op, pid, node in script:
                    if op == "insert":
                        final[pid] = node
                    else:
                        final.pop(pid)
                reference = CompactDatabase(graph, NodePointSet(final))
                for node in range(0, graph.num_nodes, 37):
                    served = probe.rknn(node, k=2)
                    assert served["points"] == list(
                        reference.rknn(node, 2).points
                    ), node
                # ... and folding the log changes nothing
                folded = probe.compact()
                assert folded["folded"] == len(script), folded
                for node in range(0, graph.num_nodes, 37):
                    served = probe.rknn(node, k=2)
                    assert served["points"] == list(
                        reference.rknn(node, 2).points
                    ), node

        read_tail = latency_percentiles(read_latencies)
        mixed_tail = latency_percentiles(mixed_latencies)
        checks = {
            "read_p95_ms": read_tail["p95_ms"],
            "mixed_p95_ms": mixed_tail["p95_ms"],
            "ratio": mixed_tail["p95_ms"] / max(read_tail["p95_ms"],
                                                FLOOR_MS),
            "read_tally": read_tally,
            "mixed_tally": mixed_tally,
            "drains": metrics["drains"],
            "compactions": metrics["compactions"],
            "mutations_applied": metrics["mutations_applied"],
        }
        emitted = {
            "requests": total_requests,
            "readers": READERS,
            "mutations": len(script),
            "ok_read_only": read_tally["ok"],
            "ok_mixed": mixed_tally["ok"],
            "errors": read_tally["error"] + mixed_tally["error"],
            "drains_during_mix": metrics["drains"],
            "read_p50_ms": round(read_tail["p50_ms"], 3),
            "read_p95_ms": round(read_tail["p95_ms"], 3),
            "mixed_p50_ms": round(mixed_tail["p50_ms"], 3),
            "mixed_p95_ms": round(mixed_tail["p95_ms"], 3),
            "p95_ratio": round(checks["ratio"], 3),
        }
        return checks, emitted

    checks, metrics = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        "Delta overlay -- served read p95, read-only vs 10% mutation mix",
        f"{'phase':>12}  {'p50 ms':>8}  {'p95 ms':>8}",
        f"{'read-only':>12}  {metrics['read_p50_ms']:>8.2f}  "
        f"{metrics['read_p95_ms']:>8.2f}",
        f"{'10% writes':>12}  {metrics['mixed_p50_ms']:>8.2f}  "
        f"{metrics['mixed_p95_ms']:>8.2f}",
        f"ratio: {checks['ratio']:.2f}x "
        f"(gate: <= {MAX_RATIO}x over max(read p95, {FLOOR_MS:g} ms))",
        f"mutations: {metrics['mutations']} applied, "
        f"{metrics['drains_during_mix']} reader drains (gate: 0)",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    save_report("overlay_mutation_mix", text)
    # response counts and the drain tally are deterministic for the
    # fixed workload; the latency ratio divides wall-clock times and
    # stays ungated across machines.
    emit("overlay", metrics, regression={
        "ok_read_only": {"direction": "higher", "tolerance": 0.0},
        "ok_mixed": {"direction": "higher", "tolerance": 0.0},
        "errors": {"direction": "lower", "tolerance": 0.0},
        "drains_during_mix": {"direction": "lower", "tolerance": 0.0},
    })

    assert checks["read_tally"]["error"] == 0, checks["read_tally"]
    assert checks["mixed_tally"]["error"] == 0, checks["mixed_tally"]
    assert checks["mutations_applied"] == metrics["mutations"]
    # writers never drained a reader; the one fold we forced afterwards
    # is the only drain the server ever saw
    assert checks["drains"] == 0, checks
    assert checks["ratio"] <= MAX_RATIO, (
        f"mutation mix pushed read p95 to {checks['mixed_p95_ms']:.2f} ms, "
        f"{checks['ratio']:.2f}x the read-only baseline "
        f"(gate: {MAX_RATIO}x)"
    )
