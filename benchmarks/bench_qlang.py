"""Compiled qlang group plans vs per-facility Python loops.

Not a paper figure -- this benchmark validates the query-language
claim: a compiled ``SELECT * FROM topk_influence(...)`` statement
executes through the engine's group expansion, which hands the
per-facility RkNN probes to the compact backend's vectorized batch
kernel in one sweep.  The same ranking computed the pedestrian way --
one scalar ``rknn`` facade call per facility, folded in Python -- must
be at least **2x slower** (wall clock), and the compiled plan's
``edges_expanded`` total must not exceed the scalar sum (the shared
candidate table of the batch kernel does strictly less graph work).

Rankings are asserted bitwise identical.  The edge counters are
deterministic given the seeds and carry the regression gate;
wall-clock speedup is asserted but stays ungated in the baseline
(machine noise).
"""

import time

from emit import emit

from repro.bench.report import save_report
from repro.compact import CompactDatabase
from repro.datasets.grid import generate_grid
from repro.datasets.workload import place_node_points

DENSITY = 0.05
K = 2
MIN_SPEEDUP = 2.0

STATEMENT = f"SELECT * FROM topk_influence(k={K})"


def _edges(db) -> int:
    return db.tracker.snapshot().edges_expanded


def _scalar_topk(db):
    """The ranking without the engine: one facade call per facility."""
    scored = []
    for pid, location in sorted(db.points.items()):
        result = db.rknn(location, K, method="eager", exclude={pid})
        scored.append((pid, float(len(result.points))))
    scored.sort(key=lambda item: (-item[1], item[0]))
    return tuple(scored)


def test_compiled_topk_plan_2x_over_scalar_loop(benchmark, profile):
    def experiment():
        nodes = profile.grid_nodes[-1]
        graph = generate_grid(nodes, average_degree=4.0, seed=91)
        points = place_node_points(graph, DENSITY, seed=92)

        scalar_db = CompactDatabase(graph, points)
        start = time.perf_counter()
        scalar_ranking = _scalar_topk(scalar_db)
        scalar_wall = time.perf_counter() - start
        scalar_edges = _edges(scalar_db)

        compiled_db = CompactDatabase(graph, points)
        start = time.perf_counter()
        compiled = compiled_db.query(STATEMENT)
        compiled_wall = time.perf_counter() - start
        compiled_edges = _edges(compiled_db)

        return {
            "nodes": nodes,
            "facilities": len(scalar_ranking),
            "rankings_match": compiled.neighbors == scalar_ranking,
            "scalar_wall": scalar_wall,
            "compiled_wall": compiled_wall,
            "speedup": scalar_wall / compiled_wall,
            "scalar_edges": scalar_edges,
            "compiled_edges": compiled_edges,
            "compiled_io": compiled.io,
        }

    row = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        "Compiled qlang topk_influence plan -- grid, engine vs Python loop",
        f"grid nodes: {row['nodes']}, density {DENSITY}, k={K}, "
        f"{row['facilities']} facilities ranked",
        f"{'path':>9}  {'edges':>9}  {'wall s':>9}",
        f"{'scalar':>9}  {row['scalar_edges']:>9}  "
        f"{row['scalar_wall']:>9.4f}",
        f"{'compiled':>9}  {row['compiled_edges']:>9}  "
        f"{row['compiled_wall']:>9.4f}",
        f"wall-clock speedup: {row['speedup']:.1f}x "
        f"(gate: >= {MIN_SPEEDUP}x)",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    save_report("qlang_topk_grid", text)
    emit(
        "qlang",
        {
            "facilities": row["facilities"],
            "scalar_edges": row["scalar_edges"],
            "compiled_edges": row["compiled_edges"],
            "compiled_io": row["compiled_io"],
            "speedup": round(row["speedup"], 3),
        },
        # Edge counters are deterministic given the seeds; wall-clock
        # speedup varies by machine, so it stays ungated.
        regression={
            "compiled_edges": {"direction": "lower"},
            "compiled_io": {"direction": "lower"},
        },
    )

    assert row["rankings_match"], \
        "compiled topk_influence plan diverges from the scalar ranking"
    assert row["compiled_io"] == 0, "the compiled plan performed page I/O"
    assert row["compiled_edges"] <= row["scalar_edges"], (
        f"compiled plan expanded {row['compiled_edges']} edges, more than "
        f"the scalar loop's {row['scalar_edges']}"
    )
    assert row["speedup"] >= MIN_SPEEDUP, (
        f"compiled plan speedup {row['speedup']:.2f}x below {MIN_SPEEDUP}x"
    )
