"""Ablation: hierarchical partial materialization for distance queries.

Section 2.2 motivates HiTi/HEPV: full materialization of a 100K-node
graph needs ~5x10^9 distances, so hierarchical schemes trade a small
super-graph search for quadratically less storage.  This ablation
sweeps the fragment size and reports storage entries, build time and
the per-query settled-node count against flat point-to-point Dijkstra
-- the trade-off curve a deployment must choose a point on.

The graph is a quarter-scale spatial network: intra-fragment tables
grow with ``|V| * fragment_size``, and the sweep's purpose is the
curve shape, not absolute size.
"""

import random
import statistics
import time

import pytest

from repro.bench.report import format_table, save_report
from repro.datasets.spatial import generate_spatial
from repro.hier.hepv import HierarchicalDistanceIndex
from repro.paths.dijkstra import shortest_path

FRAGMENT_SIZES = (8, 32, 128)
QUERY_PAIRS = 20


@pytest.fixture(scope="module")
def hier_graph(profile):
    return generate_spatial(max(400, profile.spatial_nodes // 4), seed=42)


def test_ablation_hierarchical_distance(benchmark, hier_graph, profile):
    rng = random.Random(3)
    pairs = [
        tuple(rng.sample(range(hier_graph.num_nodes), 2))
        for _ in range(QUERY_PAIRS)
    ]

    def experiment():
        rows = []

        settled, times = [], []
        for u, v in pairs:
            start = time.perf_counter()
            result = shortest_path(hier_graph, u, v)
            times.append(time.perf_counter() - start)
            settled.append(result.nodes_settled)
        rows.append({
            "config": "flat dijkstra",
            "storage": 0,
            "build_s": 0.0,
            "settled": round(statistics.fmean(settled), 1),
            "query_ms": round(1000 * statistics.fmean(times), 3),
        })

        for size in FRAGMENT_SIZES:
            start = time.perf_counter()
            index = HierarchicalDistanceIndex.build(
                hier_graph, fragment_size=size
            )
            build_s = time.perf_counter() - start
            times = []
            baseline_settled = index.stats.super_settled
            for u, v in pairs:
                start = time.perf_counter()
                index.distance(u, v)
                times.append(time.perf_counter() - start)
            per_query = (index.stats.super_settled - baseline_settled) / len(pairs)
            rows.append({
                "config": f"hepv s={size}",
                "storage": index.storage_entries,
                "build_s": round(build_s, 2),
                "settled": round(per_query, 1),
                "query_ms": round(1000 * statistics.fmean(times), 3),
            })
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    full = HierarchicalDistanceIndex.full_materialization_entries(
        hier_graph.num_nodes
    )
    text = format_table(
        "Ablation -- hierarchical distance index (spatial |V|="
        f"{hier_graph.num_nodes}; full materialization = {full} entries)",
        rows,
    )
    print("\n" + text)
    save_report("ablation_hierarchical", text)

    if profile.name == "smoke":
        return

    # every configuration stores far less than the full matrix ...
    for row in rows[1:]:
        assert row["storage"] < full / 4
    # ... and settles fewer nodes per query than flat Dijkstra
    flat = rows[0]["settled"]
    assert min(row["settled"] for row in rows[1:]) < flat
