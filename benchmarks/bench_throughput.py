"""Serving throughput: batched engine vs sequential facade (smoke gate).

The pytest wrapper around :mod:`repro.bench.throughput` (the
PR-acceptance benchmark introduced with the QueryEngine): on a small
grid workload with repeated arrivals, batched execution with a warm
result cache and 4 workers must beat **2x** the sequential facade
throughput.  Emits ``BENCH_throughput.json`` (via :mod:`emit`) so CI
archives the run; the gated metrics are the deterministic cache and
I/O counters -- the wall-clock speedup itself is asserted in-run but
never compared across machines.
"""

import os

from emit import emit

from repro.bench.throughput import run

NODES = 200
DISTINCT = 10
REPEAT = 3
WORKERS = 4
MIN_SPEEDUP = 2.0

#: Opt-in span-level profiling: trace the cold batch and embed the
#: breakdown in BENCH_throughput.json.  Off by default so the gated
#: numbers never carry tracing overhead.
PROFILE = bool(os.environ.get("REPRO_BENCH_PROFILE"))


def test_batched_serving_beats_sequential_2x(benchmark):
    report = benchmark.pedantic(
        lambda: run(nodes=NODES, distinct=DISTINCT, repeat=REPEAT,
                    workers=WORKERS, profile=PROFILE),
        rounds=1, iterations=1,
    )

    print()
    for line in report.summary_lines():
        print(line)
    tail = report.percentiles()
    metrics = {
            "queries": report.queries,
            "distinct": report.distinct,
            "cache_hits": report.cache_hits,
            "cache_misses": report.cache_misses,
            "batch_io": report.batch_io,
            "speedup": round(report.speedup, 3),
            "sequential_p50_ms": round(tail["p50_ms"], 3),
            "sequential_p95_ms": round(tail["p95_ms"], 3),
            "sequential_p99_ms": round(tail["p99_ms"], 3),
            "batched_mean_ms": round(report.batched_mean_ms, 4),
    }
    if report.profile is not None:
        # span-level breakdown of the traced cold batch (never gated:
        # it only appears on REPRO_BENCH_PROFILE runs)
        metrics["profile"] = report.profile
    emit(
        "throughput",
        metrics,
        # hits/misses/io are deterministic for the fixed workload; the
        # speedup and latency percentiles divide or sample wall-clock
        # times, so they are recorded for the archived trajectory but
        # stay ungated across machines.
        regression={
            "cache_hits": {"direction": "higher", "tolerance": 0.0},
            "cache_misses": {"direction": "lower", "tolerance": 0.0},
            "batch_io": {"direction": "lower"},
        },
    )
    assert tail["p50_ms"] <= tail["p95_ms"] <= tail["p99_ms"]

    assert report.speedup >= MIN_SPEEDUP, (
        f"batched speedup {report.speedup:.2f}x below {MIN_SPEEDUP}x"
    )
