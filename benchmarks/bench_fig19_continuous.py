"""Figure 19: continuous RkNN cost versus route size (SF, D = 0.01, k = 1).

Paper setting: routes are random simple walks; a continuous query
returns the union of the RkNN sets of every route node.  Expected
shape: eager/eager-M grow roughly linearly with route length; the lazy
variants first get *cheaper* (longer routes discover points earlier,
shrinking verification ranges) before rising again as the result set
grows.
"""

from benchmarks.conftest import make_spatial_db
from repro.bench.harness import run_continuous_workload
from repro.bench.report import format_figure, save_report
from repro.datasets.workload import random_routes

METHODS = ("eager", "eager-m", "lazy", "lazy-ep")
DENSITY = 0.01


def test_fig19_route_sweep(benchmark, spatial_graph, profile):
    lengths = profile.route_lengths

    def experiment():
        db = make_spatial_db(spatial_graph, profile, DENSITY, capacity=2)
        rows = []
        for length in lengths:
            routes = random_routes(
                db.graph, length, count=profile.workload_size, seed=61
            )
            for method in METHODS:
                cost = run_continuous_workload(db, routes, k=1, method=method)
                rows.append({"route": length, **cost.row()})
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_figure(
        f"Figure 19 -- continuous queries vs route size (SF, D={DENSITY}, k=1)",
        rows, group_by="route",
    )
    print("\n" + text)
    save_report("fig19_continuous", text)

    if profile.name == "smoke":
        return  # smoke scale only checks the pipeline; shapes need size

    # shape: eager's cost grows with the route length
    eager = [r["total_s"] for r in rows if r["method"] == "eager"]
    assert eager[-1] >= eager[0]
    # result sets grow with route length for every method
    for method in METHODS:
        sizes = [r["|result|"] for r in rows if r["method"] == method]
        assert sizes[-1] >= sizes[0]
