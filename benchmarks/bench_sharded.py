"""Sharded backend: I/O decomposition vs the single-store expansion.

Not a paper figure -- this benchmark validates the scaling claim of the
sharded backend on the paper's grid dataset (restricted points,
D = 0.01, k = 1): cutting the graph into K shards decomposes the
expansion's I/O into per-shard counters that

* sum exactly to the sharded run's total I/O (no work is lost or
  double-counted), and
* stay within 2x of the single-store expansion's I/O (each shard runs
  its own buffer pool, as an independent storage host would; the extra
  I/O comes only from boundary crossings and per-shard page packing).

Answers are asserted identical to the single store for every query.
"""

from emit import emit

from repro import GraphDatabase, ShardedDatabase
from repro.bench.report import save_report
from repro.datasets.grid import generate_grid
from repro.datasets.workload import data_queries, place_node_points

DENSITY = 0.01
SHARD_COUNTS = (1, 4)


def _run(db, queries, k=1):
    """Replay the workload cold (cleared buffers), collecting answers + I/O."""
    answers = []
    io = 0
    for query in queries:
        db.clear_buffer()
        result = db.rknn(query.location, k, method="eager", exclude=query.exclude)
        answers.append(result.points)
        io += result.counters.page_reads
    return answers, io


def test_sharded_io_within_2x_of_single_store(benchmark, profile):
    def experiment():
        graph = generate_grid(profile.grid_fixed_nodes, average_degree=4.0,
                              seed=81)
        points = place_node_points(graph, DENSITY, seed=82)
        queries = data_queries(points, count=profile.workload_size, seed=83)

        single = GraphDatabase(graph, points,
                               buffer_pages=profile.buffer_pages)
        single_answers, single_io = _run(single, queries)

        rows = [{"backend": "single", "io": single_io, "shards": "-",
                 "ratio": 1.0}]
        checks = []
        for num_shards in SHARD_COUNTS:
            sharded = ShardedDatabase(graph, points, num_shards=num_shards,
                                      buffer_pages=profile.buffer_pages)
            before = [t.page_reads for t in sharded.shard_counters()]
            answers, total_io = _run(sharded, queries)
            per_shard = [
                t.page_reads - b
                for t, b in zip(sharded.shard_counters(), before)
            ]
            rows.append({
                "backend": f"K={num_shards}",
                "io": total_io,
                "shards": "+".join(str(reads) for reads in per_shard),
                "ratio": round(total_io / max(1, single_io), 2),
            })
            checks.append({
                "answers_match": answers == single_answers,
                "per_shard_sums_to_total": sum(per_shard) == total_io,
                "within_2x": total_io <= 2 * max(1, single_io),
            })
        return rows, checks

    rows, checks = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = ["Sharded backend -- grid, per-shard I/O vs single store",
             f"{'backend':>8}  {'io':>6}  {'per-shard reads':>20}  ratio"]
    for row in rows:
        lines.append(f"{row['backend']:>8}  {row['io']:>6}  "
                     f"{row['shards']:>20}  {row['ratio']}")
    text = "\n".join(lines)
    print("\n" + text)
    save_report("sharded_grid_io", text)
    emit(
        "sharded",
        {
            "single_io": rows[0]["io"],
            "k1_io": rows[1]["io"],
            "k4_io": rows[2]["io"],
            "k4_ratio": rows[2]["ratio"],
        },
        # all I/O counters are deterministic given the workload seeds
        regression={
            "single_io": {"direction": "lower"},
            "k4_ratio": {"direction": "lower"},
        },
    )

    for num_shards, check in zip(SHARD_COUNTS, checks):
        assert check["answers_match"], \
            f"K={num_shards}: sharded answers diverge from the single store"
        assert check["per_shard_sums_to_total"], \
            f"K={num_shards}: per-shard counters do not sum to the total I/O"
        assert check["within_2x"], \
            f"K={num_shards}: sharded I/O exceeds 2x the single store"
