"""Figure 16: cost versus density on a fixed BRITE topology (k = 1).

Paper setting: |V| fixed, D swept.  Expected shape: lazy and lazy-EP
visit most of the network regardless of density (exponential
expansion), while eager and eager-M improve significantly at higher
densities because every node is quickly surrounded by data points.
"""

import pytest

from repro import GraphDatabase
from repro.bench.harness import run_workload
from repro.bench.report import format_figure, save_report
from repro.datasets.brite import generate_brite
from repro.datasets.workload import data_queries, place_node_points

METHODS = ("eager", "eager-m", "lazy", "lazy-ep")


@pytest.fixture(scope="module")
def brite_graph(profile):
    return generate_brite(profile.brite_fixed_nodes, seed=31)


def test_fig16_density_sweep(benchmark, brite_graph, profile):
    densities = [d for d in profile.densities if d >= 0.005]

    def experiment():
        rows = []
        for density in densities:
            points = place_node_points(brite_graph, density, seed=32)
            db = GraphDatabase(brite_graph, points,
                               buffer_pages=profile.buffer_pages)
            db.materialize(2)
            queries = data_queries(points, count=profile.workload_size, seed=33)
            for method in METHODS:
                cost = run_workload(db, queries, k=1, method=method)
                rows.append({"D": density, **cost.row()})
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_figure(
        f"Figure 16 -- cost vs D (BRITE, |V|={profile.brite_fixed_nodes}, k=1)",
        rows, group_by="D",
    )
    print("\n" + text)
    save_report("fig16_brite_density", text)

    if profile.name == "smoke":
        return  # smoke scale only checks the pipeline; shapes need size

    # shape 1: eager improves substantially from the lowest to the
    # highest density
    eager = [r["total_s"] for r in rows if r["method"] == "eager"]
    assert eager[-1] < eager[0]
    # shape 2: at high density the eager variants clearly beat lazy
    highest = [r for r in rows if r["D"] == densities[-1]]
    total = {r["method"]: r["total_s"] for r in highest}
    assert total["eager"] < total["lazy"]
    assert total["eager-m"] < total["lazy"]
