"""Figure 18: cost versus k on the San-Francisco-like network (D = 0.01).

Paper setting: RkNN for k in 1..8 over edge points.  Expected shape:
every method degrades with k; lazy degrades fastest (its verification
pruning weakens), lazy-EP scales better than lazy; eager-M's I/O grows
with k (bigger materialized lists to read) and approaches eager's by
k = 8.
"""

from benchmarks.conftest import make_spatial_db, spatial_queries
from repro.bench.harness import run_workload
from repro.bench.report import format_figure, save_report

METHODS = ("eager", "eager-m", "lazy", "lazy-ep")
DENSITY = 0.01


def test_fig18_k_sweep(benchmark, spatial_graph, profile):
    k_values = profile.k_values
    capacity = max(k_values) + 1

    def experiment():
        db = make_spatial_db(spatial_graph, profile, DENSITY, capacity=capacity)
        queries = spatial_queries(db, profile)
        rows = []
        for k in k_values:
            for method in METHODS:
                cost = run_workload(db, queries, k=k, method=method)
                rows.append({"k": k, **cost.row()})
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_figure(
        f"Figure 18 -- cost vs k (SF, D={DENSITY})", rows, group_by="k"
    )
    print("\n" + text)
    save_report("fig18_sf_k", text)

    if profile.name == "smoke":
        return  # smoke scale only checks the pipeline; shapes need size

    # shape 1: every method is more expensive at max k than at k=1
    for method in METHODS:
        totals = [r["total_s"] for r in rows if r["method"] == method]
        assert totals[-1] >= totals[0]
    # shape 2: lazy deteriorates at least as fast as lazy-EP
    lazy = [r["total_s"] for r in rows if r["method"] == "lazy"]
    lazy_ep = [r["total_s"] for r in rows if r["method"] == "lazy-ep"]
    assert lazy[-1] / max(lazy[0], 1e-9) >= 0.5 * lazy_ep[-1] / max(lazy_ep[0], 1e-9)
