"""Shared fixtures for the experiment suite.

Each benchmark module regenerates one table or figure of the paper's
evaluation (Section 6).  Run with::

    pytest benchmarks/ --benchmark-only

Scale with ``REPRO_BENCH_SCALE`` in {smoke, small, paper}; the default
``small`` profile is ~10x below the paper's graph sizes (see
EXPERIMENTS.md for the mapping).  Rendered tables are printed and saved
under ``benchmarks/out/``.
"""

from __future__ import annotations

import pytest

from repro import GraphDatabase
from repro.bench.runner import current_profile
from repro.datasets.spatial import generate_spatial
from repro.datasets.workload import data_queries, place_edge_points


@pytest.fixture(scope="session")
def profile():
    return current_profile()


@pytest.fixture(scope="session")
def spatial_graph(profile):
    """The shared SF-like road network (Figs. 17-19, 21, 22)."""
    return generate_spatial(profile.spatial_nodes, seed=42)


def make_spatial_db(graph, profile, density, *, capacity=None, buffer_pages=None):
    """An unrestricted database over the shared spatial graph."""
    points = place_edge_points(graph, density, seed=7)
    db = GraphDatabase(
        graph,
        points,
        node_order="hilbert",
        buffer_pages=profile.buffer_pages if buffer_pages is None else buffer_pages,
    )
    if capacity is not None:
        db.materialize(capacity)
    return db


def spatial_queries(db, profile, count=None):
    return data_queries(db.points, count=count or profile.workload_size, seed=11)
