"""Figure 20: synthetic grid maps -- cost vs |V| and vs average degree.

Paper setting: grid networks (restricted points, D = 0.01, k = 1).
Expected shapes: (a) |V| barely matters because expansions terminate
around the query; (b) cost grows with the average degree, and lazy-EP
scales worst (its second heap re-expands every extra edge).
"""

import pytest

from repro import GraphDatabase
from repro.bench.harness import run_workload
from repro.bench.report import format_figure, save_report
from repro.datasets.grid import generate_grid
from repro.datasets.workload import data_queries, place_node_points

METHODS = ("eager", "eager-m", "lazy", "lazy-ep")
DENSITY = 0.01


def _run_grid(graph, profile):
    points = place_node_points(graph, DENSITY, seed=71)
    db = GraphDatabase(graph, points, buffer_pages=profile.buffer_pages)
    db.materialize(2)
    queries = data_queries(points, count=profile.workload_size, seed=72)
    return [
        run_workload(db, queries, k=1, method=method).row()
        for method in METHODS
    ]


def test_fig20a_node_sweep(benchmark, profile):
    def experiment():
        rows = []
        for num_nodes in profile.grid_nodes:
            graph = generate_grid(num_nodes, average_degree=4.0, seed=73)
            for row in _run_grid(graph, profile):
                rows.append({"|V|": graph.num_nodes, **row})
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_figure("Figure 20a -- cost vs |V| (grid, degree 4)", rows,
                         group_by="|V|")
    print("\n" + text)
    save_report("fig20a_grid_nodes", text)

    if profile.name == "smoke":
        return  # smoke scale only checks the pipeline; shapes need size

    # shape: |V| has no serious effect -- the largest grid costs at most
    # a small multiple of the smallest for each method
    for method in METHODS:
        totals = [r["total_s"] for r in rows if r["method"] == method]
        assert totals[-1] <= 5 * max(totals[0], 1e-6)


@pytest.mark.parametrize("degrees", [(4.0, 5.0, 6.0)])
def test_fig20b_degree_sweep(benchmark, profile, degrees):
    def experiment():
        rows = []
        for degree in degrees:
            graph = generate_grid(
                profile.grid_fixed_nodes, average_degree=degree, seed=74
            )
            for row in _run_grid(graph, profile):
                rows.append({"degree": degree, **row})
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_figure(
        f"Figure 20b -- cost vs degree (grid, |V|={profile.grid_fixed_nodes})",
        rows, group_by="degree",
    )
    print("\n" + text)
    save_report("fig20b_grid_degree", text)

    if profile.name == "smoke":
        return  # smoke scale only checks the pipeline; shapes need size

    # shape: higher degree means more work for every method
    for method in METHODS:
        visited = [r["visited"] for r in rows if r["method"] == method]
        assert visited[-1] >= 0.5 * visited[0]
