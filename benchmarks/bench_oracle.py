"""Landmark oracle: expanded-edge reduction on the eager RkNN workload.

Not a paper figure -- this benchmark validates the acceleration claim
of the landmark distance oracle (:mod:`repro.oracle`) on the paper's
grid dataset (restricted points, D = 0.01, k = 1, eager processing):
attaching the oracle must cut the workload's **expanded-edge count by
at least 2x** versus the unassisted expansion (the paper's algorithms
have no valid Euclidean bound here -- grid weights are uniform random,
not geometric -- so the baseline is the strongest sound
configuration: no bounds at all).

Answers are asserted bitwise identical in every configuration: oracle
off vs on, and across all three storage backends (disk, sharded,
compact) with the oracle enabled -- the pruning rules only skip work
the bounds prove irrelevant (see :mod:`repro.oracle.prune`).

Emits ``BENCH_oracle.json`` (via :mod:`emit`) with the reduction
factor as a regression-gated metric.
"""

from emit import emit

from repro import GraphDatabase, ShardedDatabase
from repro.bench.report import save_report
from repro.compact import CompactDatabase
from repro.datasets.grid import generate_grid
from repro.datasets.workload import data_queries, place_node_points

DENSITY = 0.01
K = 1
LANDMARKS = 16
MIN_REDUCTION = 2.0


def _run(db, queries):
    """Replay the workload cold, collecting answers and counter diffs."""
    answers = []
    before = db.tracker.snapshot()
    for query in queries:
        db.clear_buffer()
        result = db.rknn(query.location, K, method="eager",
                         exclude=query.exclude)
        answers.append(result.points)
    return answers, db.tracker.diff(before)


def test_oracle_halves_expanded_edges(benchmark, profile):
    def experiment():
        graph = generate_grid(profile.grid_fixed_nodes, average_degree=4.0,
                              seed=81)
        points = place_node_points(graph, DENSITY, seed=82)
        queries = data_queries(points, count=profile.workload_size, seed=83)

        plain = GraphDatabase(graph, points, buffer_pages=profile.buffer_pages)
        plain_answers, plain_diff = _run(plain, queries)

        disk = GraphDatabase(graph, points, buffer_pages=profile.buffer_pages)
        build = disk.build_oracle(LANDMARKS)
        disk_answers, disk_diff = _run(disk, queries)

        sharded = ShardedDatabase(graph, points, num_shards=4,
                                  buffer_pages=profile.buffer_pages)
        sharded.build_oracle(LANDMARKS)
        sharded_answers, _ = _run(sharded, queries)

        compact = CompactDatabase(graph, points)
        compact.build_oracle(LANDMARKS)
        compact_answers, compact_diff = _run(compact, queries)

        rows = [
            {"config": "no oracle", "edges": plain_diff.edges_expanded,
             "io": plain_diff.io_operations, "prunes": 0},
            {"config": "disk+oracle", "edges": disk_diff.edges_expanded,
             "io": disk_diff.io_operations,
             "prunes": disk_diff.oracle_prunes},
            {"config": "compact+oracle", "edges": compact_diff.edges_expanded,
             "io": compact_diff.io_operations,
             "prunes": compact_diff.oracle_prunes},
        ]
        checks = {
            "oracle_answers_match": disk_answers == plain_answers,
            "backends_agree": (sharded_answers == disk_answers
                               and compact_answers == disk_answers),
            "reduction": (plain_diff.edges_expanded
                          / max(1, disk_diff.edges_expanded)),
            "build_io": build.io,
        }
        metrics = {
            "edges_plain": plain_diff.edges_expanded,
            "edges_oracle": disk_diff.edges_expanded,
            "reduction": round(checks["reduction"], 3),
            "io_plain": plain_diff.io_operations,
            "io_oracle": disk_diff.io_operations,
            "oracle_prunes": disk_diff.oracle_prunes,
            "landmarks": LANDMARKS,
            "queries": len(queries),
        }
        return rows, checks, metrics

    rows, checks, metrics = benchmark.pedantic(experiment, rounds=1,
                                               iterations=1)

    lines = ["Landmark oracle -- grid, expanded edges (eager RkNN, k=1)",
             f"{'config':>14}  {'edges':>9}  {'io':>6}  {'prunes':>7}"]
    for row in rows:
        lines.append(f"{row['config']:>14}  {row['edges']:>9}  "
                     f"{row['io']:>6}  {row['prunes']:>7}")
    lines.append(f"expanded-edge reduction: {checks['reduction']:.2f}x "
                 f"(gate: >= {MIN_REDUCTION}x)")
    text = "\n".join(lines)
    print("\n" + text)
    save_report("oracle_grid_edges", text)
    emit("oracle", metrics,
         regression={"reduction": {"direction": "higher", "tolerance": 0.25}})

    assert checks["oracle_answers_match"], \
        "oracle-assisted answers diverge from the plain expansion"
    assert checks["backends_agree"], \
        "backends disagree with the oracle enabled"
    assert checks["reduction"] >= MIN_REDUCTION, \
        f"edge reduction {checks['reduction']:.2f}x below {MIN_REDUCTION}x"
