"""Table 1: ad-hoc RNN queries on the DBLP co-authorship graph.

Paper setting: unit-weight co-authorship graph; the "interesting"
authors are those satisfying an ad-hoc condition (exactly 1 / 2 / 3
SIGMOD papers), so materialization is impossible and only eager and
lazy compete; k = 1.  Cost rises with the paper count (fewer matching
authors = sparser data = larger expansions), and eager is slightly
better on I/O but worse on CPU.
"""

import pytest

from repro import GraphDatabase, NodePointSet
from repro.bench.harness import run_workload
from repro.bench.report import format_table, save_report
from repro.datasets.dblp import generate_dblp
from repro.datasets.workload import data_queries

METHODS = ("eager", "lazy")


@pytest.fixture(scope="module")
def dblp(profile):
    scale = {"smoke": (600, 1_850), "small": (4_260, 13_199),
             "paper": (4_260, 13_199)}[profile.name]
    return generate_dblp(num_nodes=scale[0], num_edges=scale[1], seed=1)


def _dblp_buffer_pages(profile) -> int:
    """The DBLP graph runs at the paper's own size (4,260 nodes), so it
    gets the paper's 1 MB / 256-page buffer; Table 1's premise is that
    eager's range-NN re-reads hit the buffer and surface as CPU time."""
    return profile.buffer_pages if profile.name == "smoke" else 256


def test_table1_adhoc_queries(benchmark, dblp, profile):
    def experiment():
        rows = []
        for papers in (1, 2, 3):
            authors = dblp.authors_with_papers(papers)
            if not authors:
                continue
            points = NodePointSet({node: node for node in authors})
            db = GraphDatabase(dblp.graph, points,
                               buffer_pages=_dblp_buffer_pages(profile))
            queries = data_queries(points, count=profile.workload_size, seed=3)
            for method in METHODS:
                cost = run_workload(db, queries, k=1, method=method)
                rows.append({"condition": f"= {papers} papers",
                             "|P|": len(points), **cost.row()})
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_table(
        "Table 1 -- ad-hoc RNN queries on DBLP (k=1)", rows
    )
    print("\n" + text)
    save_report("table1_adhoc", text)

    if profile.name == "smoke":
        return  # smoke scale only checks the pipeline; shapes need size

    # qualitative shape: cost rises as the condition gets more selective
    for method in METHODS:
        ios = [row["io"] for row in rows if row["method"] == method]
        assert ios[0] <= ios[-1] * 1.5  # broadly non-decreasing
    # eager pays more CPU than lazy on the most selective condition
    eager_cpu = [r["cpu_s"] for r in rows if r["method"] == "eager"]
    lazy_cpu = [r["cpu_s"] for r in rows if r["method"] == "lazy"]
    assert eager_cpu[-1] >= lazy_cpu[-1]
