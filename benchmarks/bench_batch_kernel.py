"""Vectorized batch RkNN kernel vs the scalar compact path.

Not a paper figure -- this benchmark validates the fast-path claim of
the vectorized batch kernel (:mod:`repro.compact.batch`): answering a
batch of eager RkNN queries through one multi-source bucketed Dijkstra
over the CSR flat arrays must run at least **3x faster** (wall clock)
than looping the same specs through the scalar compact path, on the
paper's grid dataset at the profile's largest grid scale.  Answers are
asserted bitwise identical per query.

The shared candidate table also does strictly less graph work: the
kernel settles each candidate point's row only out to its reverse-k
decision bound, so the batched ``edges_expanded`` total lands well
under the scalar sum.  That edge ratio is deterministic given the
seeds and is the regression-gated headline; wall-clock speedup is
emitted for the report but stays ungated (machine noise).
"""

import time

from emit import emit

from repro.bench.report import save_report
from repro.compact import CompactDatabase
from repro.datasets.grid import generate_grid
from repro.datasets.workload import data_queries, place_node_points
from repro.engine.spec import QuerySpec

DENSITY = 0.05
K = 2
MIN_SPEEDUP = 3.0


def _edges(db) -> int:
    return db.tracker.snapshot().edges_expanded


def test_batch_kernel_3x_over_scalar_compact(benchmark, profile):
    def experiment():
        nodes = profile.grid_nodes[-1]
        graph = generate_grid(nodes, average_degree=4.0, seed=81)
        points = place_node_points(graph, DENSITY, seed=82)
        queries = data_queries(points, count=max(16, profile.workload_size),
                               seed=83)
        specs = [QuerySpec("rknn", query=q.location, k=K, method="eager",
                           exclude=q.exclude) for q in queries]

        scalar_db = CompactDatabase(graph, points)
        start = time.perf_counter()
        scalar_answers = [
            scalar_db.rknn(s.query, s.k, method=s.method, exclude=s.exclude)
            .points
            for s in specs
        ]
        scalar_wall = time.perf_counter() - start
        scalar_edges = _edges(scalar_db)

        batch_db = CompactDatabase(graph, points)
        start = time.perf_counter()
        results = batch_db.batch_rknn(specs)
        batch_wall = time.perf_counter() - start
        batch_answers = [r.points for r in results]
        batch_edges = _edges(batch_db)
        batch_io = sum(r.io for r in results)

        return {
            "nodes": nodes,
            "count": len(specs),
            "answers_match": batch_answers == scalar_answers,
            "scalar_wall": scalar_wall,
            "batch_wall": batch_wall,
            "speedup": scalar_wall / batch_wall,
            "scalar_edges": scalar_edges,
            "batch_edges": batch_edges,
            "edge_ratio": scalar_edges / batch_edges,
            "batch_io": batch_io,
        }

    row = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = [
        "Batch RkNN kernel -- grid, vectorized vs scalar compact path",
        f"grid nodes: {row['nodes']}, density {DENSITY}, k={K}, "
        f"{row['count']} queries",
        f"{'path':>8}  {'edges':>9}  {'wall s':>9}",
        f"{'scalar':>8}  {row['scalar_edges']:>9}  {row['scalar_wall']:>9.4f}",
        f"{'batch':>8}  {row['batch_edges']:>9}  {row['batch_wall']:>9.4f}",
        f"wall-clock speedup: {row['speedup']:.1f}x (gate: >= {MIN_SPEEDUP}x)",
        f"edge-expansion ratio: {row['edge_ratio']:.1f}x fewer edges batched",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    save_report("batch_kernel_grid", text)
    emit(
        "batch_kernel",
        {
            "scalar_edges": row["scalar_edges"],
            "batch_edges": row["batch_edges"],
            "edge_ratio": round(row["edge_ratio"], 3),
            "batch_io": row["batch_io"],
            "speedup": round(row["speedup"], 3),
        },
        # Edge counters are deterministic given the seeds; wall-clock
        # speedup varies by machine, so it stays ungated.
        regression={
            "edge_ratio": {"direction": "higher"},
            "batch_io": {"direction": "lower"},
        },
    )

    assert row["answers_match"], \
        "batch kernel answers diverge from the scalar compact path"
    assert row["batch_io"] == 0, "the batch kernel performed page I/O"
    assert row["speedup"] >= MIN_SPEEDUP, \
        f"batch kernel speedup {row['speedup']:.2f}x below {MIN_SPEEDUP}x"
