"""Ablation: metric-space indexing vs connectivity-aware expansion.

Section 2 of the paper dismisses general metric indexes because "such
indexes do not capture the connectivity of nodes".  Here the dismissal
is measured: a VP-tree over the network metric answers ``RNN(q)`` via
vicinity-radius point enclosure (Korn & Muthukrishnan's construction),
but every tree decision costs a point-to-point Dijkstra.  The table
reports the Dijkstra count (index build + query) next to eager's
single pruned expansion on identical workloads.
"""

import statistics

import pytest

from repro import GraphDatabase
from repro.bench.report import format_table, save_report
from repro.datasets.spatial import generate_spatial
from repro.datasets.workload import data_queries, place_node_points
from repro.metric.rnn import MetricRnnIndex
from repro.metric.vptree import SearchStats
from repro.storage.stats import CostModel

DENSITY = 0.01


@pytest.fixture(scope="module")
def metric_graph(profile):
    """Quarter-scale spatial graph: every VP-tree decision costs a
    Dijkstra, so the comparison point is reached at modest size."""
    return generate_spatial(max(400, profile.spatial_nodes // 4), seed=42)


def test_ablation_metric_index_vs_eager(benchmark, metric_graph, profile):
    model = CostModel()

    def experiment():
        points = place_node_points(metric_graph, DENSITY, seed=7, first_id=1000)
        db = GraphDatabase(metric_graph, points,
                           buffer_pages=profile.buffer_pages)
        queries = data_queries(db.points, count=profile.workload_size, seed=11)
        rows = []

        # -- eager ---------------------------------------------------------
        ios, totals, dijkstras = [], [], []
        for query in queries:
            db.clear_buffer()
            result = db.rknn(query.location, 1, method="eager",
                             exclude=query.exclude)
            ios.append(result.io)
            totals.append(result.total_seconds(model))
            dijkstras.append(0)  # eager never runs point-to-point Dijkstra
        rows.append({
            "method": "eager",
            "io": round(statistics.fmean(ios), 1),
            "dijkstras": 0.0,
            "total_s": round(statistics.fmean(totals), 4),
        })

        # -- metric index ----------------------------------------------------
        ios, totals, dijkstras = [], [], []
        for query in queries:
            db.clear_buffer()
            before = db.tracker.snapshot()
            with db.tracker.time_block():
                index = MetricRnnIndex(db.view, exclude=query.exclude)
                stats = SearchStats()
                index.rnn(query.location, stats)
            diff = db.tracker.diff(before)
            ios.append(diff.io_operations)
            totals.append(diff.cpu_seconds + model.io_penalty_s
                          * diff.io_operations)
            dijkstras.append(index.metric.evaluations)
        rows.append({
            "method": "vp-tree",
            "io": round(statistics.fmean(ios), 1),
            "dijkstras": round(statistics.fmean(dijkstras), 1),
            "total_s": round(statistics.fmean(totals), 4),
        })
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_table(
        "Ablation -- metric index (VP-tree) vs eager (spatial, D=0.01, k=1)",
        rows,
    )
    print("\n" + text)
    save_report("ablation_metric_index", text)

    if profile.name == "smoke":
        return

    eager_row, metric_row = rows
    # the metric route pays many Dijkstras and loses on every column
    assert metric_row["dijkstras"] >= 10
    assert metric_row["total_s"] > eager_row["total_s"]
    assert metric_row["io"] > eager_row["io"]
