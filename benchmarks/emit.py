"""Machine-readable benchmark emission and baseline regression checks.

Every benchmark in this suite calls :func:`emit` with its headline
metrics; the helper writes ``BENCH_<name>.json`` under
``benchmarks/out/`` (override with ``REPRO_BENCH_OUT``), which CI
uploads as workflow artifacts -- the repo's perf trajectory, one JSON
per benchmark per run.

Committed baselines live in ``benchmarks/results/BENCH_*.json``.  A
baseline declares which of its metrics are regression-gated and in
which direction::

    "regression": {"speedup": {"direction": "higher", "tolerance": 0.25}}

``python benchmarks/emit.py --check`` compares a fresh run against the
baselines and exits non-zero on any regression beyond tolerance
(CI runs it right after the benchmarks).  Only baselines recorded at
the same ``REPRO_BENCH_SCALE`` are compared; others are skipped with a
note, so local ``small``-scale runs never trip the ``smoke`` gates.

Refresh a baseline by re-running the benchmark suite and copying the
emitted file over the committed one::

    REPRO_BENCH_SCALE=smoke PYTHONPATH=src pytest benchmarks/bench_oracle.py --benchmark-only
    cp benchmarks/out/BENCH_oracle.json benchmarks/results/
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent
BASELINE_DIR = ROOT / "results"

#: Default relative tolerance before a gated metric counts as regressed.
DEFAULT_TOLERANCE = 0.25


def out_dir() -> Path:
    """Directory receiving emitted ``BENCH_*.json`` files."""
    base = Path(os.environ.get("REPRO_BENCH_OUT", ROOT / "out"))
    base.mkdir(parents=True, exist_ok=True)
    return base


def current_scale() -> str:
    """The active ``REPRO_BENCH_SCALE`` (default ``small``)."""
    return os.environ.get("REPRO_BENCH_SCALE", "small")


def emit(name: str, metrics: dict, regression: dict | None = None) -> str:
    """Write one benchmark's result as ``BENCH_<name>.json``.

    ``metrics`` maps metric names to numbers (machine-independent
    counters and ratios preferred -- wall-clock belongs in the text
    reports).  ``regression`` marks the gated subset: metric name to
    ``{"direction": "higher"|"lower", "tolerance": float}`` (tolerance
    optional).
    """
    payload = {
        "benchmark": name,
        "scale": current_scale(),
        "metrics": metrics,
        "regression": regression or {},
    }
    path = out_dir() / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return str(path)


def _within(direction: str, tolerance: float, new: float, base: float) -> bool:
    if direction == "higher":
        return new >= base * (1.0 - tolerance)
    if direction == "lower":
        return new <= base * (1.0 + tolerance)
    raise ValueError(f"unknown regression direction {direction!r}")


def check(emitted_dir: Path | None = None,
          only: tuple[str, ...] = ()) -> int:
    """Compare emitted results against committed baselines.

    ``only`` restricts the comparison to the named benchmarks (for CI
    jobs that run a subset of the suite); empty means every baseline.
    Returns the number of failures (missing results, regressed metrics,
    or emitted results with no committed baseline -- a fresh
    ``BENCH_*.json`` that nothing gates fails by name instead of being
    silently skipped) and prints a line per comparison.
    """
    emitted_dir = Path(emitted_dir) if emitted_dir is not None else out_dir()
    scale = current_scale()
    failures = 0
    baselines = sorted(BASELINE_DIR.glob("BENCH_*.json"))
    if not baselines:
        print(f"no baselines under {BASELINE_DIR}; nothing to check")
        return 0
    loaded = [(path, json.loads(path.read_text())) for path in baselines]
    names = {baseline["benchmark"] for _, baseline in loaded}
    for missing in sorted(set(only) - names):
        # a typo here must not turn the gate into a guaranteed pass
        print(f"FAIL  --only {missing}: no committed baseline by that name")
        failures += 1
    for baseline_path, baseline in loaded:
        name = baseline["benchmark"]
        if only and name not in only:
            continue
        if baseline.get("scale") != scale:
            print(f"SKIP  {name}: baseline scale {baseline.get('scale')!r} "
                  f"!= current {scale!r}")
            continue
        fresh_path = emitted_dir / baseline_path.name
        if not fresh_path.exists():
            print(f"FAIL  {name}: no emitted result at {fresh_path}")
            failures += 1
            continue
        fresh = json.loads(fresh_path.read_text())
        for metric, rule in baseline.get("regression", {}).items():
            base_value = baseline["metrics"][metric]
            new_value = fresh["metrics"].get(metric)
            if new_value is None:
                print(f"FAIL  {name}.{metric}: missing from emitted result")
                failures += 1
                continue
            direction = rule["direction"]
            tolerance = rule.get("tolerance", DEFAULT_TOLERANCE)
            ok = _within(direction, tolerance, new_value, base_value)
            status = "ok  " if ok else "FAIL"
            print(f"{status}  {name}.{metric}: {new_value:g} vs baseline "
                  f"{base_value:g} ({direction} is better, "
                  f"tolerance {tolerance:.0%})")
            if not ok:
                failures += 1
    # the reverse gap: a benchmark emitted a result but nobody committed
    # a baseline for it, so nothing above ever compared it -- fail
    # loudly instead of letting new benchmarks ride ungated forever
    for fresh_path in sorted(emitted_dir.glob("BENCH_*.json")):
        try:
            emitted_name = json.loads(fresh_path.read_text())["benchmark"]
        except (json.JSONDecodeError, KeyError, OSError) as exc:
            print(f"FAIL  {fresh_path}: unreadable emitted result ({exc!r})")
            failures += 1
            continue
        if only and emitted_name not in only:
            continue
        if emitted_name not in names:
            print(f"FAIL  {emitted_name}: emitted {fresh_path} has no "
                  f"committed baseline (expected "
                  f"{BASELINE_DIR / fresh_path.name})")
            failures += 1
    return failures


def main(argv=None) -> int:
    """CLI entry point: ``--check`` compares against baselines."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="compare emitted results against committed "
                        "baselines; non-zero exit on regression")
    parser.add_argument("--emitted-dir", default=None,
                        help="directory of fresh BENCH_*.json files "
                        "(default: benchmarks/out or REPRO_BENCH_OUT)")
    parser.add_argument("--only", action="append", default=[],
                        metavar="NAME",
                        help="check only this benchmark's baseline "
                        "(repeatable; default: all baselines)")
    args = parser.parse_args(argv)
    if not args.check:
        parser.error("nothing to do (pass --check)")
    failures = check(args.emitted_dir, only=tuple(args.only))
    if failures:
        print(f"{failures} benchmark regression(s)")
        return 1
    print("benchmark results within baseline tolerances")
    return 0


if __name__ == "__main__":
    sys.exit(main())
