"""Serving tier: micro-batched throughput vs a one-request-at-a-time loop.

Not a paper figure -- this benchmark gates the serving subsystem's
headline claim (:mod:`repro.serve`): a concurrent open-loop load
generator driving the asyncio server must sustain **at least 2x** the
throughput of a sequential client that sends one request and waits for
its response, at smoke scale, with the p95 response latency inside the
budget.

Both sides go through the real server -- same protocol, same engine,
same result cache -- so the speedup isolates what the serving tier
adds: requests arriving within the coalescing window share one engine
batch (deduped, locality-planned, one executor handoff), and
concurrent connections overlap their round trips instead of paying
them serially.

The load generator is *open loop*: every request has a scheduled
arrival time (a fixed offered rate), and its recorded latency runs
from that scheduled arrival to the response -- queueing delay counts,
exactly like a latency dashboard in front of a saturated service.

Emits ``BENCH_serve.json`` (via :mod:`emit`) with the deterministic
response tally regression-gated; wall-clock-derived numbers (speedup,
percentiles) are recorded for the archived trajectory but stay
ungated across machines.
"""

import os
import random
import threading
import time

from emit import emit

from repro import CompactDatabase, GraphDatabase
from repro.bench.harness import latency_percentiles
from repro.bench.report import save_report
from repro.datasets.grid import generate_grid
from repro.datasets.workload import place_node_points
from repro.serve import ServeClient, fleet_in_thread, serve_in_thread

DENSITY = 0.1
DISTINCT = 25
REPEAT = 24
CONCURRENCY = 4
MAX_BATCH = 32
WINDOW = 0.002
MIN_SPEEDUP = 2.0
P95_BUDGET_MS = 250.0
#: Offered open-loop rate as a multiple of the measured sequential rate.
OFFERED_MULTIPLE = 8.0


def _payloads(num_nodes: int, seed: int) -> list[dict]:
    """A mixed query workload: rknn (both methods), knn, range."""
    rng = random.Random(seed)
    base = []
    for _ in range(DISTINCT):
        node = rng.randrange(num_nodes)
        kind = rng.choice(("rknn", "rknn", "knn", "range"))
        if kind == "rknn":
            base.append({"op": "query", "kind": "rknn", "query": node,
                         "k": rng.choice((1, 2)),
                         "method": rng.choice(("eager", "lazy"))})
        elif kind == "knn":
            base.append({"op": "query", "kind": "knn", "query": node, "k": 2})
        else:
            base.append({"op": "query", "kind": "range", "query": node,
                         "k": 2, "radius": 10.0})
    payloads = base * REPEAT
    rng.shuffle(payloads)
    return payloads


def _build_db(profile) -> GraphDatabase:
    graph = generate_grid(profile.grid_fixed_nodes, average_degree=4.0,
                          seed=51)
    points = place_node_points(graph, DENSITY, seed=52)
    return GraphDatabase(graph, points, buffer_pages=profile.buffer_pages)


def _run_sequential(db, payloads):
    """One connection, one request in flight: send, wait, repeat.

    The server runs with a zero coalescing window so the baseline never
    pays artificial batching delay -- it is the strongest sound
    configuration for one-at-a-time traffic.
    """
    latencies = []
    with serve_in_thread(db, window=0.0, max_batch=MAX_BATCH) as handle:
        with ServeClient(handle.host, handle.port) as client:
            start = time.perf_counter()
            for payload in payloads:
                began = time.perf_counter()
                response = client.request(payload)
                latencies.append(time.perf_counter() - began)
                assert response["status"] == "ok", response
            elapsed = time.perf_counter() - start
    return elapsed, latencies


def _run_open_loop(db, payloads, rate_qps: float):
    """``CONCURRENCY`` connections, arrivals scheduled at ``rate_qps``.

    Open loop means the generator never waits for a response before
    sending the next request: each connection runs a sender thread that
    fires its requests at their scheduled arrival times and a receiver
    thread that collects the (order-preserved) responses, so the number
    in flight is whatever the offered rate produces -- queueing delay
    lands in the recorded latency, not in the arrival schedule.
    """
    with serve_in_thread(db, window=WINDOW, max_batch=MAX_BATCH) as handle:
        return _drive_open_loop(handle, payloads, rate_qps)


def _drive_open_loop(handle, payloads, rate_qps: float):
    """Drive one already-running server handle at the offered rate."""
    assigned = [list(range(conn, len(payloads), CONCURRENCY))
                for conn in range(CONCURRENCY)]
    latencies = [0.0] * len(payloads)
    tally = {"ok": 0, "overloaded": 0, "error": 0}
    lock = threading.Lock()

    clients = [ServeClient(handle.host, handle.port)
               for _ in range(CONCURRENCY)]
    start = time.perf_counter()

    def send(conn: int) -> None:
        client = clients[conn]
        for index in assigned[conn]:
            delay = start + index / rate_qps - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            client.send(payloads[index])

    def receive(conn: int) -> None:
        client = clients[conn]
        for index in assigned[conn]:
            response = client.recv()
            latencies[index] = (time.perf_counter()
                                - start - index / rate_qps)
            status = response.get("status")
            with lock:
                tally[status if status in tally else "error"] += 1

    threads = [threading.Thread(target=task, args=(conn,))
               for conn in range(CONCURRENCY)
               for task in (send, receive)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    server_metrics = clients[0].metrics()
    for client in clients:
        client.close()
    return elapsed, latencies, tally, server_metrics


def test_batched_serving_beats_sequential_loop_2x(benchmark, profile):
    def experiment():
        payloads = _payloads(profile.grid_fixed_nodes, seed=53)

        # best of two rounds per mode: one noisy scheduler stall must
        # not decide a CI gate in either direction
        sequential_seconds = min(
            _run_sequential(_build_db(profile), payloads)[0]
            for _ in range(2)
        )
        sequential_qps = len(payloads) / sequential_seconds

        offered = sequential_qps * OFFERED_MULTIPLE
        rounds = [_run_open_loop(_build_db(profile), payloads, offered)
                  for _ in range(2)]
        batched_seconds, latencies, tally, server_metrics = min(
            rounds, key=lambda outcome: outcome[0]
        )
        batched_qps = len(payloads) / batched_seconds

        admission = server_metrics["admission"]
        tail = latency_percentiles(latencies)
        checks = {
            "speedup": batched_qps / sequential_qps,
            "p95_ms": tail["p95_ms"],
            "tally": tally,
        }
        metrics = {
            "requests": len(payloads),
            "distinct": DISTINCT,
            "concurrency": CONCURRENCY,
            "ok": tally["ok"],
            "overloaded": tally["overloaded"],
            "errors": tally["error"],
            "batches": admission["batches"],
            "coalesced": admission["coalesced"],
            "speedup": round(checks["speedup"], 3),
            "p50_ms": round(tail["p50_ms"], 3),
            "p95_ms": round(tail["p95_ms"], 3),
            "p99_ms": round(tail["p99_ms"], 3),
        }
        rows = [
            {"mode": "sequential", "seconds": sequential_seconds,
             "qps": sequential_qps},
            {"mode": f"open loop x{CONCURRENCY}", "seconds": batched_seconds,
             "qps": batched_qps},
        ]
        return rows, checks, metrics

    rows, checks, metrics = benchmark.pedantic(experiment, rounds=1,
                                               iterations=1)

    lines = ["Serving tier -- grid, open-loop load vs sequential client",
             f"{'mode':>14}  {'seconds':>8}  {'q/s':>7}"]
    for row in rows:
        lines.append(f"{row['mode']:>14}  {row['seconds']:>8.4f}  "
                     f"{row['qps']:>7.0f}")
    lines.append(f"latency: p50 {metrics['p50_ms']:.1f} ms, "
                 f"p95 {metrics['p95_ms']:.1f} ms, "
                 f"p99 {metrics['p99_ms']:.1f} ms "
                 f"(budget: p95 <= {P95_BUDGET_MS:g} ms)")
    lines.append(f"batches: {metrics['batches']} for {metrics['requests']} "
                 f"requests ({metrics['coalesced']} coalesced)")
    lines.append(f"speedup: {checks['speedup']:.1f}x "
                 f"(gate: >= {MIN_SPEEDUP}x)")
    text = "\n".join(lines)
    print("\n" + text)
    save_report("serve_open_loop", text)
    # ok/errors are deterministic for the fixed workload (the queue
    # bound exceeds the request count, so nothing is ever shed); the
    # speedup and percentiles divide wall-clock times and stay ungated.
    emit("serve", metrics, regression={
        "ok": {"direction": "higher", "tolerance": 0.0},
        "errors": {"direction": "lower", "tolerance": 0.0},
    })

    assert checks["tally"]["error"] == 0, checks["tally"]
    assert checks["tally"]["ok"] == metrics["requests"], checks["tally"]
    assert checks["speedup"] >= MIN_SPEEDUP, (
        f"open-loop speedup {checks['speedup']:.2f}x below {MIN_SPEEDUP}x"
    )
    assert checks["p95_ms"] <= P95_BUDGET_MS, (
        f"p95 latency {checks['p95_ms']:.1f} ms over {P95_BUDGET_MS:g} ms"
    )


# -- multi-process fleet ----------------------------------------------------

#: Worker process count of the fleet under test (CI smoke uses 2).
FLEET_WORKERS = int(os.environ.get("REPRO_BENCH_FLEET_WORKERS", "2"))
#: Wall-clock scaling floors, asserted only on machines with enough
#: cores to host the router plus every worker (one core cannot
#: demonstrate process-level parallelism).
FLEET_SPEEDUP_FLOORS = {2: 1.2, 4: 3.0}


def _build_compact_db(profile) -> CompactDatabase:
    graph = generate_grid(profile.grid_fixed_nodes, average_degree=4.0,
                          seed=51)
    points = place_node_points(graph, DENSITY, seed=52)
    return CompactDatabase(graph, points)


def test_fleet_scales_out_the_compact_server(benchmark, profile, tmp_path):
    """``repro serve --workers N`` vs the single-process compact server.

    Both sides run the identical mixed workload at the same offered
    open-loop rate; the fleet's extra capacity shows up as higher
    sustained throughput.  The response tally is deterministic and
    regression-gated; the wall-clock speedup is recorded always but
    asserted only when the machine has at least ``workers + 1`` cores
    (router + workers), since one core serializes the processes.
    """
    snapshot = _build_compact_db(profile).save_snapshot(tmp_path / "snap")

    def experiment():
        payloads = _payloads(profile.grid_fixed_nodes, seed=53)
        sequential_seconds = min(
            _run_sequential(_build_compact_db(profile), payloads)[0]
            for _ in range(2)
        )
        offered = (len(payloads) / sequential_seconds) * OFFERED_MULTIPLE

        single_rounds = [
            _run_open_loop(_build_compact_db(profile), payloads, offered)
            for _ in range(2)
        ]
        single_seconds, _, single_tally, _ = min(
            single_rounds, key=lambda outcome: outcome[0]
        )

        fleet_rounds = []
        for _ in range(2):
            with fleet_in_thread(str(snapshot), workers=FLEET_WORKERS,
                                 window=WINDOW,
                                 max_batch=MAX_BATCH) as handle:
                fleet_rounds.append(
                    _drive_open_loop(handle, payloads, offered)
                )
        fleet_seconds, latencies, tally, server_metrics = min(
            fleet_rounds, key=lambda outcome: outcome[0]
        )

        tail = latency_percentiles(latencies)
        speedup = single_seconds / fleet_seconds
        metrics = {
            "requests": len(payloads),
            "workers": FLEET_WORKERS,
            "concurrency": CONCURRENCY,
            "ok": tally["ok"],
            "overloaded": tally["overloaded"],
            "errors": tally["error"],
            "single_ok": single_tally["ok"],
            "batches": server_metrics["admission"]["batches"],
            "reroutes": server_metrics["reroutes"],
            "live_workers": server_metrics["live_workers"],
            "speedup_vs_single_process": round(speedup, 3),
            "p50_ms": round(tail["p50_ms"], 3),
            "p95_ms": round(tail["p95_ms"], 3),
        }
        rows = [
            {"mode": "single process", "seconds": single_seconds,
             "qps": len(payloads) / single_seconds},
            {"mode": f"fleet x{FLEET_WORKERS}", "seconds": fleet_seconds,
             "qps": len(payloads) / fleet_seconds},
        ]
        return rows, tally, metrics, speedup

    rows, tally, metrics, speedup = benchmark.pedantic(experiment, rounds=1,
                                                       iterations=1)

    lines = [f"Serve fleet -- {FLEET_WORKERS} worker processes vs one "
             "compact server, same offered load",
             f"{'mode':>16}  {'seconds':>8}  {'q/s':>7}"]
    for row in rows:
        lines.append(f"{row['mode']:>16}  {row['seconds']:>8.4f}  "
                     f"{row['qps']:>7.0f}")
    lines.append(f"latency: p50 {metrics['p50_ms']:.1f} ms, "
                 f"p95 {metrics['p95_ms']:.1f} ms")
    lines.append(f"speedup: {speedup:.2f}x over the single process "
                 f"({os.cpu_count()} cores here)")
    text = "\n".join(lines)
    print("\n" + text)
    save_report("serve_fleet", text)
    emit("serve_fleet", metrics, regression={
        "ok": {"direction": "higher", "tolerance": 0.0},
        "errors": {"direction": "lower", "tolerance": 0.0},
    })

    assert tally["error"] == 0, tally
    assert tally["ok"] == metrics["requests"], tally
    assert metrics["live_workers"] == FLEET_WORKERS, metrics
    floor = FLEET_SPEEDUP_FLOORS.get(FLEET_WORKERS)
    cores = os.cpu_count() or 1
    if floor is not None and cores >= FLEET_WORKERS + 1:
        assert speedup >= floor, (
            f"fleet x{FLEET_WORKERS} speedup {speedup:.2f}x below "
            f"{floor}x on a {cores}-core machine"
        )
