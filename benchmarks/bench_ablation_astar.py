"""Ablation: what guided search buys -- and when it is unavailable.

Section 2.2 of the paper explains why its algorithms do not use
Euclidean bounds: in general graphs the coordinates may not exist, and
even when they do the weights may not respect them.  This ablation
quantifies the other side of that trade-off on the one network class
where bounds *are* valid (the SF-like spatial graph, weights =
Euclidean lengths):

* plain Dijkstra (the paper's baseline machinery),
* A* with the Euclidean bound (valid here only),
* A* with ALT landmark bounds (valid on any graph, needs
  preprocessing),
* bidirectional Dijkstra (valid on any graph, no preprocessing).

Settled-node counts are machine-independent; all methods return
identical distances by construction (asserted).
"""

import random
import statistics
import time

from repro.bench.report import format_table, save_report
from repro.paths.astar import astar_path, euclidean_heuristic
from repro.paths.bidirectional import bidirectional_search
from repro.paths.dijkstra import shortest_path
from repro.paths.landmarks import LandmarkIndex

QUERY_PAIRS = 20
LANDMARKS = 8


def test_ablation_guided_search(benchmark, spatial_graph, profile):
    rng = random.Random(17)
    pairs = [
        tuple(rng.sample(range(spatial_graph.num_nodes), 2))
        for _ in range(QUERY_PAIRS)
    ]

    def experiment():
        rows = []
        start = time.perf_counter()
        landmarks = LandmarkIndex.build(
            spatial_graph, spatial_graph.num_nodes, count=LANDMARKS, seed=5
        )
        alt_preprocess_s = time.perf_counter() - start

        def run(name, fn, preprocess_s=0.0):
            settled, times, dists = [], [], []
            for u, v in pairs:
                start = time.perf_counter()
                result = fn(u, v)
                times.append(time.perf_counter() - start)
                settled.append(result.nodes_settled)
                dists.append(result.distance)
            rows.append({
                "method": name,
                "preprocess_s": round(preprocess_s, 2),
                "settled": round(statistics.fmean(settled), 1),
                "query_ms": round(1000 * statistics.fmean(times), 3),
            })
            return dists

        reference = run("dijkstra", lambda u, v: shortest_path(spatial_graph, u, v))
        euclid = run(
            "a* euclid",
            lambda u, v: astar_path(
                spatial_graph, u, v,
                heuristic=euclidean_heuristic(spatial_graph.coords, v),
            ),
        )
        alt = run(
            "a* alt",
            lambda u, v: astar_path(
                spatial_graph, u, v, heuristic=landmarks.heuristic(v)
            ),
            preprocess_s=alt_preprocess_s,
        )
        bidi = run(
            "bidirectional",
            lambda u, v: bidirectional_search(spatial_graph, u, v),
        )
        for other in (euclid, alt, bidi):
            for a, b in zip(reference, other):
                assert abs(a - b) <= 1e-6 * max(a, 1.0)
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_table(
        "Ablation -- guided shortest-path search (SF-like spatial graph)", rows
    )
    print("\n" + text)
    save_report("ablation_astar", text)

    if profile.name == "smoke":
        return

    settled = {row["method"]: row["settled"] for row in rows}
    # every guided variant beats blind expansion on spatial long hauls
    assert settled["a* euclid"] < settled["dijkstra"]
    assert settled["bidirectional"] < settled["dijkstra"]
    assert settled["a* alt"] <= settled["dijkstra"]
