"""Compact backend: query throughput vs the buffered disk store.

Not a paper figure -- this benchmark validates the fast-path claim of
the compact (CSR flat-array) backend on the paper's grid dataset
(restricted points, D = 0.01, k = 1): serving the same workload from
memory-resident arrays instead of buffered disk pages must deliver at
least **3x query throughput** under the paper's cost model (CPU plus
10 ms per random I/O -- the metric every other benchmark in this suite
reports), replaying the workload cold exactly as ``bench_sharded``
does.  The compact backend performs zero page I/O, so its combined
cost is pure CPU; the disk store pays the charged faults of every
cold expansion.

Wall-clock CPU time is reported alongside for honesty: with a fully
warm buffer the two backends run the same algorithms and differ only
by buffer bookkeeping, so the CPU-only gap is modest -- the 3x-or-
better win is the I/O that the flat arrays never perform.

Answers are asserted identical to the disk store for every query.
"""

import time

from emit import emit

from repro import GraphDatabase
from repro.bench.report import save_report
from repro.compact import CompactDatabase
from repro.datasets.grid import generate_grid
from repro.datasets.workload import data_queries, place_node_points

DENSITY = 0.01
MIN_SPEEDUP = 3.0


def _run_cold(db, queries, k=1):
    """Replay the workload cold, accumulating combined cost and answers."""
    answers = []
    combined = 0.0
    io = 0
    wall_start = time.perf_counter()
    for query in queries:
        db.clear_buffer()
        result = db.rknn(query.location, k, method="eager", exclude=query.exclude)
        answers.append(result.points)
        combined += result.total_seconds()
        io += result.io
    wall = time.perf_counter() - wall_start
    return answers, combined, io, wall


def test_compact_3x_throughput_over_buffered_disk(benchmark, profile):
    def experiment():
        graph = generate_grid(profile.grid_fixed_nodes, average_degree=4.0,
                              seed=81)
        points = place_node_points(graph, DENSITY, seed=82)
        queries = data_queries(points, count=profile.workload_size, seed=83)

        disk = GraphDatabase(graph, points, buffer_pages=profile.buffer_pages)
        disk_answers, disk_cost, disk_io, disk_wall = _run_cold(disk, queries)

        compact = CompactDatabase(graph, points)
        answers, compact_cost, compact_io, compact_wall = _run_cold(
            compact, queries
        )

        count = len(queries)
        rows = [
            {"backend": "disk", "io": disk_io,
             "qps": count / disk_cost, "wall_qps": count / disk_wall},
            {"backend": "compact", "io": compact_io,
             "qps": count / compact_cost, "wall_qps": count / compact_wall},
        ]
        checks = {
            "answers_match": answers == disk_answers,
            "compact_io_free": compact_io == 0,
            "speedup": disk_cost / compact_cost,
        }
        return rows, checks

    rows, checks = benchmark.pedantic(experiment, rounds=1, iterations=1)

    lines = ["Compact backend -- grid, throughput vs buffered disk store",
             f"{'backend':>8}  {'io':>6}  {'q/s @10ms-IO':>14}  {'q/s wall':>10}"]
    for row in rows:
        lines.append(f"{row['backend']:>8}  {row['io']:>6}  "
                     f"{row['qps']:>14.2f}  {row['wall_qps']:>10.2f}")
    lines.append(f"combined-cost speedup: {checks['speedup']:.1f}x "
                 f"(gate: >= {MIN_SPEEDUP}x)")
    text = "\n".join(lines)
    print("\n" + text)
    save_report("compact_grid_throughput", text)
    emit(
        "compact",
        {
            "disk_io": rows[0]["io"],
            "compact_io": rows[1]["io"],
            "speedup": round(checks["speedup"], 3),
        },
        # I/O counters are deterministic given the seeds; the combined-
        # cost speedup divides by wall-clock CPU, so it stays ungated.
        regression={
            "disk_io": {"direction": "lower"},
            "compact_io": {"direction": "lower"},
        },
    )

    assert checks["answers_match"], \
        "compact answers diverge from the disk store"
    assert checks["compact_io_free"], \
        "the compact backend performed page I/O"
    assert checks["speedup"] >= MIN_SPEEDUP, \
        f"compact speedup {checks['speedup']:.2f}x below {MIN_SPEEDUP}x"
