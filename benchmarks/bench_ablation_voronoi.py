"""Ablation: network-Voronoi RNN vs the paper's eager algorithm.

The paper cites Kolahdouzan & Shahabi's Voronoi-based processing [8] as
the main materialization-flavoured alternative for spatial-network
queries.  The NVD route answers ``RNN(q)`` by rebuilding the diagram of
``P + {q}`` (one full multi-source sweep) and verifying the query
cell's neighbors; eager prunes with Lemma 1 and touches only a
neighborhood of ``q``.  This ablation reports both, over the same
restricted spatial workloads, at several densities -- the gap is the
measured value of connectivity-aware pruning over diagram rebuilding.
"""

import statistics

from repro import GraphDatabase
from repro.bench.report import format_table, save_report
from repro.datasets.workload import data_queries, place_node_points
from repro.storage.stats import CostModel
from repro.voronoi.rnn import voronoi_rnn

DENSITIES = (0.01, 0.05)


def _restricted_db(graph, density, buffer_pages):
    points = place_node_points(graph, density, seed=7, first_id=1000)
    return GraphDatabase(graph, points, buffer_pages=buffer_pages)


def test_ablation_voronoi_vs_eager(benchmark, spatial_graph, profile):
    model = CostModel()

    def experiment():
        rows = []
        for density in DENSITIES:
            db = _restricted_db(spatial_graph, density, profile.buffer_pages)
            queries = data_queries(db.points, count=profile.workload_size, seed=11)
            for method in ("eager", "voronoi"):
                ios, totals, visited = [], [], []
                for query in queries:
                    db.clear_buffer()
                    if method == "eager":
                        result = db.rknn(query.location, 1, method="eager",
                                         exclude=query.exclude)
                        points = list(result.points)
                        io, cpu = result.io, result.cpu_seconds
                        nodes = result.counters.nodes_visited
                    else:
                        before = db.tracker.snapshot()
                        with db.tracker.time_block():
                            points = voronoi_rnn(
                                db.view, query.location, exclude=query.exclude
                            )
                        diff = db.tracker.diff(before)
                        io, cpu = diff.io_operations, diff.cpu_seconds
                        nodes = diff.nodes_visited
                    ios.append(io)
                    totals.append(cpu + model.io_penalty_s * io)
                    visited.append(nodes)
                rows.append({
                    "D": density,
                    "method": method,
                    "io": round(statistics.fmean(ios), 1),
                    "visited": round(statistics.fmean(visited), 1),
                    "total_s": round(statistics.fmean(totals), 4),
                })
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_table(
        "Ablation -- Voronoi-based RNN vs eager (spatial, restricted, k=1)", rows
    )
    print("\n" + text)
    save_report("ablation_voronoi", text)

    if profile.name == "smoke":
        return

    # the diagram rebuild sweeps the whole network (one visit per node),
    # while eager only pays a local neighborhood of faults
    for density in DENSITIES:
        eager_row = next(r for r in rows if r["D"] == density
                         and r["method"] == "eager")
        nvd_row = next(r for r in rows if r["D"] == density
                       and r["method"] == "voronoi")
        assert nvd_row["visited"] >= 0.8 * spatial_graph.num_nodes
        assert nvd_row["io"] > 5 * eager_row["io"]
        assert nvd_row["total_s"] > eager_row["total_s"]
