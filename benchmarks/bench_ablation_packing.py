"""Ablation: does topology-aware page packing matter?

The paper stores adjacency lists of neighboring nodes in the same page
(the Chan & Zhang grouping); DESIGN.md implements this as BFS-order
packing with an optional Hilbert-order packer for spatial graphs.  This
ablation runs identical workloads over three physical layouts of the
same network -- BFS order, Hilbert order, and a random order (no
locality) -- and reports the I/O difference.  Expected: random packing
costs substantially more I/O at small buffer sizes; BFS and Hilbert are
comparable on road networks.
"""

import random

from repro import GraphDatabase
from repro.bench.harness import run_workload
from repro.bench.report import format_table, save_report
from repro.datasets.spatial import generate_spatial
from repro.datasets.workload import data_queries, place_edge_points

DENSITY = 0.01


def test_ablation_page_packing(benchmark, profile):
    def experiment():
        graph = generate_spatial(
            max(1_200, profile.spatial_nodes // 2), seed=91
        )
        points = place_edge_points(graph, DENSITY, seed=92)
        layouts = {}
        layouts["bfs"] = GraphDatabase(
            graph, points, buffer_pages=profile.buffer_pages
        )
        layouts["hilbert"] = GraphDatabase(
            graph, points, node_order="hilbert",
            buffer_pages=profile.buffer_pages,
        )
        # random layout: shuffle the BFS order through a custom database
        random_db = GraphDatabase(
            graph, points, buffer_pages=profile.buffer_pages
        )
        shuffled = list(range(graph.num_nodes))
        random.Random(93).shuffle(shuffled)
        from repro.core.network import NetworkView
        from repro.storage.disk import DiskGraph, EdgePointStore

        random_db.disk = DiskGraph(
            graph, random_db.buffer,
            page_size=random_db.page_size, order=shuffled,
        )
        random_db._edge_store = EdgePointStore(
            graph, points, random_db.buffer,
            page_size=random_db.page_size, order=shuffled,
        )
        random_db.view = NetworkView(
            random_db.disk, points, random_db.tracker, random_db._edge_store
        )
        layouts["random"] = random_db

        rows = []
        for name, db in layouts.items():
            queries = data_queries(db.points, count=profile.workload_size,
                                   seed=94)
            for method in ("eager", "lazy"):
                cost = run_workload(db, queries, k=1, method=method)
                rows.append({"layout": name, **cost.row()})
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_table(
        "Ablation -- page-packing order (SF-like, D=0.01, k=1)", rows
    )
    print("\n" + text)
    save_report("ablation_packing", text)

    if profile.name == "smoke":
        return  # smoke scale only checks the pipeline; shapes need size

    # random packing must cost more I/O than topology-aware packing
    def io_of(layout, method):
        return next(
            r["io"] for r in rows
            if r["layout"] == layout and r["method"] == method
        )

    for method in ("eager", "lazy"):
        assert io_of("random", method) > io_of("bfs", method)
