"""Figure 15: cost versus |V| on BRITE topologies (D = 0.01, k = 1).

Paper setting: preferential-attachment internet topologies exhibit
*exponential expansion* -- a few hops reach most of the network -- so
the lazy variants end up visiting most of the graph while the eager
variants prune early.  Expected shape: eager and eager-M beat lazy and
lazy-EP by a wide margin, eager-M cheapest overall.
"""


from repro import GraphDatabase
from repro.bench.harness import run_workload
from repro.bench.report import format_figure, save_report
from repro.datasets.brite import generate_brite
from repro.datasets.workload import data_queries, place_node_points

METHODS = ("eager", "eager-m", "lazy", "lazy-ep")
DENSITY = 0.01


def test_fig15_node_sweep(benchmark, profile):
    def experiment():
        rows = []
        for num_nodes in profile.brite_nodes:
            graph = generate_brite(num_nodes, seed=21)
            points = place_node_points(graph, DENSITY, seed=22)
            db = GraphDatabase(graph, points,
                               buffer_pages=profile.buffer_pages)
            db.materialize(2)  # K = k + 1 covers the excluded query point
            queries = data_queries(points, count=profile.workload_size, seed=23)
            for method in METHODS:
                cost = run_workload(db, queries, k=1, method=method)
                rows.append({"|V|": num_nodes, **cost.row()})
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_figure(
        "Figure 15 -- cost vs |V| (BRITE, D=0.01, k=1)", rows, group_by="|V|"
    )
    print("\n" + text)
    save_report("fig15_brite_nodes", text)

    if profile.name == "smoke":
        return  # smoke scale only checks the pipeline; shapes need size

    # shape: at the largest size, the eager variants beat the lazy ones
    largest = [r for r in rows if r["|V|"] == profile.brite_nodes[-1]]
    total = {r["method"]: r["total_s"] for r in largest}
    assert total["eager"] < total["lazy"]
    assert total["eager-m"] < total["lazy"]
    assert total["eager-m"] <= total["eager"]
