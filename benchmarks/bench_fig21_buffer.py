"""Figure 21: cost versus LRU buffer size (SF, D = 0.01, k = 1).

Paper setting: the buffer is swept from 0 (every access faults) up to
sizes that hold the whole working set.  Expected shape: at buffer = 0
eager is far worse than lazy (its range-NN probes revisit the same
pages), but a small buffer fixes that; eager stabilizes with a smaller
buffer than lazy because it visits fewer distinct pages.
"""

from benchmarks.conftest import make_spatial_db, spatial_queries
from repro.bench.harness import run_workload
from repro.bench.report import format_figure, save_report

METHODS = ("eager", "lazy")
DENSITY = 0.01


def test_fig21_buffer_sweep(benchmark, spatial_graph, profile):
    sizes = profile.buffer_sizes

    def experiment():
        rows = []
        for buffer_pages in sizes:
            db = make_spatial_db(
                spatial_graph, profile, DENSITY, buffer_pages=buffer_pages
            )
            queries = spatial_queries(db, profile)
            for method in METHODS:
                cost = run_workload(db, queries, k=1, method=method)
                rows.append({"buffer": buffer_pages, **cost.row()})
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_figure(
        f"Figure 21 -- cost vs buffer size (SF, D={DENSITY}, k=1)",
        rows, group_by="buffer",
    )
    print("\n" + text)
    save_report("fig21_buffer", text)

    if profile.name == "smoke":
        return  # smoke scale only checks the pipeline; shapes need size

    def series(method):
        return [r["io"] for r in rows if r["method"] == method]

    eager, lazy = series("eager"), series("lazy")
    # shape 1: with no buffer, eager faults (much) more than lazy
    assert eager[0] >= lazy[0]
    # shape 2: buffering helps eager dramatically
    assert eager[-1] < 0.25 * eager[0]
    # shape 3: fully buffered, eager reads no more pages than lazy
    assert eager[-1] <= lazy[-1]
