"""Figure 17: cost versus density on the San-Francisco-like road network.

Paper setting: unrestricted network (points on edges), k = 1, density
swept.  Expected shape: eager beats lazy on I/O but loses on CPU;
lazy-EP helps lazy at low densities; eager-M has the lowest total cost;
everything improves with density (no exponential expansion here).
"""

from benchmarks.conftest import make_spatial_db, spatial_queries
from repro.bench.harness import run_workload
from repro.bench.report import format_figure, save_report

METHODS = ("eager", "eager-m", "lazy", "lazy-ep")


def test_fig17_density_sweep(benchmark, spatial_graph, profile):
    densities = profile.densities

    def experiment():
        rows = []
        for density in densities:
            db = make_spatial_db(spatial_graph, profile, density, capacity=2)
            queries = spatial_queries(db, profile)
            for method in METHODS:
                cost = run_workload(db, queries, k=1, method=method)
                rows.append({"D": density, **cost.row()})
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_figure("Figure 17 -- cost vs D (SF, k=1)", rows, group_by="D")
    print("\n" + text)
    save_report("fig17_sf_density", text)

    if profile.name == "smoke":
        return  # smoke scale only checks the pipeline; shapes need size

    lowest = [r for r in rows if r["D"] == densities[0]]
    total = {r["method"]: r["total_s"] for r in lowest}
    io = {r["method"]: r["io"] for r in lowest}
    cpu = {r["method"]: r["cpu_s"] for r in lowest}
    # eager: better I/O than lazy, worse CPU
    assert io["eager"] <= io["lazy"]
    assert cpu["eager"] >= cpu["lazy"]
    # eager-M is the best overall choice
    assert total["eager-m"] == min(total.values())
    # every method improves as density rises
    for method in METHODS:
        totals = [r["total_s"] for r in rows if r["method"] == method]
        assert totals[-1] <= totals[0]
