"""Figure 22: maintenance cost of the materialized K-NN lists (SF).

Paper setting: insertions follow the data distribution, deletions pick
random existing points; the materialized lists are repaired on every
operation (Section 4.1).  Expected shapes: (a) deletions cost more than
insertions (two expansion steps) and both get cheaper as density rises
(smaller influence regions); (b) cost grows with K.
"""

import random

from benchmarks.conftest import make_spatial_db
from repro.bench.harness import run_update_workload
from repro.bench.report import format_table, save_report

DENSITY = 0.01


def _update_locations(db, count, seed):
    rng = random.Random(seed)
    edges = list(db.graph.edges())
    inserts = []
    for _ in range(count):
        u, v, w = edges[rng.randrange(len(edges))]
        inserts.append((u, v, rng.uniform(0.0, w)))
    deletes = rng.sample(sorted(db.points.ids()), min(count, len(db.points)))
    return inserts, deletes


def test_fig22a_updates_vs_density(benchmark, spatial_graph, profile):
    densities = [d for d in profile.densities if d >= 0.005]

    def experiment():
        rows = []
        for density in densities:
            db = make_spatial_db(spatial_graph, profile, density, capacity=1)
            inserts, deletes = _update_locations(db, profile.update_count, seed=81)
            stats = run_update_workload(db, inserts, deletes)
            rows.append({"D": density, **{k: round(v, 4) for k, v in stats.items()}})
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_table("Figure 22a -- update cost vs D (SF, K=1)", rows)
    print("\n" + text)
    save_report("fig22a_updates_density", text)

    if profile.name == "smoke":
        return  # smoke scale only checks the pipeline; shapes need size

    # shape 1: deletions are more expensive than insertions
    assert sum(r["delete_io"] for r in rows) >= sum(r["insert_io"] for r in rows)
    # shape 2: higher density shrinks the influence region
    assert rows[-1]["insert_io"] <= rows[0]["insert_io"]


def test_fig22b_updates_vs_capacity(benchmark, spatial_graph, profile):
    capacities = profile.capacity_values

    def experiment():
        rows = []
        for capacity in capacities:
            db = make_spatial_db(spatial_graph, profile, DENSITY, capacity=capacity)
            inserts, deletes = _update_locations(db, profile.update_count, seed=82)
            stats = run_update_workload(db, inserts, deletes)
            rows.append({"K": capacity, **{k: round(v, 4) for k, v in stats.items()}})
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    text = format_table(f"Figure 22b -- update cost vs K (SF, D={DENSITY})", rows)
    print("\n" + text)
    save_report("fig22b_updates_capacity", text)

    if profile.name == "smoke":
        return  # smoke scale only checks the pipeline; shapes need size

    # shape: the I/O overhead increases with K
    assert rows[-1]["insert_io"] >= rows[0]["insert_io"]
    assert rows[-1]["delete_io"] >= rows[0]["delete_io"]
