"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError`, so callers
can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class GraphError(ReproError):
    """Structural problem with a graph (bad node id, bad weight, ...)."""


class StorageError(ReproError):
    """Problem in the simulated disk/page/buffer layer."""


class PointError(ReproError):
    """Problem with a data-point set (duplicate ids, bad locations, ...)."""


class QueryError(ReproError):
    """Invalid query parameters (unknown source, non-positive k, ...)."""


class MaterializationError(ReproError):
    """Problem building or maintaining materialized K-NN lists."""
