"""repro: Reverse nearest neighbors in large graphs.

A faithful, self-contained reproduction of

    M. L. Yiu, D. Papadias, N. Mamoulis, Y. Tao,
    "Reverse Nearest Neighbors in Large Graphs",
    ICDE 2005 (extended version: IEEE TKDE 18(4), 2006).

The package implements the paper's disk-based graph storage scheme, the
eager / lazy / eager-M / lazy-EP RkNN algorithms, bichromatic and
continuous variants, unrestricted networks with data points on edges,
K-NN materialization with update maintenance, the data-set generators
used by the evaluation, and a benchmark harness that regenerates every
table and figure of the paper's experimental study.

Beyond the paper's core, the library also ships the substrates and
comparators its related-work section describes: a shortest-path stack
(:mod:`repro.paths`: Dijkstra, A*, bidirectional search, ALT
landmarks), network Voronoi diagrams with an NVD-based RNN competitor
(:mod:`repro.voronoi`), HEPV-style hierarchical partial materialization
(:mod:`repro.hier`), a VP-tree metric-index RNN comparator
(:mod:`repro.metric`), continuous RkNN monitoring over update streams
(:mod:`repro.streams`), and the cost/selectivity models plus a
calibrating planner the paper's conclusion calls for
(:mod:`repro.analytics`).  For scale-out, :mod:`repro.shard` cuts the
network into K edge-disjoint storage shards behind
:class:`ShardedDatabase` / :class:`ShardedDirectedDatabase` facades
that answer every query identically to the single-store databases
while the batch engine executes independent shards concurrently.  For
raw speed, :mod:`repro.compact` flattens the network into CSR arrays
behind :class:`CompactDatabase` / :class:`CompactDirectedDatabase`
facades -- the memory-resident fast path serving the same answers with
zero page I/O.  Every backend can additionally preprocess the network
into an ALT landmark distance oracle (:mod:`repro.oracle`,
``db.build_oracle()``): triangle-inequality bounds the expansion loops
consult to skip provably irrelevant work, cutting expanded-edge counts
and I/O while answers stay bitwise identical.  The serving tier
(:mod:`repro.serve`) exposes any backend over TCP: an asyncio server
micro-batches JSON query requests through the engine, sheds load
beyond its admission bound with explicit ``overloaded`` responses, and
applies mutations behind a generation-swap protocol so no response
ever mixes update generations.

Quickstart::

    from repro import GraphDatabase, NodePointSet

    edges = [(0, 1, 2.0), (1, 2, 1.0), (2, 3, 4.0), (3, 0, 3.0)]
    db = GraphDatabase.from_edges(edges, points=NodePointSet({7: 0, 8: 2}))
    print(db.rknn(query=1, k=1).points)
"""

from repro.api import GraphDatabase
from repro.api_directed import DirectedGraphDatabase
from repro.compact import CompactDatabase, CompactDirectedDatabase
from repro.core.result import KnnResult, RnnResult, UpdateResult
from repro.engine import BatchResult, QueryEngine, QuerySpec
from repro.errors import (
    GraphError,
    MaterializationError,
    PointError,
    QueryError,
    ReproError,
    StorageError,
)
from repro.graph.graph import Graph
from repro.graph.digraph import DiGraph
from repro.graph.builder import GraphBuilder
from repro.core.result import OracleResult
from repro.oracle import DistanceOracle, LandmarkStore, LowerBoundProvider
from repro.points.points import EdgePointSet, NodePointSet, PointSet
from repro.qlang import compile_text, execute, parse
from repro.serve import RknnServer, ServeClient, serve_in_thread
from repro.shard import ShardedDatabase, ShardedDirectedDatabase
from repro.storage.stats import CostModel, CostTracker

__version__ = "1.0.0"

__all__ = [
    "BatchResult",
    "CompactDatabase",
    "CompactDirectedDatabase",
    "CostModel",
    "CostTracker",
    "DiGraph",
    "DistanceOracle",
    "DirectedGraphDatabase",
    "EdgePointSet",
    "Graph",
    "GraphBuilder",
    "GraphDatabase",
    "GraphError",
    "KnnResult",
    "LandmarkStore",
    "LowerBoundProvider",
    "MaterializationError",
    "NodePointSet",
    "OracleResult",
    "PointError",
    "PointSet",
    "QueryEngine",
    "QueryError",
    "QuerySpec",
    "ReproError",
    "RknnServer",
    "RnnResult",
    "ServeClient",
    "ShardedDatabase",
    "ShardedDirectedDatabase",
    "StorageError",
    "UpdateResult",
    "__version__",
    "compile_text",
    "execute",
    "parse",
    "serve_in_thread",
]
