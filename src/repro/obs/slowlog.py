"""Threshold-gated JSONL slow-query log.

A :class:`SlowQueryLog` appends one JSON line per query whose
execution exceeded a latency budget -- the production tool for finding
*which* queries burn the cost model's budget without tracing every
request.  The engine times each executed spec only when a slow log (or
a tracer) is attached, so the default configuration pays nothing.

Each record carries the spec identity (kind, query, ``k``, method),
the measured latency, and the query's own counter diff (``io``,
``edges_expanded``, ``nodes_visited``), which is exactly the per-query
breakdown the paper's experiments tabulate::

    {"ts": 1717..., "kind": "rknn", "query": 17, "k": 2,
     "elapsed_ms": 142.7, "io": 31, "edges_expanded": 904, ...}
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

#: Default latency budget: 100 ms, ten paper-model I/Os.
DEFAULT_THRESHOLD_MS = 100.0


class SlowQueryLog:
    """Append-only JSONL sink for queries slower than a threshold.

    Parameters
    ----------
    path:
        The JSONL file to append to (created on first slow query).
    threshold_ms:
        Minimum elapsed milliseconds before a query is recorded;
        ``0.0`` records every query (useful in tests).

    The log is thread-safe (the engine's worker pool may record
    concurrently) and keeps a :attr:`recorded` counter so callers can
    observe gating without reading the file back.
    """

    def __init__(self, path, threshold_ms: float = DEFAULT_THRESHOLD_MS):
        if threshold_ms < 0:
            raise ValueError(f"threshold_ms must be >= 0, got {threshold_ms}")
        self.path = Path(path)
        self.threshold_ms = threshold_ms
        self.recorded = 0
        self._lock = threading.Lock()

    @property
    def threshold_seconds(self) -> float:
        """The gate in the engine's native unit."""
        return self.threshold_ms / 1000.0

    def record(self, spec, result, elapsed_seconds: float, *,
               backend: str = "", via: str = "scalar") -> bool:
        """Record one executed query if it crossed the threshold.

        ``spec`` is the executed :class:`~repro.engine.spec.QuerySpec`;
        ``result`` its facade result (counter source); ``via`` names
        the execution path (``scalar`` or ``kernel`` -- kernel-batched
        specs report their amortized share of the pass).  Returns
        whether a line was written.
        """
        if elapsed_seconds < self.threshold_seconds:
            return False
        counters = result.counters
        entry = {
            "ts": round(time.time(), 3),
            "kind": spec.kind,
            "query": spec.query if spec.query is not None else list(spec.route or ()),
            "k": spec.k,
            "method": spec.method,
            "elapsed_ms": round(elapsed_seconds * 1000.0, 3),
            "io": result.io,
            "edges_expanded": counters.edges_expanded,
            "nodes_visited": counters.nodes_visited,
            "oracle_prunes": counters.oracle_prunes,
            "backend": backend,
            "via": via,
        }
        line = json.dumps(entry, separators=(",", ":"), default=str) + "\n"
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
            self.recorded += 1
        return True
