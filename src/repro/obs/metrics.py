"""The unified metrics registry behind the servers' ``/metrics``.

One :class:`MetricsRegistry` per server owns every observable number:

* :class:`Counter` -- monotonically increasing totals (queries served,
  mutations applied, shed requests).  A counter may *own* its value
  (bumped with :meth:`Counter.inc`) or derive it from a callback, which
  is how pre-existing sources of truth (batcher stats, the engine's
  cache counters, the database's :class:`~repro.storage.stats.CostTracker`)
  join the registry without double bookkeeping.
* :class:`Gauge` -- point-in-time readings (queue depth, live workers,
  the current generation), usually callback-backed.
* :class:`Histogram` -- log-bucketed latency distributions whose
  p50/p95/p99 are derived from the bucket counts alone, so the
  percentiles survive JSON/Prometheus round-trips and merge across
  scrapes the way production systems expect.

The registry renders two ways: :meth:`MetricsRegistry.to_dict` (flat
JSON, embedded in the servers' existing ``/metrics`` payloads) and
:meth:`MetricsRegistry.render_prometheus` (the text exposition format,
served at ``/metrics?format=prometheus``).  :func:`parse_prometheus_text`
is the tiny in-repo parser CI uses to validate the exposition without
an external ``promtool``.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Sequence

#: Default histogram bucket upper bounds, in seconds: log-spaced from
#: 100 us to ~105 s (doubling), the serving-latency range of interest.
DEFAULT_BUCKETS = tuple(0.0001 * 2.0 ** i for i in range(21))

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")

_SAMPLE_RE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*\Z"
)


class Metric:
    """Shared naming/help plumbing of every metric kind."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help


class Counter(Metric):
    """A monotonically increasing total.

    Owned counters start at 0 and move through :meth:`inc`;
    callback-backed counters (``fn=...``) read an external source of
    truth at render time instead.
    """

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 fn: Callable[[], float] | None = None):
        super().__init__(name, help)
        self._fn = fn
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (callback-backed counters refuse: their
        source of truth lives elsewhere)."""
        if self._fn is not None:
            raise TypeError(f"counter {self.name!r} is callback-backed")
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        """The current total."""
        return self._value if self._fn is None else self._fn()


class Gauge(Metric):
    """A value that goes up and down (depth, membership, generation)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 fn: Callable[[], float] | None = None):
        super().__init__(name, help)
        self._fn = fn
        self._value = 0

    def set(self, value) -> None:
        """Record a new reading (owned gauges only)."""
        if self._fn is not None:
            raise TypeError(f"gauge {self.name!r} is callback-backed")
        self._value = value

    @property
    def value(self):
        """The current reading."""
        return self._value if self._fn is None else self._fn()


class Histogram(Metric):
    """Log-bucketed distribution with quantiles derived from buckets.

    Observations land in the first bucket whose upper bound is >= the
    value (one implicit ``+Inf`` bucket catches the rest).  Quantiles
    interpolate within the winning bucket, so ``quantile(0.5)`` needs
    only the bucket counts -- exactly what a Prometheus consumer
    computes from the exposition.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help)
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value`` seconds."""
        index = len(self.bounds)
        for position, bound in enumerate(self.bounds):
            if value <= bound:
                index = position
                break
        with self._lock:
            self._counts[index] += count
            self._sum += value * count
            self._count += count

    @property
    def count(self) -> int:
        """Total observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of observed values (seconds)."""
        return self._sum

    def quantile(self, q: float) -> float:
        """The q-quantile (0..1) estimated from the bucket counts.

        Interpolates linearly inside the winning bucket; an empty
        histogram reports 0.0, and observations beyond the last bound
        report the last finite bound (the standard le-bucket clamp).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        rank = math.ceil(q * total)
        cumulative = 0
        for index, count in enumerate(counts):
            cumulative += count
            if cumulative >= rank and count:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                lower = self.bounds[index - 1] if index else 0.0
                upper = self.bounds[index]
                within = (rank - (cumulative - count)) / count
                return lower + (upper - lower) * within
        return self.bounds[-1]  # pragma: no cover - loop always returns

    def percentiles(self) -> dict[str, float]:
        """p50/p95/p99 in milliseconds (the serving-dashboard summary)."""
        return {
            "p50_ms": round(self.quantile(0.50) * 1000.0, 4),
            "p95_ms": round(self.quantile(0.95) * 1000.0, 4),
            "p99_ms": round(self.quantile(0.99) * 1000.0, 4),
        }

    def to_dict(self) -> dict:
        """Count, sum and derived percentiles for the JSON rendering."""
        return {"count": self._count,
                "sum_seconds": round(self._sum, 6),
                **self.percentiles()}

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper bound, count)`` pairs, ``inf`` last."""
        pairs: list[tuple[float, int]] = []
        cumulative = 0
        with self._lock:
            counts = list(self._counts)
        for bound, count in zip((*self.bounds, math.inf), counts):
            cumulative += count
            pairs.append((bound, cumulative))
        return pairs


class MetricsRegistry:
    """Every metric of one server, renderable as JSON or Prometheus.

    ``namespace`` prefixes exposition names (``repro_queries_served``);
    JSON keys stay unprefixed, matching the servers' existing payloads.
    """

    def __init__(self, namespace: str = "repro"):
        if not _NAME_RE.match(namespace):
            raise ValueError(f"invalid namespace {namespace!r}")
        self.namespace = namespace
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _register(self, metric: Metric) -> Metric:
        with self._lock:
            if metric.name in self._metrics:
                raise ValueError(f"duplicate metric {metric.name!r}")
            self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                fn: Callable[[], float] | None = None) -> Counter:
        """Create and register a :class:`Counter`."""
        return self._register(Counter(name, help, fn=fn))

    def gauge(self, name: str, help: str = "",
              fn: Callable[[], float] | None = None) -> Gauge:
        """Create and register a :class:`Gauge`."""
        return self._register(Gauge(name, help, fn=fn))

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """Create and register a :class:`Histogram`."""
        return self._register(Histogram(name, help, buckets=buckets))

    def metrics(self) -> tuple[Metric, ...]:
        """Registered metrics in registration order."""
        with self._lock:
            return tuple(self._metrics.values())

    def to_dict(self) -> dict:
        """Flat ``{name: value}`` (histograms expand to summary dicts)."""
        body: dict = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                body[metric.name] = metric.to_dict()
            else:
                body[metric.name] = metric.value
        return body

    def render_prometheus(self) -> str:
        """The text exposition format (version 0.0.4).

        Counters gain the conventional ``_total`` suffix; histograms
        expand to cumulative ``_bucket{le=...}`` series plus ``_sum``
        and ``_count``.
        """
        lines: list[str] = []
        for metric in self.metrics():
            name = f"{self.namespace}_{metric.name}"
            if metric.kind == "counter":
                name += "_total"
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                for bound, count in metric.bucket_counts():
                    label = "+Inf" if math.isinf(bound) else repr(bound)
                    lines.append(f'{name}_bucket{{le="{label}"}} {count}')
                lines.append(f"{name}_sum {_format_value(metric.sum)}")
                lines.append(f"{name}_count {metric.count}")
            else:
                lines.append(f"{name} {_format_value(metric.value)}")
        return "\n".join(lines) + "\n"


def _format_value(value) -> str:
    """One sample value in exposition syntax."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def parse_prometheus_text(text: str) -> dict[str, float]:
    """Parse (and thereby validate) a text exposition document.

    Returns ``{sample name: value}`` with any labels kept verbatim in
    the key (``repro_batch_seconds_bucket{le="0.0001"}``).  Raises
    :class:`ValueError` on any malformed line or non-numeric value --
    the in-repo stand-in for ``promtool check metrics`` used by tests
    and the CI scrape step.
    """
    samples: dict[str, float] = {}
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"malformed exposition line {number}: {raw!r}")
        labels = match.group("labels")
        key = match.group("name") + (f"{{{labels}}}" if labels else "")
        try:
            value = float(match.group("value"))
        except ValueError as exc:
            raise ValueError(
                f"non-numeric sample value on line {number}: {raw!r}"
            ) from exc
        samples[key] = value
    if not samples:
        raise ValueError("exposition document contains no samples")
    return samples
