"""Structured spans: what one query (or batch) actually did, and where.

A :class:`Tracer` collects :class:`Span` records -- name, monotonic
start offset, duration, parent id, free-form attributes -- into one
trace.  Spans nest through a per-thread context stack, so code deep in
the engine can open a span without threading ids through every call;
worker threads attach to the batch's root through an explicit
``parent=``.  The resulting tree serializes to plain JSON
(:meth:`Tracer.to_payload`), travels across the serve protocol and
fleet worker pipes as a ``trace`` response field, and pretty-prints as
an indented tree (:func:`render_trace`, the ``repro trace`` CLI).

Tracing is **opt-in per call**: every instrumentation point goes
through a tracer object, and the default :data:`NOOP_TRACER` answers
each one with a shared do-nothing span, so a production query with
tracing off pays a couple of attribute loads and nothing else.
Attribute conventions used by the engine instrumentation:

``execute.<kind>`` spans
    one per query actually executed against a backend, carrying that
    query's own counter diff (``edges_expanded``, ``nodes_visited``,
    ``oracle_prunes``, ``io``) -- summing an attribute over a trace's
    ``execute.*`` spans therefore equals the
    :class:`~repro.storage.stats.CostTracker` total of the batch;
``kernel.batch_rknn`` spans
    one vectorized pass of the compact backend's batch kernel; its
    per-spec children carry the counter attributes (the kernel span
    itself does not, so nothing is double-counted);
``engine.run_batch`` roots
    batch size, backend, worker count, cache hit/miss totals.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager


class Span:
    """One named, timed region of work inside a trace.

    Attributes
    ----------
    span_id:
        Trace-unique integer id (assigned by the tracer).
    parent_id:
        The enclosing span's id, or ``None`` for a root.
    name:
        Dotted span name (``engine.run_batch``, ``execute.rknn``, ...).
    start:
        Monotonic offset in seconds from the tracer's origin.
    duration:
        Wall-clock seconds the span was open (0.0 for instantaneous
        marker spans).
    attributes:
        Free-form JSON-serializable key/value pairs.
    """

    __slots__ = ("span_id", "parent_id", "name", "start", "duration",
                 "attributes")

    def __init__(self, span_id: int, parent_id: int | None, name: str,
                 start: float, duration: float = 0.0,
                 attributes: dict | None = None):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.duration = duration
        self.attributes = dict(attributes or {})

    def set(self, **attributes) -> "Span":
        """Attach (or overwrite) attributes; returns the span."""
        self.attributes.update(attributes)
        return self

    def to_payload(self) -> dict:
        """The span as a plain JSON-serializable mapping."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ms": round(self.start * 1000.0, 6),
            "duration_ms": round(self.duration * 1000.0, 6),
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, {self.duration * 1e3:.3f} ms)")


class _NoopSpan:
    """The shared do-nothing span the :data:`NOOP_TRACER` hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attributes) -> "_NoopSpan":
        """Discard attributes (tracing is off)."""
        return self

    @property
    def span_id(self) -> None:
        """No id: a no-op span can never be a parent worth naming."""
        return None


_NOOP_SPAN = _NoopSpan()

#: Sentinel distinguishing "inherit the thread's current span" from an
#: explicit ``parent=None`` (force a root span).
_INHERIT = object()


class Tracer:
    """Collects one trace: a thread-safe list of finished spans.

    The tracer keeps a per-thread stack of open spans; :meth:`span`
    without an explicit ``parent`` nests under the thread's innermost
    open span.  Code that hops threads (the engine's worker pool, the
    serve executor) passes the parent id explicitly, which also seeds
    the new thread's stack so deeper spans nest normally.
    """

    #: Real tracers record; the :class:`NoopTracer` reports ``False``
    #: so hot paths can skip attribute computation entirely.
    enabled = True

    def __init__(self):
        self._origin = time.perf_counter()
        self._ids = itertools.count(1)
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- context ------------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_id(self) -> int | None:
        """The innermost open span's id on this thread (``None`` at root)."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, parent=_INHERIT, **attributes):
        """Open a span around a ``with`` block.

        ``parent`` defaults to the thread's current span; pass an id
        (or ``None``) to attach explicitly -- the cross-thread hand-off
        used by worker pools.  Yields the :class:`Span`, whose
        :meth:`Span.set` can attach outcome attributes before the
        block closes.
        """
        parent_id = self.current_id() if parent is _INHERIT else parent
        span = Span(next(self._ids), parent_id, name,
                    time.perf_counter() - self._origin,
                    attributes=attributes)
        stack = self._stack()
        stack.append(span.span_id)
        began = time.perf_counter()
        try:
            yield span
        finally:
            span.duration = time.perf_counter() - began
            stack.pop()
            with self._lock:
                self._spans.append(span)

    def add(self, name: str, parent: int | None = None,
            duration: float = 0.0, **attributes) -> Span:
        """Record an already-finished (marker) span.

        Used for per-item accounting inside an aggregate operation --
        e.g. one marker per query served by a vectorized kernel pass,
        each carrying its own counter share under the kernel's span.
        """
        span = Span(next(self._ids), parent, name,
                    time.perf_counter() - self._origin,
                    duration=duration, attributes=attributes)
        with self._lock:
            self._spans.append(span)
        return span

    # -- output -------------------------------------------------------------

    @property
    def spans(self) -> tuple[Span, ...]:
        """Finished spans, in completion order."""
        with self._lock:
            return tuple(self._spans)

    def to_payload(self) -> dict:
        """The whole trace as a JSON-serializable ``{"spans": [...]}``.

        This is the wire form carried by serve responses (the ``trace``
        field) and by ``EXPLAIN`` output; :func:`render_trace` turns it
        back into an indented tree.
        """
        return {"spans": [span.to_payload() for span in self.spans]}

    def attribute_total(self, key: str) -> float:
        """Sum attribute ``key`` over every span carrying it.

        The trace-side form of a :class:`~repro.storage.stats.CostTracker`
        total: only leaf ``execute.*`` spans carry counter attributes,
        so the sum never double-counts aggregate spans.
        """
        return sum(span.attributes.get(key, 0) for span in self.spans)


class NoopTracer:
    """The do-nothing tracer wired in by default everywhere.

    Every method returns immediately with shared constants; the
    instrumented hot paths additionally check :attr:`enabled` before
    computing attributes, so tracing-off costs no allocations.
    """

    enabled = False

    def current_id(self) -> None:
        """Always ``None``: nothing records, nothing nests."""
        return None

    def span(self, name: str, parent=_INHERIT, **attributes) -> _NoopSpan:
        """The shared no-op context manager."""
        return _NOOP_SPAN

    def add(self, name: str, parent: int | None = None,
            duration: float = 0.0, **attributes) -> _NoopSpan:
        """Discard the marker."""
        return _NOOP_SPAN

    @property
    def spans(self) -> tuple:
        """Always empty."""
        return ()

    def to_payload(self) -> dict:
        """An empty trace."""
        return {"spans": []}


#: The process-wide default tracer: tracing off.
NOOP_TRACER = NoopTracer()


def render_trace(trace) -> list[str]:
    """Pretty-print a trace payload as indented span-tree lines.

    Accepts a :class:`Tracer`, a ``{"spans": [...]}`` payload, or a
    bare span list; children sort by start offset.  This is the
    ``repro trace`` CLI's formatter::

        engine.run_batch 1.84 ms  backend=compact specs=1
          execute.rknn 1.71 ms  edges_expanded=42 io=3
    """
    if hasattr(trace, "to_payload"):
        trace = trace.to_payload()
    spans = trace.get("spans", trace) if isinstance(trace, dict) else trace
    children: dict[object, list[dict]] = {}
    known = {span["span_id"] for span in spans}
    for span in spans:
        parent = span.get("parent_id")
        if parent not in known:
            parent = None  # orphaned (e.g. a filtered sub-trace): treat as root
        children.setdefault(parent, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: (span.get("start_ms", 0.0),
                                        span["span_id"]))
    lines: list[str] = []

    def walk(parent, depth: int) -> None:
        for span in children.get(parent, ()):
            attributes = " ".join(
                f"{key}={value}"
                for key, value in sorted(span.get("attributes", {}).items())
            )
            line = (f"{'  ' * depth}{span['name']} "
                    f"{span.get('duration_ms', 0.0):.3f} ms")
            lines.append(f"{line}  {attributes}" if attributes else line)
            walk(span["span_id"], depth + 1)

    walk(None, 0)
    return lines
