"""Observability: tracing, metrics and the slow-query log.

The package is the production-visibility layer over the paper
reproduction -- stdlib-only, and free when switched off:

* :mod:`repro.obs.trace` -- structured spans.  A :class:`Tracer`
  records a tree of named spans (monotonic start/duration, parent id,
  attributes such as backend, cache hits, ``edges_expanded``) across
  the engine, the backends' execution paths and the serve tier; the
  :data:`NOOP_TRACER` default makes every instrumentation point a
  no-op, so an untraced query costs nothing.
* :mod:`repro.obs.metrics` -- a :class:`MetricsRegistry` of counters,
  gauges and log-bucketed latency histograms behind the servers'
  ``/metrics`` endpoints, rendered as JSON and as Prometheus text
  exposition (with :func:`parse_prometheus_text` as the in-repo
  validity check).
* :mod:`repro.obs.slowlog` -- a threshold-gated JSONL
  :class:`SlowQueryLog` capturing every query slower than a budget.

``EXPLAIN SELECT ...`` (:mod:`repro.qlang`) is the query-level surface
of the tracer: it returns the compiled plan plus the executed span
tree of one statement.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus_text,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import NOOP_TRACER, Span, Tracer, render_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_TRACER",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "parse_prometheus_text",
    "render_trace",
]
