"""Bidirectional Dijkstra: two frontiers meeting in the middle.

On networks without exponential expansion, two balls of radius ``d/2``
contain far fewer nodes than one ball of radius ``d``; on BRITE-style
graphs the gain disappears, mirroring the paper's observation that
expansion behaviour dominates every cost trade-off.

The implementation is the textbook one for undirected graphs: expand
the frontier with the smaller tentative minimum, maintain the best
meeting point ``mu``, and stop when ``top(forward) + top(backward) >=
mu``.
"""

from __future__ import annotations

import math

from repro.core.pq import CountingHeap
from repro.paths.dijkstra import Adjacency, PathResult, reconstruct


def bidirectional_search(graph: Adjacency, source: int, target: int) -> PathResult:
    """Shortest path via simultaneous forward and backward expansion."""
    if source == target:
        return PathResult(0.0, (source,), nodes_settled=0)

    heaps = (CountingHeap(), CountingHeap())
    heaps[0].push(0.0, (source, source))
    heaps[1].push(0.0, (target, target))
    # Settled distances and parents per direction (0: forward, 1: backward).
    dist: tuple[dict[int, float], dict[int, float]] = ({}, {})
    parent: tuple[dict[int, int], dict[int, int]] = ({}, {})
    # Tentative (not yet settled) distances, to score meeting candidates.
    seen: tuple[dict[int, float], dict[int, float]] = ({source: 0.0}, {target: 0.0})

    best = math.inf
    meet = -1

    while heaps[0] and heaps[1]:
        # The sum of the two frontier minima lower-bounds every path
        # through any still-unsettled meeting node.
        if heaps[0].peek_distance() + heaps[1].peek_distance() >= best:
            break
        side = 0 if heaps[0].peek_distance() <= heaps[1].peek_distance() else 1
        d, (node, from_node) = heaps[side].pop()
        if node in dist[side]:
            continue
        dist[side][node] = d
        parent[side][node] = from_node
        other = 1 - side
        for nbr, weight in graph.neighbors(node):
            if nbr in dist[side]:
                continue
            nd = d + weight
            if nd < seen[side].get(nbr, math.inf):
                seen[side][nbr] = nd
                heaps[side].push(nd, (nbr, node))
            if nbr in seen[other]:
                total = nd + seen[other][nbr]
                if total < best:
                    best = total
                    meet = nbr
        if node in seen[other] and d + seen[other][node] < best:
            best = d + seen[other][node]
            meet = node

    settled = len(dist[0]) + len(dist[1])
    if not math.isfinite(best):
        return PathResult(math.inf, (), settled)

    forward = _half_path(parent[0], dist[0], source, meet, graph)
    backward = _half_path(parent[1], dist[1], target, meet, graph)
    nodes = forward + tuple(reversed(backward[:-1]))
    return PathResult(best, nodes, settled)


def _half_path(
    parents: dict[int, int],
    settled: dict[int, float],
    origin: int,
    meet: int,
    graph: Adjacency,
) -> tuple[int, ...]:
    """Path from ``origin`` to ``meet`` on one side of the search.

    The meeting node may still be unsettled on this side; in that case
    its best predecessor is recovered by scanning its neighbors among
    the settled nodes (one adjacency read -- cheaper than settling it).
    """
    if meet in parents:
        return reconstruct(parents, origin, meet)
    if meet == origin:
        return (origin,)
    best_prev = -1
    best_dist = math.inf
    for nbr, weight in graph.neighbors(meet):
        if nbr in settled and settled[nbr] + weight < best_dist:
            best_dist = settled[nbr] + weight
            best_prev = nbr
    return reconstruct(parents, origin, best_prev) + (meet,)
