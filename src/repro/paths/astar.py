"""A* search [15] with pluggable admissible heuristics.

The paper notes (Section 2.2) that in spatial networks the Euclidean
distance lower-bounds the network distance and can guide the search
(A*, the Euclidean restriction framework of [12]) -- but that in
general graphs the Euclidean distance "may be undefined ... or may not
provide a bound".  This module makes that observation executable:

* :func:`euclidean_heuristic` is valid exactly when edge weights are
  at least the Euclidean length of the edge (e.g. the SF-style spatial
  generator, where weights *are* Euclidean lengths);
* :class:`~repro.paths.landmarks.LandmarkIndex` provides bounds that
  are always valid because they are derived from the network metric
  itself (triangle inequality over precomputed landmark distances);
* :func:`zero_heuristic` degrades A* to plain Dijkstra, the safe
  default the paper adopts.

With an admissible heuristic, A* settles no more nodes than Dijkstra
and returns the same distances.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.core.pq import CountingHeap
from repro.errors import QueryError
from repro.paths.dijkstra import Adjacency, PathResult, reconstruct

#: A heuristic maps a node id to a lower bound of its distance to the target.
Heuristic = Callable[[int], float]


def zero_heuristic(_node: int) -> float:
    """The trivial (always admissible) bound: A* becomes Dijkstra."""
    return 0.0


def euclidean_heuristic(
    coords: Sequence[tuple[float, float]],
    target: int,
    scale: float = 1.0,
) -> Heuristic:
    """Straight-line lower bound for spatial graphs.

    ``scale`` converts coordinate units into weight units; it must not
    exceed ``min(edge weight / edge length)`` or the bound stops being
    admissible and A* may return suboptimal paths.  For graphs whose
    weights are exactly the Euclidean edge lengths (the paper's SF
    network), the natural choice is ``scale=1``.
    """
    if not 0 <= target < len(coords):
        raise QueryError(f"target {target} has no coordinates")
    tx, ty = coords[target]

    def bound(node: int) -> float:
        x, y = coords[node]
        return scale * math.hypot(x - tx, y - ty)

    return bound


def astar_path(
    graph: Adjacency,
    source: int,
    target: int,
    heuristic: Heuristic | None = None,
) -> PathResult:
    """A* from ``source`` to ``target`` under an admissible ``heuristic``.

    The heuristic is evaluated once per generated node.  With
    ``heuristic=None`` this is exactly point-to-point Dijkstra.
    """
    if heuristic is None:
        heuristic = zero_heuristic
    if source == target:
        return PathResult(0.0, (source,), nodes_settled=0)
    heap = CountingHeap()
    heap.push(heuristic(source), (0.0, source, source))
    parent: dict[int, int] = {}
    while heap:
        _, (dist, node, from_node) = heap.pop()
        if node in parent:
            continue
        parent[node] = from_node
        if node == target:
            return PathResult(dist, reconstruct(parent, source, target), len(parent))
        for nbr, weight in graph.neighbors(node):
            if nbr not in parent:
                ndist = dist + weight
                heap.push(ndist + heuristic(nbr), (ndist, nbr, node))
    return PathResult(math.inf, (), len(parent))
