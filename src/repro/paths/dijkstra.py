"""Dijkstra's algorithm [4] with early termination and paths.

The paper's expansion primitives only need distances in ascending
order; shortest-*path* retrieval additionally needs the predecessor
tree.  :func:`shortest_path` is the classical point-to-point variant
that stops as soon as the target is settled, so its search ball has
radius ``d(source, target)`` -- the same locality property the RkNN
algorithms rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

from repro.core.pq import CountingHeap


class Adjacency(Protocol):
    """Anything exposing weighted adjacency lists over dense int ids."""

    def neighbors(self, node: int) -> object:
        """Iterable of ``(neighbor, weight)`` pairs."""


@dataclass(frozen=True)
class PathResult:
    """A shortest path: total distance, node sequence, work counter.

    ``nodes_settled`` counts heap settlements and is the
    machine-independent work measure used by the path benchmarks.
    """

    distance: float
    nodes: tuple[int, ...]
    nodes_settled: int

    @property
    def found(self) -> bool:
        """Whether the target was reachable."""
        return math.isfinite(self.distance)

    @property
    def hops(self) -> int:
        """Number of edges on the path."""
        return max(0, len(self.nodes) - 1)


def reconstruct(parent: dict[int, int], source: int, target: int) -> tuple[int, ...]:
    """Walk a predecessor map back from ``target`` to ``source``."""
    nodes = [target]
    while nodes[-1] != source:
        nodes.append(parent[nodes[-1]])
    nodes.reverse()
    return tuple(nodes)


def shortest_path(graph: Adjacency, source: int, target: int) -> PathResult:
    """Point-to-point Dijkstra; settles nodes until ``target`` pops.

    Returns an infinite-distance result when the target is unreachable.
    """
    if source == target:
        return PathResult(0.0, (source,), nodes_settled=0)
    heap = CountingHeap()
    heap.push(0.0, (source, source))
    parent: dict[int, int] = {}
    while heap:
        dist, (node, from_node) = heap.pop()
        if node in parent:
            continue
        parent[node] = from_node
        if node == target:
            return PathResult(dist, reconstruct(parent, source, target), len(parent))
        for nbr, weight in graph.neighbors(node):
            if nbr not in parent:
                heap.push(dist + weight, (nbr, node))
    return PathResult(math.inf, (), len(parent))


def shortest_path_tree(
    graph: Adjacency, source: int, max_dist: float = math.inf
) -> tuple[dict[int, float], dict[int, int]]:
    """Full single-source tree: ``(distances, parents)`` up to ``max_dist``.

    The source's parent is itself, so ``parents`` doubles as the
    settled set.
    """
    heap = CountingHeap()
    heap.push(0.0, (source, source))
    dist: dict[int, float] = {}
    parent: dict[int, int] = {}
    while heap:
        d, (node, from_node) = heap.pop()
        if node in dist:
            continue
        if d > max_dist:
            break
        dist[node] = d
        parent[node] = from_node
        for nbr, weight in graph.neighbors(node):
            if nbr not in dist and d + weight <= max_dist:
                heap.push(d + weight, (nbr, node))
    return dist, parent


def single_source_distances(
    graph: Adjacency, source: int, max_dist: float = math.inf
) -> dict[int, float]:
    """Distances from ``source`` to every node within ``max_dist``."""
    distances, _ = shortest_path_tree(graph, source, max_dist)
    return distances
