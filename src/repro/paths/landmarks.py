"""ALT landmarks: network-metric lower bounds for A*.

The paper declines to use Euclidean bounds because they may be absent
(P2P graphs) or invalid (travel-time weights).  The ALT technique
(Goldberg & Harrelson) sidesteps both objections: pick a few landmark
nodes, precompute exact network distances from each landmark to every
node, and bound any remaining distance with the triangle inequality::

    d(u, v) >= |d(L, u) - d(L, v)|   for every landmark L.

The bound is admissible *by construction of the network metric*, so it
works on any graph the paper considers.  Preprocessing costs one full
Dijkstra per landmark and ``O(|landmarks| * |V|)`` storage -- the same
partial-materialization trade-off as the paper's Section 4.1 (K-NN
lists) applied to path search instead of RkNN search.
"""

from __future__ import annotations

import random

from repro.errors import QueryError
from repro.paths.astar import Heuristic
from repro.paths.dijkstra import Adjacency, single_source_distances


class LandmarkIndex:
    """Precomputed landmark distances providing triangle-inequality bounds."""

    def __init__(self, landmarks: list[int], tables: list[dict[int, float]]):
        if len(landmarks) != len(tables):
            raise QueryError("one distance table per landmark is required")
        if not landmarks:
            raise QueryError("at least one landmark is required")
        self.landmarks = list(landmarks)
        self._tables = tables

    @classmethod
    def build(
        cls,
        graph: Adjacency,
        num_nodes: int,
        count: int = 4,
        seed: int = 0,
        strategy: str = "farthest",
    ) -> "LandmarkIndex":
        """Select ``count`` landmarks and precompute their distance tables.

        ``strategy="farthest"`` grows the set greedily (each new
        landmark is the node farthest from the current set), which
        spreads landmarks to the periphery where their bounds are
        tight; ``"random"`` is the cheap baseline.
        """
        if count < 1:
            raise QueryError(f"need at least one landmark, got {count}")
        if count > num_nodes:
            raise QueryError(f"cannot pick {count} landmarks from {num_nodes} nodes")
        rng = random.Random(seed)
        first = rng.randrange(num_nodes)
        landmarks = [first]
        tables = [single_source_distances(graph, first)]
        while len(landmarks) < count:
            if strategy == "random":
                candidates = [n for n in range(num_nodes) if n not in landmarks]
                nxt = rng.choice(candidates)
            elif strategy == "farthest":
                nxt = _farthest_node(tables, num_nodes, landmarks)
            else:
                raise QueryError(f"unknown landmark strategy {strategy!r}")
            landmarks.append(nxt)
            tables.append(single_source_distances(graph, nxt))
        return cls(landmarks, tables)

    def lower_bound(self, u: int, v: int) -> float:
        """``max_L |d(L, u) - d(L, v)|``: an admissible bound on d(u, v).

        Nodes missing from a landmark's table (unreachable from it)
        contribute nothing: no finite bound can be derived through a
        disconnected landmark.
        """
        best = 0.0
        for table in self._tables:
            du = table.get(u)
            dv = table.get(v)
            if du is None or dv is None:
                continue
            gap = abs(du - dv)
            if gap > best:
                best = gap
        return best

    def heuristic(self, target: int) -> Heuristic:
        """A* heuristic callable bounding distances to ``target``."""
        return lambda node: self.lower_bound(node, target)

    @property
    def storage_entries(self) -> int:
        """Materialized (landmark, node) distance pairs."""
        return sum(len(table) for table in self._tables)


def _farthest_node(
    tables: list[dict[int, float]], num_nodes: int, chosen: list[int]
) -> int:
    """The node maximizing the distance to its nearest chosen landmark."""
    chosen_set = set(chosen)
    best_node = -1
    best_dist = -1.0
    for node in range(num_nodes):
        if node in chosen_set:
            continue
        nearest = min(
            (table[node] for table in tables if node in table), default=None
        )
        if nearest is None:
            continue  # disconnected from every landmark: not a useful pick
        if nearest > best_dist:
            best_dist = nearest
            best_node = node
    if best_node < 0:
        raise QueryError("no reachable candidate nodes left for landmarks")
    return best_node
