"""Shortest-path substrate (paper Section 2.2).

The RkNN algorithms of the paper are built on *network expansion*
(:mod:`repro.core.expansion`); this package provides the classical
point-to-point machinery the paper surveys as related work:

* :func:`~repro.paths.dijkstra.shortest_path` -- Dijkstra's algorithm
  [4] with early termination and path reconstruction;
* :func:`~repro.paths.astar.astar_path` -- A* search [15] guided by an
  admissible heuristic (Euclidean coordinates or ALT landmarks);
* :func:`~repro.paths.bidirectional.bidirectional_search` -- meeting
  two Dijkstra frontiers in the middle;
* :class:`~repro.paths.landmarks.LandmarkIndex` -- the ALT
  (A*, Landmarks, Triangle inequality) preprocessing step, the
  graph-only analogue of the paper's remark that Euclidean bounds may
  be unavailable or invalid in general networks.

All functions work both on the in-memory :class:`~repro.graph.graph.Graph`
and on the charged :class:`~repro.core.network.NetworkView`, because
they only require a ``neighbors(node)`` method.
"""

from repro.paths.astar import astar_path, euclidean_heuristic, zero_heuristic
from repro.paths.bidirectional import bidirectional_search
from repro.paths.dijkstra import (
    PathResult,
    shortest_path,
    shortest_path_tree,
    single_source_distances,
)
from repro.paths.landmarks import LandmarkIndex

__all__ = [
    "PathResult",
    "shortest_path",
    "shortest_path_tree",
    "single_source_distances",
    "astar_path",
    "euclidean_heuristic",
    "zero_heuristic",
    "bidirectional_search",
    "LandmarkIndex",
]
