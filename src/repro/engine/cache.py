"""LRU result cache for the query engine.

Keys are ``(snapshot, spec.key())``, where ``snapshot`` is any
hashable snapshot identifier the engine supplies -- the scalar update
generation for the disk/sharded backends, or the two-part
delta-overlay stamp ``(base_generation, delta_epoch)`` for the
compact backend (see :attr:`~repro.engine.engine.QueryEngine.cache_stamp`).
Moving the snapshot (every ``insert_point`` / ``delete_point`` /
``insert_edge`` / ``delete_edge`` does, as does a compaction) makes
every previously cached entry unreachable, so updates invalidate the
cache without the engine having to reason about which results an
update could have changed.  Stale-snapshot entries still occupying
slots are pruned lazily on the next store.

The cached value is the result object exactly as the facade returned
it; :class:`~repro.engine.engine.QueryEngine` re-labels hits with a
zero cost record, because a hit performs no I/O and no expansion.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable

from repro.errors import QueryError


@dataclass
class CacheStats:
    """Observable behavior of a :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total probes: hits plus misses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """A capacity-bounded LRU map from query keys to result objects."""

    def __init__(self, capacity: int = 1024):
        if capacity < 0:
            raise QueryError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[Hashable, tuple[Hashable, Any]]" = OrderedDict()
        self._stored_generation: Hashable | None = None

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, generation: Hashable, key: Hashable) -> Any | None:
        """The cached result for ``key`` at snapshot ``generation``, or
        ``None``.

        An entry stored under an older snapshot never matches: the
        lookup key embeds the snapshot identifier.
        """
        full_key = (generation, key)
        entry = self._entries.get(full_key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(full_key)
        self.stats.hits += 1
        return entry[1]

    def put(self, generation: Hashable, key: Hashable, result: Any) -> None:
        """Install a result, evicting LRU (and stale) entries as needed."""
        if self.capacity == 0:
            return
        if self._stored_generation != generation:
            # every stored entry belongs to one snapshot, so a move
            # invalidates them all at once (no per-put scanning)
            if self._stored_generation is not None and self._entries:
                self.stats.invalidations += len(self._entries)
                self._entries.clear()
            self._stored_generation = generation
        full_key = (generation, key)
        if full_key in self._entries:
            self._entries.move_to_end(full_key)
        self._entries[full_key] = (generation, result)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counted as invalidations)."""
        self.stats.invalidations += len(self._entries)
        self._entries.clear()
        self._stored_generation = None
