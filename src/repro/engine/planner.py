"""Admission planning: method resolution and buffer-friendly ordering.

A batch of heterogeneous queries admitted together can be executed in
any order, and order matters: the database's LRU buffer rewards runs of
queries that touch the same page neighborhoods.  :func:`plan_batch`
therefore

1. resolves ``method="auto"`` specs through a
   :class:`~repro.analytics.planner.CalibratingPlanner` (the paper's
   measured cost model picks the cheapest RkNN method for each ``k``);
2. groups specs by ``(kind, method, k)`` so one algorithm's access
   pattern runs to completion before the next starts, ordering RkNN
   groups by the planner's estimated per-query cost when available
   (cheap, shallow expansions first keeps the buffer warm for the
   deep ones);
3. when the database carries a landmark distance oracle
   (``db.oracle``, see :mod:`repro.oracle`), orders queries within a
   group by a *coarse tier* of their estimated expansion radius --
   the oracle's lower bound from the query node to its nearest data
   point, quantized to powers of two so that nearby radii share a
   tier and the page ordering below still applies within it.
   Shallow expansions run first, which keeps the buffer warm for the
   deep ones (the same rationale as the calibrated group ordering, at
   per-query granularity);
4. within a group (and radius tier), sorts queries by the disk page of
   their location (the :mod:`repro.graph.partition` packing order), so
   queries whose expansions start from the same page run adjacently
   and share buffer frames.  Sharded backends hand out *shard-major*
   page ranks, so the same sort also groups queries by home shard --
   the order the engine's worker pool exploits to execute distinct
   shards concurrently (see :func:`repro.engine.engine.QueryEngine`).

The plan is a permutation of the batch -- results are always reported
in the caller's original order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.engine.spec import AUTO_METHOD, METHOD_KINDS, QuerySpec
from repro.errors import QueryError
from repro.oracle.prune import scan_is_profitable


@dataclass(frozen=True)
class BatchPlan:
    """An executable ordering of one batch.

    ``specs`` are the resolved specs (``auto`` methods replaced), index-
    aligned with the caller's batch; ``order`` is the execution
    permutation over those indices.
    """

    specs: tuple[QuerySpec, ...]
    order: tuple[int, ...]

    def explain(self) -> str:
        """Human-readable account of the chosen execution order."""
        lines = [f"batch plan over {len(self.specs)} queries:"]
        for position, index in enumerate(self.order):
            spec = self.specs[index]
            method = f" {spec.method}" if spec.kind in METHOD_KINDS else ""
            lines.append(
                f"  {position:3d}: [{index}] {spec.kind}{method} "
                f"k={spec.k} query={spec.query}"
            )
        return "\n".join(lines)


def resolve_method(spec: QuerySpec, calibrator=None) -> QuerySpec:
    """Replace ``method="auto"`` with the calibrating planner's choice."""
    if spec.method != AUTO_METHOD:
        return spec
    if spec.kind not in METHOD_KINDS:
        return replace(spec, method="eager")
    if calibrator is None:
        raise QueryError(
            "method 'auto' needs a calibrating planner; "
            "construct the engine with calibrator=CalibratingPlanner(db)"
        )
    return replace(spec, method=calibrator.method_for(spec.k))


def _rank_location(db, query, rank_node) -> int:
    """Rank a query location through a per-node rank function.

    Edge locations rank by the smaller rank of their two endpoints;
    out-of-range locations rank 0 -- planning and routing must not
    fail before the facade's own validation can reject the query with
    a clean error.
    """
    num_nodes = db.graph.num_nodes
    if isinstance(query, int):
        return rank_node(query) if 0 <= query < num_nodes else 0
    u, v, _ = query
    if not (0 <= u < num_nodes and 0 <= v < num_nodes):
        return 0
    return min(rank_node(u), rank_node(v))


def backend_of(db) -> str:
    """The storage backend class of a database: one of
    ``"disk"``, ``"sharded"``, ``"compact"``.

    Facades advertise themselves through a ``backend`` attribute
    (``"compact"`` for the CSR flat-array databases); sharded backends
    are also recognized structurally through ``shard_of``.  Anything
    else is treated as the single disk store.  The engine picks its
    worker strategy from this value: shard-bucketed chunks for
    ``"sharded"``, contiguous chunks over array-sharing sessions for
    ``"compact"``, contiguous chunks over buffer-cloning sessions for
    ``"disk"``.
    """
    tag = getattr(db, "backend", None)
    if tag in ("disk", "sharded", "compact"):
        return tag
    if hasattr(db, "shard_of"):
        return "sharded"
    return "disk"


def kernel_batch_kinds(db) -> tuple[str, ...]:
    """Query kinds ``db`` can answer through a vectorized batch kernel.

    Only the compact backend carries one (``batch_rknn`` over the CSR
    flat arrays); it advertises the kinds it vectorizes through a
    ``batch_kinds`` attribute (``("rknn", "continuous")`` undirected,
    ``("rknn",)`` directed).  Every other backend -- and a compact
    facade without the kernel -- returns ``()``, so the engine's
    dispatch degrades to the scalar per-spec loop.
    """
    if backend_of(db) != "compact":
        return ()
    if getattr(db, "batch_rknn", None) is None:
        return ()
    return tuple(getattr(db, "batch_kinds", ()))


def home_shard(db, query) -> int:
    """Shard owning a query's start location (0 for unsharded backends).

    Sharded databases expose ``shard_of``; a query expanding outward
    from a node first touches that node's shard, so the home shard is
    where the expansion's I/O concentrates.  The engine's worker pool
    routes queries to workers by this value.
    """
    shard_of = getattr(db, "shard_of", None)
    if shard_of is None:
        return 0
    return _rank_location(db, query, shard_of)


def page_rank(db, query) -> int:
    """Disk page holding a query location (free node-index look-up).

    A database whose disk layer exposes no page index ranks everything
    0.  Sharded stores hand out shard-major page ranks, so sorting by
    this value alone already groups queries by shard first and by page
    within a shard second.
    """
    page_of = getattr(db.disk, "page_of", None)
    if page_of is None:
        return 0
    return _rank_location(db, query, page_of)


def oracle_radius_hint(db, query) -> float:
    """Estimated expansion radius of a query location (free look-up).

    With a landmark distance oracle attached (``db.oracle``), the
    lower bound from the query node to its nearest data point
    under-estimates how far *any* NN-style expansion from that node
    must travel before meeting data -- a per-query cost proxy the
    admission planner can sort on without touching a page.  Databases
    without an oracle (or with no points, non-node queries, or point
    sets too dense for the scan to pay off -- see
    :func:`repro.oracle.prune.scan_is_profitable`) rank ``0.0``,
    preserving the legacy ordering exactly.
    """
    oracle = getattr(db, "oracle", None)
    if oracle is None or not isinstance(query, int):
        return 0.0
    if not 0 <= query < oracle.num_nodes:
        return 0.0
    points = getattr(db, "points", None)
    items = getattr(points, "items", None)
    if items is None:
        return 0.0
    if not scan_is_profitable(len(points), oracle.num_landmarks,
                              oracle.num_nodes):
        return 0.0
    best = math.inf
    for _, node in items():
        bound = oracle.lower_bound(query, node)
        if bound < best:
            best = bound
            if best == 0.0:
                break
    return best if math.isfinite(best) else 0.0


def radius_tier(hint: float) -> int:
    """Quantize a radius hint into a coarse power-of-two tier.

    Continuous hints would be unique per query and silently override
    the page-adjacency tiebreak; integer tiers keep "about equally
    deep" queries together so page locality still orders them.
    """
    if hint <= 0.0:
        return 0
    return max(0, int(math.log2(hint)) + 1)


def plan_batch(db, specs, calibrator=None) -> BatchPlan:
    """Resolve and order a batch for buffer-friendly execution."""
    resolved = tuple(resolve_method(spec, calibrator) for spec in specs)

    def group_cost(spec: QuerySpec) -> float:
        if calibrator is not None and spec.kind == "rknn":
            try:
                return calibrator.estimated_seconds(spec.k)
            except QueryError:
                pass
        return 0.0

    hint_cache: dict = {}

    def cached_tier(query) -> int:
        key = query if isinstance(query, int) else None
        if key not in hint_cache:
            hint_cache[key] = radius_tier(oracle_radius_hint(db, query))
        return hint_cache[key]

    def sort_key(index: int):
        spec = resolved[index]
        return (
            group_cost(spec),
            spec.kind,
            spec.method,
            spec.k,
            cached_tier(spec.query),
            page_rank(db, spec.query),
            index,
        )

    order = tuple(sorted(range(len(resolved)), key=sort_key))
    return BatchPlan(resolved, order)
