"""Admission planning: method resolution and buffer-friendly ordering.

A batch of heterogeneous queries admitted together can be executed in
any order, and order matters: the database's LRU buffer rewards runs of
queries that touch the same page neighborhoods.  :func:`plan_batch`
therefore

1. resolves ``method="auto"`` specs through a
   :class:`~repro.analytics.planner.CalibratingPlanner` (the paper's
   measured cost model picks the cheapest RkNN method for each ``k``);
2. groups specs by ``(kind, method, k)`` so one algorithm's access
   pattern runs to completion before the next starts, ordering RkNN
   groups by the planner's estimated per-query cost when available
   (cheap, shallow expansions first keeps the buffer warm for the
   deep ones);
3. within a group, sorts queries by the disk page of their location
   (the :mod:`repro.graph.partition` packing order), so queries whose
   expansions start from the same page run adjacently and share
   buffer frames.  Sharded backends hand out *shard-major* page
   ranks, so the same sort also groups queries by home shard -- the
   order the engine's worker pool exploits to execute distinct shards
   concurrently (see :func:`repro.engine.engine.QueryEngine`).

The plan is a permutation of the batch -- results are always reported
in the caller's original order.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.engine.spec import AUTO_METHOD, QuerySpec
from repro.errors import QueryError


@dataclass(frozen=True)
class BatchPlan:
    """An executable ordering of one batch.

    ``specs`` are the resolved specs (``auto`` methods replaced), index-
    aligned with the caller's batch; ``order`` is the execution
    permutation over those indices.
    """

    specs: tuple[QuerySpec, ...]
    order: tuple[int, ...]

    def explain(self) -> str:
        """Human-readable account of the chosen execution order."""
        lines = [f"batch plan over {len(self.specs)} queries:"]
        for position, index in enumerate(self.order):
            spec = self.specs[index]
            method = f" {spec.method}" if spec.kind in ("rknn", "bichromatic") else ""
            lines.append(
                f"  {position:3d}: [{index}] {spec.kind}{method} "
                f"k={spec.k} query={spec.query}"
            )
        return "\n".join(lines)


def resolve_method(spec: QuerySpec, calibrator=None) -> QuerySpec:
    """Replace ``method="auto"`` with the calibrating planner's choice."""
    if spec.method != AUTO_METHOD:
        return spec
    if spec.kind not in ("rknn", "bichromatic"):
        return replace(spec, method="eager")
    if calibrator is None:
        raise QueryError(
            "method 'auto' needs a calibrating planner; "
            "construct the engine with calibrator=CalibratingPlanner(db)"
        )
    return replace(spec, method=calibrator.method_for(spec.k))


def _rank_location(db, query, rank_node) -> int:
    """Rank a query location through a per-node rank function.

    Edge locations rank by the smaller rank of their two endpoints;
    out-of-range locations rank 0 -- planning and routing must not
    fail before the facade's own validation can reject the query with
    a clean error.
    """
    num_nodes = db.graph.num_nodes
    if isinstance(query, int):
        return rank_node(query) if 0 <= query < num_nodes else 0
    u, v, _ = query
    if not (0 <= u < num_nodes and 0 <= v < num_nodes):
        return 0
    return min(rank_node(u), rank_node(v))


def backend_of(db) -> str:
    """The storage backend class of a database: one of
    ``"disk"``, ``"sharded"``, ``"compact"``.

    Facades advertise themselves through a ``backend`` attribute
    (``"compact"`` for the CSR flat-array databases); sharded backends
    are also recognized structurally through ``shard_of``.  Anything
    else is treated as the single disk store.  The engine picks its
    worker strategy from this value: shard-bucketed chunks for
    ``"sharded"``, contiguous chunks over array-sharing sessions for
    ``"compact"``, contiguous chunks over buffer-cloning sessions for
    ``"disk"``.
    """
    tag = getattr(db, "backend", None)
    if tag in ("disk", "sharded", "compact"):
        return tag
    if hasattr(db, "shard_of"):
        return "sharded"
    return "disk"


def home_shard(db, query) -> int:
    """Shard owning a query's start location (0 for unsharded backends).

    Sharded databases expose ``shard_of``; a query expanding outward
    from a node first touches that node's shard, so the home shard is
    where the expansion's I/O concentrates.  The engine's worker pool
    routes queries to workers by this value.
    """
    shard_of = getattr(db, "shard_of", None)
    if shard_of is None:
        return 0
    return _rank_location(db, query, shard_of)


def page_rank(db, query) -> int:
    """Disk page holding a query location (free node-index look-up).

    A database whose disk layer exposes no page index ranks everything
    0.  Sharded stores hand out shard-major page ranks, so sorting by
    this value alone already groups queries by shard first and by page
    within a shard second.
    """
    page_of = getattr(db.disk, "page_of", None)
    if page_of is None:
        return 0
    return _rank_location(db, query, page_of)


def plan_batch(db, specs, calibrator=None) -> BatchPlan:
    """Resolve and order a batch for buffer-friendly execution."""
    resolved = tuple(resolve_method(spec, calibrator) for spec in specs)

    def group_cost(spec: QuerySpec) -> float:
        if calibrator is not None and spec.kind == "rknn":
            try:
                return calibrator.estimated_seconds(spec.k)
            except QueryError:
                pass
        return 0.0

    def sort_key(index: int):
        spec = resolved[index]
        return (
            group_cost(spec),
            spec.kind,
            spec.method,
            spec.k,
            page_rank(db, spec.query),
            index,
        )

    order = tuple(sorted(range(len(resolved)), key=sort_key))
    return BatchPlan(resolved, order)
