"""Admission planning: method resolution and buffer-friendly ordering.

A batch of heterogeneous queries admitted together can be executed in
any order, and order matters: the database's LRU buffer rewards runs of
queries that touch the same page neighborhoods.  :func:`plan_batch`
therefore

1. resolves ``method="auto"`` specs through a
   :class:`~repro.analytics.planner.CalibratingPlanner` (the paper's
   measured cost model picks the cheapest RkNN method for each ``k``);
2. groups specs by ``(kind, method, k)`` so one algorithm's access
   pattern runs to completion before the next starts, ordering RkNN
   groups by the planner's estimated per-query cost when available
   (cheap, shallow expansions first keeps the buffer warm for the
   deep ones);
3. within a group, sorts queries by the disk page of their location
   (the :mod:`repro.graph.partition` packing order), so queries whose
   expansions start from the same page run adjacently and share
   buffer frames.

The plan is a permutation of the batch -- results are always reported
in the caller's original order.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.engine.spec import AUTO_METHOD, QuerySpec
from repro.errors import QueryError


@dataclass(frozen=True)
class BatchPlan:
    """An executable ordering of one batch.

    ``specs`` are the resolved specs (``auto`` methods replaced), index-
    aligned with the caller's batch; ``order`` is the execution
    permutation over those indices.
    """

    specs: tuple[QuerySpec, ...]
    order: tuple[int, ...]

    def explain(self) -> str:
        """Human-readable account of the chosen execution order."""
        lines = [f"batch plan over {len(self.specs)} queries:"]
        for position, index in enumerate(self.order):
            spec = self.specs[index]
            method = f" {spec.method}" if spec.kind in ("rknn", "bichromatic") else ""
            lines.append(
                f"  {position:3d}: [{index}] {spec.kind}{method} "
                f"k={spec.k} query={spec.query}"
            )
        return "\n".join(lines)


def resolve_method(spec: QuerySpec, calibrator=None) -> QuerySpec:
    """Replace ``method="auto"`` with the calibrating planner's choice."""
    if spec.method != AUTO_METHOD:
        return spec
    if spec.kind not in ("rknn", "bichromatic"):
        return replace(spec, method="eager")
    if calibrator is None:
        raise QueryError(
            "method 'auto' needs a calibrating planner; "
            "construct the engine with calibrator=CalibratingPlanner(db)"
        )
    return replace(spec, method=calibrator.method_for(spec.k))


def page_rank(db, query) -> int:
    """Disk page holding a query location (free node-index look-up).

    Edge locations rank by the smaller page of their two endpoints; a
    database whose disk layer exposes no page index ranks everything 0.
    Out-of-range nodes rank 0 too -- planning must not fail before the
    facade's own validation can reject the query with a clean error.
    """
    page_of = getattr(db.disk, "page_of", None)
    if page_of is None:
        return 0
    num_nodes = db.graph.num_nodes
    if isinstance(query, int):
        return page_of(query) if 0 <= query < num_nodes else 0
    u, v, _ = query
    if not (0 <= u < num_nodes and 0 <= v < num_nodes):
        return 0
    return min(page_of(u), page_of(v))


def plan_batch(db, specs, calibrator=None) -> BatchPlan:
    """Resolve and order a batch for buffer-friendly execution."""
    resolved = tuple(resolve_method(spec, calibrator) for spec in specs)

    def group_cost(spec: QuerySpec) -> float:
        if calibrator is not None and spec.kind == "rknn":
            try:
                return calibrator.estimated_seconds(spec.k)
            except QueryError:
                pass
        return 0.0

    def sort_key(index: int):
        spec = resolved[index]
        return (
            group_cost(spec),
            spec.kind,
            spec.method,
            spec.k,
            page_rank(db, spec.query),
            index,
        )

    order = tuple(sorted(range(len(resolved)), key=sort_key))
    return BatchPlan(resolved, order)
