"""Group-kind expansion: compile aggregate queries onto primitive kinds.

The engine's *group kinds* -- ``topk_influence`` and ``aggregate_nn`` --
and the range-restricted RkNN variants (``within``) are not executed by
the backends directly.  Instead the engine expands each one into a batch
of primitive specs (``rknn``/``bichromatic``/``knn``/``range``), runs
the batch through its ordinary pipeline (admission planner, result
cache, vectorized batch kernel where the backend offers one), and then
*combines* the sub-results into the aggregate answer.

That keeps every backend's query surface unchanged: a compact CSR
snapshot answers ``topk_influence`` with one vectorized
:meth:`~repro.compact.db.CompactDatabase.batch_rknn` sweep, while the
disk backend answers the same spec with per-facility scalar queries --
and both return bitwise-identical rankings.

:func:`expand` is the single entry point: it returns an
:class:`Expansion` (sub-specs plus a combine function) for specs that
need one and ``None`` for primitive specs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.core.result import KnnResult, RnnResult
from repro.engine.spec import GROUP_KINDS, QuerySpec
from repro.errors import QueryError
from repro.storage.stats import CostTracker


def needs_expansion(spec: QuerySpec) -> bool:
    """True when ``spec`` executes via expansion rather than a backend."""
    return spec.kind in GROUP_KINDS or spec.within is not None


@dataclass(frozen=True)
class Expansion:
    """A group spec lowered onto primitive sub-specs.

    Attributes
    ----------
    subspecs:
        Primitive specs the engine should execute (in any order; the
        combine function receives results in ``subspecs`` order).
    combine:
        Function folding the sub-results (one per sub-spec, in order)
        into the group query's answer.
    """

    subspecs: tuple[QuerySpec, ...]
    combine: Callable[[Sequence], object]


def expand(db, spec: QuerySpec) -> Expansion | None:
    """Lower ``spec`` onto primitive sub-specs, or ``None`` if primitive.

    Parameters
    ----------
    db:
        The backend facade the batch will run against; consulted for
        the facility inventory (``points`` / ``reference_points``).
    spec:
        The spec to expand.  Its ``method`` should already be resolved
        (no ``"auto"``) so the sub-specs inherit a concrete method.
    """
    if spec.kind == "topk_influence":
        return _expand_topk_influence(db, spec)
    if spec.kind == "aggregate_nn":
        return _expand_aggregate_nn(db, spec)
    if spec.within is not None:
        return _expand_within(db, spec)
    return None


def _merge_cost(results: Sequence) -> CostTracker:
    """Fold the sub-results' cost records into one tracker."""
    return CostTracker.merged(result.counters for result in results)


def _expand_topk_influence(db, spec: QuerySpec) -> Expansion:
    """Rank facilities by the (weighted) size of their RkNN sets."""
    if spec.bichromatic:
        facilities = getattr(db, "reference_points", None)
        if facilities is None:
            raise QueryError(
                "bichromatic topk_influence needs an attached reference set; "
                "call attach_reference() first"
            )
    else:
        facilities = db.points
    ranked = sorted(facilities.items())
    kind = "bichromatic" if spec.bichromatic else "rknn"
    subspecs = tuple(
        QuerySpec(
            kind,
            query=location,
            k=spec.k,
            method=spec.method,
            exclude=spec.exclude | {pid},
        )
        for pid, location in ranked
    )
    weights = dict(spec.weights or ())
    limit = spec.limit if spec.limit is not None else len(ranked)

    def combine(results: Sequence) -> KnnResult:
        scored = []
        for (pid, _), result in zip(ranked, results):
            influence = sum(weights.get(rnn, 1.0) for rnn in result.points)
            scored.append((pid, float(influence)))
        # most influential first; point id breaks ties deterministically
        scored.sort(key=lambda item: (-item[1], item[0]))
        counters = _merge_cost(results)
        return KnnResult(
            neighbors=tuple(scored[:limit]),
            io=sum(result.io for result in results),
            cpu_seconds=sum(result.cpu_seconds for result in results),
            counters=counters,
        )

    return Expansion(subspecs, combine)


def _expand_aggregate_nn(db, spec: QuerySpec) -> Expansion:
    """Rank data points by aggregate distance to every group member."""
    horizon = max(1, len(db.points))
    subspecs = tuple(
        QuerySpec("knn", query=member, k=horizon, exclude=spec.exclude)
        for member in spec.group
    )
    chooser = sum if spec.agg == "sum" else max

    def combine(results: Sequence) -> KnnResult:
        per_point: dict[int, list[float]] = {}
        for result in results:
            for pid, dist in result.neighbors:
                per_point.setdefault(pid, []).append(dist)
        members = len(results)
        # a point unreachable from any group member has no aggregate
        scored = sorted(
            (chooser(dists), pid)
            for pid, dists in per_point.items()
            if len(dists) == members
        )
        counters = _merge_cost(results)
        return KnnResult(
            neighbors=tuple(
                (pid, float(value)) for value, pid in scored[:spec.k]
            ),
            io=sum(result.io for result in results),
            cpu_seconds=sum(result.cpu_seconds for result in results),
            counters=counters,
        )

    return Expansion(subspecs, combine)


def _expand_within(db, spec: QuerySpec) -> Expansion:
    """Range-restrict an RkNN answer by a companion ``range`` probe."""
    base = replace(spec, within=None)
    # the probe ranges over the *data* points; bichromatic excludes name
    # reference points, which mean nothing to a range query
    probe_exclude = spec.exclude if spec.kind == "rknn" else frozenset()
    probe = QuerySpec(
        "range",
        query=spec.query,
        k=max(1, len(db.points)),
        radius=spec.within,
        exclude=probe_exclude,
    )

    def combine(results: Sequence) -> RnnResult:
        base_result, probe_result = results
        close = {pid for pid, _ in probe_result.neighbors}
        counters = _merge_cost(results)
        return RnnResult(
            points=tuple(pid for pid in base_result.points if pid in close),
            io=sum(result.io for result in results),
            cpu_seconds=sum(result.cpu_seconds for result in results),
            counters=counters,
        )

    return Expansion((base, probe), combine)
