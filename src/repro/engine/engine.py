"""Batched, cached, concurrent query execution over a graph database.

:class:`QueryEngine` is the serving layer above the paper's query
algorithms: where :class:`~repro.api.GraphDatabase` answers one query
at a time, the engine admits *batches* of heterogeneous
:class:`~repro.engine.spec.QuerySpec` values and executes them through
three cooperating mechanisms:

* an LRU **result cache** keyed on ``(kind, args, snapshot)``
  (:mod:`repro.engine.cache`) -- the snapshot component is the
  database's two-part delta-overlay stamp ``(base_generation,
  delta_epoch)`` when it has one (see :attr:`QueryEngine.cache_stamp`),
  or the plain update generation otherwise; repeated queries cost
  nothing, and any mutation moves the snapshot, invalidating every
  stale entry;
* an **admission planner** (:mod:`repro.engine.planner`) that resolves
  ``method="auto"`` through the calibrating cost model and orders each
  batch so queries touching the same disk pages run adjacently;
* a **worker pool** (:mod:`concurrent.futures`) for read-only batches:
  each worker runs on a :meth:`~repro.api.GraphDatabase.read_clone`
  session with a private buffer and tracker, and the per-query counter
  diffs are merged back into the database's global accounting.  The
  pool adapts to the backend (:func:`repro.engine.planner.backend_of`):
  over a **sharded** backend (:mod:`repro.shard`) queries are routed to
  the shard their expansion starts in and whole shard buckets are
  assigned to workers, so independent shards execute concurrently;
  over a **compact** backend (:mod:`repro.compact`) worker sessions
  share the read-only CSR arrays -- a session is just a private
  tracker, so there is no per-worker storage to clone or warm -- and
  the RkNN / continuous specs of each chunk execute through the
  backend's vectorized ``batch_rknn`` numpy kernel
  (:mod:`repro.compact.batch`) in one pass instead of a per-spec
  Python loop (``batch_kernel=False`` restores the scalar loop).

Results come back in the caller's original batch order and are
bitwise-identical to a sequential loop over the facade (the engine
only reorders and deduplicates; it never changes an algorithm).

Usage::

    engine = db.engine()
    batch = [QuerySpec("rknn", query=7, k=2), QuerySpec("knn", query=3, k=1)]
    outcome = engine.run_batch(batch, workers=4)
    outcome.results[0].points, outcome.hits, outcome.counters.io_operations
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.engine.cache import CacheStats, ResultCache
from repro.engine.groups import expand, needs_expansion
from repro.engine.planner import (
    BatchPlan,
    backend_of,
    home_shard,
    kernel_batch_kinds,
    plan_batch,
    resolve_method,
)
from repro.engine.spec import QuerySpec
from repro.errors import QueryError
from repro.obs.trace import NOOP_TRACER
from repro.storage.stats import CostTracker


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one batch: per-query results plus batch-level accounting.

    Attributes
    ----------
    results:
        Result objects in the caller's original batch order (cache hits
        carry a zero cost record).
    order:
        The execution permutation the planner chose over the *flat*
        batch -- the admitted specs with every group kind expanded
        into its primitive sub-specs (equal to the admitted batch when
        no spec needed expansion).
    hits / misses:
        Result-cache outcomes over the flat batch (a repeated spec
        within one batch counts as a hit for every repetition after
        the first).
    executed:
        Distinct queries actually run against the database.
    elapsed_seconds:
        Wall-clock time of the whole batch.
    counters:
        Merged counter diff of every executed query.
    """

    results: tuple
    order: tuple[int, ...]
    hits: int
    misses: int
    executed: int
    elapsed_seconds: float
    counters: CostTracker = field(repr=False, default_factory=CostTracker)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def io(self) -> int:
        """Physical page transfers charged to the batch."""
        return self.counters.io_operations

    @property
    def queries_per_second(self) -> float:
        """Batch throughput (0.0 for an empty or instantaneous batch)."""
        if not self.results or self.elapsed_seconds <= 0.0:
            return 0.0
        return len(self.results) / self.elapsed_seconds


class QueryEngine:
    """Batch executor with result caching over one graph database.

    Parameters
    ----------
    db:
        A :class:`~repro.api.GraphDatabase` or
        :class:`~repro.api_directed.DirectedGraphDatabase`.  The engine
        holds a reference, not a copy: updates through either the
        engine or the database itself bump the database's generation
        and thereby invalidate cached results.
    cache_entries:
        Result-cache capacity (``0`` disables caching).
    calibrator:
        Optional :class:`~repro.analytics.planner.CalibratingPlanner`;
        required to execute ``method="auto"`` specs and used to order
        RkNN groups by estimated cost.
    plan:
        When false, batches execute in the caller's order (no locality
        grouping); the cache still applies.
    shard_parallel:
        Shard-aware worker routing (default on).  When the database is
        sharded (it exposes ``shard_of``) and a batch runs with
        ``workers > 1``, pending queries are bucketed by the shard
        their expansion starts in and whole buckets are assigned to
        workers, so independent shards execute concurrently and no two
        workers contend for the same shard's pages.  Ignored for
        unsharded databases; ``False`` falls back to contiguous
        chunking.
    batch_kernel:
        Vectorized batch dispatch (default on).  Over a compact
        backend, the cache-missing RkNN / continuous specs of a batch
        (or of a worker's chunk) execute through the database's
        ``batch_rknn`` numpy kernel in one pass instead of a per-spec
        loop -- answers are bitwise identical either way, and cached
        results stay keyed on ``(generation, spec)`` exactly like
        scalar ones.  ``False`` forces the scalar loop (the
        ``--no-batch-kernel`` CLI flag and A/B benchmarks use this).
    tracer:
        Default :class:`~repro.obs.trace.Tracer` for every batch
        (``None`` wires in the no-op tracer: zero overhead).  A
        per-call ``tracer=`` on :meth:`run_batch` overrides it, which
        is how ``EXPLAIN`` traces one statement without turning
        tracing on engine-wide.
    slow_log:
        Optional :class:`~repro.obs.slowlog.SlowQueryLog`; every
        executed spec slower than its threshold is appended as one
        JSONL record.  When unset (the default), per-spec timing is
        skipped entirely.
    """

    def __init__(
        self,
        db,
        *,
        cache_entries: int = 1024,
        calibrator=None,
        plan: bool = True,
        shard_parallel: bool = True,
        batch_kernel: bool = True,
        tracer=None,
        slow_log=None,
    ):
        self.db = db
        self.cache = ResultCache(cache_entries)
        self.calibrator = calibrator
        self.plan_batches = plan
        self.shard_parallel = shard_parallel
        self.batch_kernel = batch_kernel
        self.tracer = NOOP_TRACER if tracer is None else tracer
        self.slow_log = slow_log

    @property
    def backend(self) -> str:
        """The database's storage backend: ``"disk"``, ``"sharded"``
        or ``"compact"`` (see :func:`repro.engine.planner.backend_of`)."""
        return backend_of(self.db)

    @property
    def generation(self) -> int:
        """The database's update generation (cache-key component)."""
        return self.db.generation

    @property
    def cache_stamp(self):
        """The snapshot identifier the result cache is keyed on.

        Databases with a delta overlay (the compact backend) expose a
        two-part ``stamp = (base_generation, delta_epoch)``: a delta
        append moves the epoch (invalidating exactly the entries whose
        answers may have changed) and a compaction moves the base.
        Hashing only ``db.generation`` would go stale there --
        compaction resets no generation, and two distinct snapshots
        could collide on one counter.  Backends without a stamp fall
        back to the scalar generation, unchanged.
        """
        stamp = getattr(self.db, "stamp", None)
        return self.db.generation if stamp is None else stamp

    @property
    def cache_stats(self) -> CacheStats:
        """The result cache's observable counters."""
        return self.cache.stats

    # -- single queries -----------------------------------------------------

    def run(self, spec: QuerySpec):
        """Execute one spec through the cache.

        A hit returns the cached answer re-labeled with a zero cost
        record (a hit performs no I/O and no expansion); a miss
        executes on the database and caches the result.  Group kinds
        and range-restricted variants (see :mod:`repro.engine.groups`)
        delegate to :meth:`run_batch` so their sub-queries share the
        batch pipeline (and the vectorized kernel where available).
        """
        spec = resolve_method(spec, self.calibrator)
        if needs_expansion(spec):
            return self.run_batch([spec]).results[0]
        if self.tracer.enabled or self.slow_log is not None:
            # route through the batch pipeline so the span tree and
            # the slow log see single queries too
            return self.run_batch([spec]).results[0]
        generation = self.cache_stamp
        cached = self.cache.get(generation, spec.key())
        if cached is not None:
            return _zero_cost(cached)
        result = self._execute(self.db, spec)
        self.cache.put(generation, spec.key(), result)
        return result

    # -- batches ------------------------------------------------------------

    def run_batch(self, specs: Sequence[QuerySpec], workers: int = 1,
                  *, tracer=None) -> BatchResult:
        """Execute a batch of read-only queries.

        The batch is planned (see :mod:`repro.engine.planner`), probed
        against the result cache, deduplicated (identical specs execute
        once), and the remaining misses run either sequentially on the
        database or -- with ``workers > 1`` -- across read-only worker
        sessions whose counter diffs are merged back into the
        database's tracker.  Results keep the caller's order.

        Worker sessions start with *cold private buffers* (thread
        safety forbids sharing the LRU), so a page that a sequential
        run would fault once can fault once per worker: with a cold
        cache and few distinct queries, ``workers=1`` reports less
        physical I/O and pure-Python batches gain little wall-clock
        from threads.  Workers pay off for large miss-heavy batches
        over disjoint page neighborhoods (which the planner's chunking
        preserves); the result cache, not the pool, is what makes
        repeated traffic cheap.

        Group kinds (``topk_influence``, ``aggregate_nn``) and
        range-restricted RkNN specs are first expanded into primitive
        sub-specs (:mod:`repro.engine.groups`); the sub-specs join the
        flat batch -- so they are planned, deduplicated, cached and
        vectorized exactly like caller-supplied primitives -- and the
        combined answers are cached under the group spec's own key.

        ``tracer`` overrides the engine's default tracer for this one
        batch (``EXPLAIN`` and the serve tier's per-request tracing
        pass a fresh :class:`~repro.obs.trace.Tracer` here).  With the
        default no-op tracer and no slow log, the batch runs the
        untraced fast path unchanged.
        """
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        tracer = self.tracer if tracer is None else tracer
        if not tracer.enabled:
            return self._run_batch(specs, workers, NOOP_TRACER)
        with tracer.span("engine.run_batch", backend=self.backend,
                         specs=len(specs), workers=workers) as root:
            outcome = self._run_batch(specs, workers, tracer)
            root.set(hits=outcome.hits, misses=outcome.misses,
                     executed=outcome.executed)
        return outcome

    def _run_batch(self, specs: Sequence[QuerySpec], workers: int,
                   tracer) -> BatchResult:
        """The batch pipeline body (see :meth:`run_batch`)."""
        start = time.perf_counter()
        admitted = [resolve_method(spec, self.calibrator) for spec in specs]
        generation = self.cache_stamp

        results: list = [None] * len(admitted)
        hits = 0
        flat: list[QuerySpec] = []  # primitive specs, expansion applied
        slots: list[tuple[int, ...]] = []  # admitted index -> flat indices
        expansions: dict[int, object] = {}
        for position, spec in enumerate(admitted):
            if not needs_expansion(spec):
                slots.append((len(flat),))
                flat.append(spec)
                continue
            cached = self.cache.get(generation, spec.key())
            if cached is not None:
                results[position] = _zero_cost(cached)
                hits += 1
                slots.append(())
                continue
            expansion = expand(self.db, spec)
            expansions[position] = expansion
            slots.append(
                tuple(range(len(flat), len(flat) + len(expansion.subspecs)))
            )
            flat.extend(expansion.subspecs)

        with tracer.span("planner.plan_batch", specs=len(flat),
                         planned=self.plan_batches):
            if self.plan_batches:
                plan = plan_batch(self.db, flat, self.calibrator)
            else:
                resolved = tuple(resolve_method(s, self.calibrator) for s in flat)
                plan = BatchPlan(resolved, tuple(range(len(resolved))))

        flat_results: list = [None] * len(flat)
        pending: list[tuple[int, QuerySpec]] = []  # first occurrence per key
        followers: dict[tuple, list[int]] = {}  # key -> later duplicate indices
        probed = hits
        with tracer.span("cache.probe", specs=len(plan.order)) as probe:
            for index in plan.order:
                spec = plan.specs[index]
                key = spec.key()
                if key in followers:
                    followers[key].append(index)
                    continue
                cached = self.cache.get(generation, key)
                if cached is not None:
                    flat_results[index] = _zero_cost(cached)
                    hits += 1
                    continue
                followers[key] = []
                pending.append((index, spec))
            probe.set(hits=hits - probed, misses=len(pending))

        executed = self._execute_pending(
            pending, workers, generation, flat_results, tracer
        )
        batch_counters = CostTracker.merged(
            flat_results[index].counters for index, _ in pending
        )
        for index, spec in pending:
            for dup in followers[spec.key()]:
                flat_results[dup] = _zero_cost(flat_results[index])
                hits += 1

        for position, spec in enumerate(admitted):
            if results[position] is not None:
                continue
            expansion = expansions.get(position)
            if expansion is None:
                results[position] = flat_results[slots[position][0]]
            else:
                combined = expansion.combine(
                    [flat_results[index] for index in slots[position]]
                )
                self.cache.put(generation, spec.key(), combined)
                results[position] = combined

        return BatchResult(
            results=tuple(results),
            order=plan.order,
            hits=hits,
            misses=len(pending),
            executed=executed,
            elapsed_seconds=time.perf_counter() - start,
            counters=batch_counters,
        )

    def _execute_pending(
        self,
        pending: list[tuple[int, QuerySpec]],
        workers: int,
        generation: int,
        results: list,
        tracer,
    ) -> int:
        """Run the cache misses; fill ``results``; return executed count."""
        if not pending:
            return 0
        if workers == 1 or len(pending) == 1:
            for index, result in self._run_items(self.db, pending, tracer):
                results[index] = result
        else:
            # backend="sharded": whole shard buckets per worker.
            # backend="compact"/"disk": contiguous planner-order chunks
            # (compact sessions share the read-only CSR arrays, so the
            # pool costs one tracker per worker, not a storage clone).
            if self.shard_parallel and self.backend == "sharded":
                chunks = _shard_chunks(self.db, pending, workers)
            else:
                chunks = _contiguous_chunks(pending, workers)
            # worker threads have empty span stacks, so the hand-off to
            # the batch's span tree must carry the parent id explicitly
            parent = tracer.current_id()
            with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
                futures = [
                    pool.submit(self._run_chunk, chunk, tracer, parent)
                    for chunk in chunks
                ]
                outcomes = [future.result() for future in futures]
            merge_shards = getattr(self.db, "merge_session_shards", None)
            for chunk_results, session in outcomes:
                if merge_shards is not None:
                    # sharded backends also keep the per-shard I/O
                    # decomposition of the worker's session
                    merge_shards(session)
                for index, result in chunk_results:
                    results[index] = result
                    # fold the worker session's per-query work into the
                    # database's global accounting
                    self.db.tracker.merge(result.counters)
        for index, spec in pending:
            self.cache.put(generation, spec.key(), results[index])
        return len(pending)

    def _run_chunk(self, chunk: list[tuple[int, QuerySpec]], tracer,
                   parent) -> tuple[list, object]:
        """Worker body: execute a chunk on a private read-only session.

        ``parent`` is the submitting thread's current span id; the
        worker's ``engine.worker`` span attaches there so the span tree
        stays connected across the pool hop.  Returns the per-query
        results together with the session, so the caller can fold the
        session's shard counters back into the parent database (done on
        the main thread; trackers are not thread-safe to merge
        concurrently).
        """
        session = self.db.read_clone()
        with tracer.span("engine.worker", parent=parent, chunk=len(chunk)):
            return self._run_items(session, chunk, tracer), session

    def _run_items(self, db, items: list[tuple[int, QuerySpec]],
                   tracer) -> list:
        """Execute ``(index, spec)`` pairs on ``db``, vectorizing when it pays.

        Over a compact backend with :attr:`batch_kernel` enabled, the
        specs the database's ``batch_rknn`` kernel can serve (see
        :func:`repro.engine.planner.kernel_batch_kinds`) run as one
        vectorized pass; everything else -- and lone batchable specs,
        which gain nothing from a one-row table -- takes the scalar
        per-spec path.  Answers are identical either way, and the
        caller's ``cache.put`` keying by ``(generation, spec.key())``
        is untouched by the dispatch.

        With a live tracer or slow log attached, every executed spec
        gets an ``execute.<kind>`` span carrying its own counter diff;
        kernel-batched specs become marker children of one
        ``kernel.batch_rknn`` span (the kernel span itself carries no
        counters, so trace sums never double-count) and report the
        pass's amortized elapsed share.
        """
        kinds = kernel_batch_kinds(db) if self.batch_kernel else ()
        batchable = [item for item in items if item[1].kind in kinds]
        outcomes: list[tuple[int, object]] = []
        log = self.slow_log
        observe = tracer.enabled or log is not None
        if len(batchable) >= 2:
            kernel_specs = [spec for _, spec in batchable]
            if observe:
                began = time.perf_counter()
                with tracer.span("kernel.batch_rknn",
                                 specs=len(kernel_specs)) as kernel:
                    answers = db.batch_rknn(kernel_specs)
                share = (time.perf_counter() - began) / len(kernel_specs)
                for (index, spec), result in zip(batchable, answers):
                    outcomes.append((index, result))
                    if tracer.enabled:
                        tracer.add(f"execute.{spec.kind}",
                                   parent=kernel.span_id, duration=share,
                                   via="kernel",
                                   **_counter_attributes(result))
                    if log is not None:
                        log.record(spec, result, share,
                                   backend=self.backend, via="kernel")
            else:
                answers = db.batch_rknn(kernel_specs)
                outcomes.extend(
                    (index, result)
                    for (index, _), result in zip(batchable, answers)
                )
            chosen = {index for index, _ in batchable}
            rest = [item for item in items if item[0] not in chosen]
        else:
            rest = items
        if observe:
            sharded = getattr(db, "shard_of", None) is not None
            for index, spec in rest:
                began = time.perf_counter()
                with tracer.span(f"execute.{spec.kind}") as span:
                    result = self._execute(db, spec)
                elapsed = time.perf_counter() - began
                if tracer.enabled:
                    span.set(via="scalar", **_counter_attributes(result))
                    if sharded:
                        span.set(shard=home_shard(db, spec.query))
                if log is not None:
                    log.record(spec, result, elapsed,
                               backend=self.backend, via="scalar")
                outcomes.append((index, result))
        else:
            outcomes.extend(
                (index, self._execute(db, spec)) for index, spec in rest
            )
        return outcomes

    def _execute(self, db, spec: QuerySpec):
        if needs_expansion(spec):  # pragma: no cover - expanded upstream
            raise QueryError(
                f"{spec.kind!r} specs execute through the engine's group "
                f"expansion, not a backend facade"
            )
        if spec.kind == "rknn":
            return db.rknn(spec.query, spec.k, method=spec.method, exclude=spec.exclude)
        if spec.kind == "knn":
            return db.knn(spec.query, spec.k, exclude=spec.exclude)
        if spec.kind == "range":
            return db.range_nn(spec.query, spec.k, spec.radius, exclude=spec.exclude)
        if spec.kind == "bichromatic":
            runner = getattr(db, "bichromatic_rknn", None)
            if runner is None:
                raise QueryError(
                    f"{type(db).__name__} does not support bichromatic queries"
                )
            return runner(spec.query, spec.k, method=spec.method, exclude=spec.exclude)
        if spec.kind == "continuous":
            runner = getattr(db, "continuous_rknn", None)
            if runner is None:
                raise QueryError(
                    f"{type(db).__name__} does not support continuous queries"
                )
            return runner(spec.route, spec.k, method=spec.method, exclude=spec.exclude)
        raise QueryError(f"unknown query kind {spec.kind!r}")  # pragma: no cover


def _zero_cost(result):
    """A copy of a cached result carrying an all-zero cost record."""
    return replace(result, io=0, cpu_seconds=0.0, counters=CostTracker())


def _counter_attributes(result) -> dict:
    """One executed result's counter diff as span attributes.

    These are the per-query numbers the slow log records and the trace
    sums: ``Tracer.attribute_total("edges_expanded")`` over a batch's
    ``execute.*`` spans equals the batch's merged CostTracker total.
    """
    counters = result.counters
    return {
        "io": result.io,
        "edges_expanded": counters.edges_expanded,
        "nodes_visited": counters.nodes_visited,
        "oracle_prunes": counters.oracle_prunes,
    }


def _shard_chunks(db, pending: list, workers: int) -> list[list]:
    """Bucket pending queries by home shard, then pack buckets onto workers.

    Each query is routed to the shard its expansion starts in
    (:func:`repro.engine.planner.home_shard`); a bucket never splits
    across workers, so each shard's pages are touched by one worker
    session only and independent shards run concurrently.  Buckets are
    packed largest-first onto the least-loaded worker to balance the
    chunks; within a bucket the planner's order is preserved.
    """
    buckets: dict[int, list] = {}
    for item in pending:
        buckets.setdefault(home_shard(db, item[1].query), []).append(item)
    count = min(workers, len(buckets))
    chunks: list[list] = [[] for _ in range(count)]
    for bucket in sorted(buckets.values(), key=len, reverse=True):
        min(chunks, key=len).extend(bucket)
    return [chunk for chunk in chunks if chunk]


def _contiguous_chunks(items: list, workers: int) -> list[list]:
    """Split a list into <= ``workers`` contiguous, near-equal chunks.

    Contiguity preserves the planner's locality ordering within each
    worker's run.
    """
    count = min(workers, len(items))
    size, remainder = divmod(len(items), count)
    chunks = []
    start = 0
    for i in range(count):
        end = start + size + (1 if i < remainder else 0)
        chunks.append(items[start:end])
        start = end
    return chunks
