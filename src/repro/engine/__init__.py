"""Query-execution layer: batched, cached, concurrent query serving.

The algorithms of :mod:`repro.core` answer one query at a time; this
package turns them into something that can absorb traffic.  See
:mod:`repro.engine.engine` for the architecture overview.
"""

from repro.engine.cache import CacheStats, ResultCache
from repro.engine.engine import BatchResult, QueryEngine
from repro.engine.planner import BatchPlan, plan_batch
from repro.engine.spec import KINDS, QuerySpec, load_specs

__all__ = [
    "BatchPlan",
    "BatchResult",
    "CacheStats",
    "KINDS",
    "QueryEngine",
    "QuerySpec",
    "ResultCache",
    "load_specs",
    "plan_batch",
]
