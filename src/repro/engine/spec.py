"""Declarative query descriptions consumed by the batch engine.

A :class:`QuerySpec` captures one query -- its kind, location and
parameters -- as an immutable, hashable value.  That buys three things:

* batches are plain sequences of specs, serializable to JSON lines for
  the ``repro batch`` CLI subcommand and replayable workload files;
* the result cache can key on the spec directly (``spec.key()``);
* the admission planner can reorder and group specs freely, since a
  spec carries everything needed to execute it later.

The supported kinds mirror the read-only query surface of
:class:`~repro.api.GraphDatabase` (and, minus ``bichromatic``, of
:class:`~repro.api_directed.DirectedGraphDatabase`):

``knn``
    forward k-nearest-neighbor query (``method`` is ignored);
``rknn``
    monochromatic reverse k-NN with any of the paper's methods;
``bichromatic``
    bichromatic reverse k-NN against the attached reference set;
``range``
    ``range-NN(n, k, e)`` with a strict ``radius``;
``continuous``
    continuous RkNN along a ``route`` of adjacent nodes (the union of
    the route nodes' reverse neighbor sets, Section 5.1).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import QueryError

#: Query kinds the engine knows how to dispatch.
KINDS = ("knn", "rknn", "bichromatic", "range", "continuous")

#: Kinds whose execution method matters (and is part of the cache key).
METHOD_KINDS = ("rknn", "bichromatic", "continuous")

#: ``method`` value asking the engine's planner to pick the cheapest method.
AUTO_METHOD = "auto"

Location = int | tuple[int, int, float]


@dataclass(frozen=True)
class QuerySpec:
    """One read-only query, as data.

    Attributes
    ----------
    kind:
        One of :data:`KINDS`.
    query:
        A node id, or a ``(u, v, pos)`` edge location for unrestricted
        networks.
    k:
        Neighborhood size (>= 1).
    method:
        Processing method for (bichromatic) RkNN kinds; ``"auto"``
        defers the choice to the engine's calibrating planner.  Ignored
        by ``knn`` and ``range``.
    radius:
        Range bound, required by (and only by) ``range``.
    route:
        Walk of adjacent node ids, required by (and only by)
        ``continuous``.  ``query`` is derived from the route's first
        node, so locality planning and shard routing treat the route
        like a query starting there.
    exclude:
        Point ids hidden for the query's duration.
    """

    kind: str
    query: Location = None
    k: int = 1
    method: str = "eager"
    radius: float | None = None
    exclude: frozenset[int] = field(default_factory=frozenset)
    route: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise QueryError(f"unknown query kind {self.kind!r}; choose one of {KINDS}")
        if not isinstance(self.k, int) or self.k < 1:
            raise QueryError(f"k must be an integer >= 1, got {self.k!r}")
        if self.kind == "continuous":
            if not self.route:
                raise QueryError("continuous queries need a route")
            try:
                normalized_route = tuple(int(node) for node in self.route)
            except (TypeError, ValueError) as exc:
                raise QueryError(f"bad route {self.route!r}: {exc}") from exc
            object.__setattr__(self, "route", normalized_route)
            # the route's first node stands in as the query location for
            # cache identity, locality planning and shard routing
            object.__setattr__(self, "query", normalized_route[0])
        elif self.route is not None:
            raise QueryError(f"{self.kind} queries take no route")
        if self.query is None:
            raise QueryError(f"{self.kind} queries need a query location")
        if not isinstance(self.query, int):
            if not isinstance(self.query, (tuple, list)) or len(self.query) != 3:
                raise QueryError(f"edge locations are (u, v, pos), got {self.query!r}")
            loc = tuple(self.query)
            try:
                normalized = (int(loc[0]), int(loc[1]), float(loc[2]))
            except (TypeError, ValueError) as exc:
                raise QueryError(f"bad edge location {loc!r}: {exc}") from exc
            object.__setattr__(self, "query", normalized)
            if not math.isfinite(self.query[2]):
                raise QueryError(f"non-finite edge offset {loc[2]!r}")
        if self.kind == "range":
            if self.radius is None:
                raise QueryError("range queries need a radius")
            if (not isinstance(self.radius, (int, float))
                    or not math.isfinite(self.radius) or self.radius < 0):
                raise QueryError(
                    f"radius must be finite and >= 0, got {self.radius!r}"
                )
        elif self.radius is not None:
            raise QueryError(f"{self.kind} queries take no radius")
        object.__setattr__(self, "exclude", frozenset(self.exclude))

    def key(self) -> tuple:
        """Canonical hashable identity of the query (cache key material).

        ``method`` is deliberately part of the key: methods are answer-
        equivalent but not cost-equivalent, and the cache stores results
        together with the cost record of the run that produced them.
        """
        method = self.method if self.kind in METHOD_KINDS else ""
        return (
            self.kind,
            self.query,
            self.k,
            method,
            self.radius,
            self.route,
            tuple(sorted(self.exclude)),
        )

    # -- JSON round-trip (the `repro batch` wire format) --------------------

    def to_json(self) -> str:
        """One JSON object (one JSONL line) describing this spec."""
        payload: dict = {"kind": self.kind, "query": self.query, "k": self.k}
        if self.kind in METHOD_KINDS:
            payload["method"] = self.method
        if self.radius is not None:
            payload["radius"] = self.radius
        if self.route is not None:
            payload = {"kind": self.kind, "k": self.k,
                       "method": self.method, "route": list(self.route)}
        if self.exclude:
            payload["exclude"] = sorted(self.exclude)
        return json.dumps(payload)

    @classmethod
    def from_mapping(cls, payload: Mapping) -> "QuerySpec":
        """Build a spec from a parsed JSON object."""
        if "kind" not in payload:
            raise QueryError("query specs need at least 'kind' and 'query'")
        if "query" not in payload and "route" not in payload:
            raise QueryError("query specs need at least 'kind' and 'query'")
        known = {"kind", "query", "k", "method", "radius", "exclude", "route"}
        unknown = set(payload) - known
        if unknown:
            raise QueryError(f"unknown query spec fields {sorted(unknown)}")
        query = payload.get("query")
        if isinstance(query, list):
            query = tuple(query)
        route = payload.get("route")
        if route is not None and not isinstance(route, (list, tuple)):
            raise QueryError(f"routes are arrays of node ids, got {route!r}")
        try:
            return cls(
                kind=payload["kind"],
                query=query,
                k=int(payload.get("k", 1)),
                method=payload.get("method", "eager"),
                radius=payload.get("radius"),
                exclude=frozenset(int(pid) for pid in payload.get("exclude", ())),
                route=tuple(route) if route is not None else None,
            )
        except (TypeError, ValueError) as exc:
            # bad field types (k="a", exclude=["x"], radius=[]) must
            # surface as QueryError so CLI callers report a clean line
            raise QueryError(f"bad query spec field: {exc}") from exc

    @classmethod
    def from_json(cls, line: str) -> "QuerySpec":
        """Parse one JSONL line into a spec."""
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise QueryError(f"bad query spec JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise QueryError(f"query specs are JSON objects, got {type(payload).__name__}")
        return cls.from_mapping(payload)


def load_specs(lines: Iterable[str]) -> list[QuerySpec]:
    """Parse a JSONL stream (blank lines and ``#`` comments skipped)."""
    specs = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            specs.append(QuerySpec.from_json(line))
        except QueryError as exc:
            raise QueryError(f"line {lineno}: {exc}") from exc
    return specs
