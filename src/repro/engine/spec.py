"""Declarative query descriptions consumed by the batch engine.

A :class:`QuerySpec` captures one query -- its kind, location and
parameters -- as an immutable, hashable value.  That buys three things:

* batches are plain sequences of specs, serializable to JSON lines for
  the ``repro batch`` CLI subcommand and replayable workload files;
* the result cache can key on the spec directly (``spec.key()``);
* the admission planner can reorder and group specs freely, since a
  spec carries everything needed to execute it later.

The supported kinds mirror the read-only query surface of
:class:`~repro.api.GraphDatabase` (and, minus ``bichromatic``, of
:class:`~repro.api_directed.DirectedGraphDatabase`):

``knn``
    forward k-nearest-neighbor query (``method`` is ignored);
``rknn``
    monochromatic reverse k-NN with any of the paper's methods; an
    optional ``within`` bound restricts answers to points strictly
    within that network distance of the query;
``bichromatic``
    bichromatic reverse k-NN against the attached reference set (also
    accepts ``within``);
``range``
    ``range-NN(n, k, e)`` with a strict ``radius``;
``continuous``
    continuous RkNN along a ``route`` of adjacent nodes (the union of
    the route nodes' reverse neighbor sets, Section 5.1);
``topk_influence``
    rank every facility (data point) by the size of its reverse k-NN
    set -- optionally weighted per point class (``weights``) and scored
    against the attached reference set (``bichromatic=True``) -- and
    keep the ``limit`` most influential;
``aggregate_nn``
    aggregate nearest neighbors of a query ``group``: rank data points
    by the ``sum`` or ``max`` of their network distances to every group
    member and keep the ``k`` best.

The last two are *group kinds*: the engine expands them into batches of
primitive specs (see :mod:`repro.engine.groups`), so the vectorized
batch kernel and the result cache serve them unchanged.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import QueryError

#: Query kinds the engine knows how to dispatch.
KINDS = (
    "knn",
    "rknn",
    "bichromatic",
    "range",
    "continuous",
    "topk_influence",
    "aggregate_nn",
)

#: Kinds whose execution method matters (and is part of the cache key).
METHOD_KINDS = ("rknn", "bichromatic", "continuous", "topk_influence")

#: Kinds the engine answers by expanding into a batch of primitive specs.
GROUP_KINDS = ("topk_influence", "aggregate_nn")

#: ``method`` value asking the engine's planner to pick the cheapest method.
AUTO_METHOD = "auto"

#: Aggregation functions ``aggregate_nn`` understands.
AGG_FUNCS = ("sum", "max")

#: Payload fields every kind must provide (beyond ``kind`` itself).
REQUIRED_FIELDS: dict[str, tuple[str, ...]] = {
    "knn": ("query",),
    "rknn": ("query",),
    "bichromatic": ("query",),
    "range": ("query", "radius"),
    "continuous": ("route",),
    "topk_influence": (),
    "aggregate_nn": ("group",),
}

#: Payload fields each kind may additionally provide.  ``method`` is
#: accepted everywhere for wire compatibility but ignored outside
#: :data:`METHOD_KINDS`.
OPTIONAL_FIELDS: dict[str, tuple[str, ...]] = {
    "knn": ("k", "method", "exclude"),
    "rknn": ("k", "method", "exclude", "within"),
    "bichromatic": ("k", "method", "exclude", "within"),
    "range": ("k", "method", "exclude"),
    "continuous": ("k", "method", "exclude"),
    "topk_influence": ("k", "method", "exclude", "limit", "weights",
                       "bichromatic"),
    "aggregate_nn": ("k", "method", "exclude", "agg"),
}

#: All payload fields each kind accepts (required + optional).
ALLOWED_FIELDS: dict[str, tuple[str, ...]] = {
    kind: tuple(sorted(REQUIRED_FIELDS[kind] + OPTIONAL_FIELDS[kind]))
    for kind in KINDS
}

# spec attributes that only apply to some kinds, checked uniformly
_FIELD_KINDS = {
    "radius": ("range",),
    "route": ("continuous",),
    "within": ("rknn", "bichromatic"),
    "group": ("aggregate_nn",),
    "agg": ("aggregate_nn",),
    "limit": ("topk_influence",),
    "weights": ("topk_influence",),
    "bichromatic": ("topk_influence",),
}

Location = int | tuple[int, int, float]


def _bad(message: str) -> QueryError:
    """Wrap ``message`` in the uniform ``invalid query spec:`` format."""
    return QueryError(f"invalid query spec: {message}")


def _inapplicable(field_name: str, kind: str) -> QueryError:
    return _bad(
        f"field {field_name!r} does not apply to kind {kind!r}; "
        f"allowed fields for {kind!r}: {ALLOWED_FIELDS[kind]}"
    )


@dataclass(frozen=True)
class QuerySpec:
    """One read-only query, as data.

    Attributes
    ----------
    kind:
        One of :data:`KINDS`.
    query:
        A node id, or a ``(u, v, pos)`` edge location for unrestricted
        networks.  Derived (not supplied) for ``continuous`` and the
        group kinds; ``None`` for ``topk_influence``.
    k:
        Neighborhood size (>= 1).  For ``aggregate_nn`` this is the
        number of aggregate neighbors returned.
    method:
        Processing method for (bichromatic) RkNN kinds; ``"auto"``
        defers the choice to the engine's calibrating planner.  Ignored
        by ``knn`` and ``range``.
    radius:
        Range bound, required by (and only by) ``range``.
    exclude:
        Point ids hidden for the query's duration.
    route:
        Walk of adjacent node ids, required by (and only by)
        ``continuous``.  ``query`` is derived from the route's first
        node, so locality planning and shard routing treat the route
        like a query starting there.
    group:
        Node ids of the query group, required by (and only by)
        ``aggregate_nn``; duplicates count.  ``query`` is derived from
        the group's first member.
    agg:
        Aggregation function for ``aggregate_nn`` (:data:`AGG_FUNCS`,
        default ``"sum"``).
    limit:
        For ``topk_influence``: keep only the ``limit`` most
        influential facilities (default: all of them).
    weights:
        For ``topk_influence``: per-point class weights as
        ``(point id, weight)`` pairs (or a mapping); unlisted points
        weigh ``1.0``.  A facility's influence becomes the weighted
        size of its reverse neighbor set.
    bichromatic:
        For ``topk_influence``: rank the attached *reference* points by
        the weighted size of their bichromatic reverse k-NN sets
        instead of ranking the data points monochromatically.
    within:
        For ``rknn``/``bichromatic``: keep only reverse neighbors
        strictly within this network distance of the query (the
        range-restricted variants).
    """

    kind: str
    query: Location = None
    k: int = 1
    method: str = "eager"
    radius: float | None = None
    exclude: frozenset[int] = field(default_factory=frozenset)
    route: tuple[int, ...] | None = None
    group: tuple[int, ...] | None = None
    agg: str | None = None
    limit: int | None = None
    weights: tuple[tuple[int, float], ...] | None = None
    bichromatic: bool = False
    within: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise _bad(
                f"unknown query kind {self.kind!r}; allowed kinds: {KINDS}"
            )
        if not isinstance(self.k, int) or self.k < 1:
            raise _bad(f"k must be an integer >= 1, got {self.k!r}")
        for field_name, kinds in _FIELD_KINDS.items():
            value = getattr(self, field_name)
            if value is None or value is False:
                continue
            if self.kind not in kinds:
                raise _inapplicable(field_name, self.kind)
        if self.kind == "continuous":
            if not self.route:
                raise _bad(
                    "continuous queries need a non-empty 'route' of node ids"
                )
            try:
                normalized_route = tuple(int(node) for node in self.route)
            except (TypeError, ValueError) as exc:
                raise _bad(f"bad route {self.route!r}: {exc}") from exc
            object.__setattr__(self, "route", normalized_route)
            # the route's first node stands in as the query location for
            # cache identity, locality planning and shard routing
            object.__setattr__(self, "query", normalized_route[0])
        if self.kind == "aggregate_nn":
            if not self.group:
                raise _bad(
                    "aggregate_nn queries need a non-empty 'group' of node ids"
                )
            try:
                normalized_group = tuple(int(node) for node in self.group)
            except (TypeError, ValueError) as exc:
                raise _bad(f"bad group {self.group!r}: {exc}") from exc
            object.__setattr__(self, "group", normalized_group)
            # like routes, the group's first member anchors locality
            object.__setattr__(self, "query", normalized_group[0])
            agg = self.agg if self.agg is not None else "sum"
            if agg not in AGG_FUNCS:
                raise _bad(
                    f"agg={self.agg!r} is not supported; "
                    f"allowed aggregations: {AGG_FUNCS}"
                )
            object.__setattr__(self, "agg", agg)
        if self.kind == "topk_influence":
            if self.query is not None:
                raise _inapplicable("query", self.kind)
            if self.limit is not None and (
                    not isinstance(self.limit, int) or self.limit < 1):
                raise _bad(f"limit must be an integer >= 1, got {self.limit!r}")
            object.__setattr__(self, "bichromatic", bool(self.bichromatic))
            if self.weights is not None:
                object.__setattr__(
                    self, "weights", _normalize_weights(self.weights)
                )
        elif self.query is None:
            raise _bad(f"{self.kind} queries need a query location")
        if self.query is not None and not isinstance(self.query, int):
            if not isinstance(self.query, (tuple, list)) or len(self.query) != 3:
                raise _bad(f"edge locations are (u, v, pos), got {self.query!r}")
            loc = tuple(self.query)
            try:
                normalized = (int(loc[0]), int(loc[1]), float(loc[2]))
            except (TypeError, ValueError) as exc:
                raise _bad(f"bad edge location {loc!r}: {exc}") from exc
            object.__setattr__(self, "query", normalized)
            if not math.isfinite(self.query[2]):
                raise _bad(f"non-finite edge offset {loc[2]!r}")
        if self.kind == "range":
            if self.radius is None:
                raise _bad(
                    "kind 'range' is missing required field 'radius'; "
                    f"required fields: {REQUIRED_FIELDS['range']}"
                )
            if (not isinstance(self.radius, (int, float))
                    or not math.isfinite(self.radius) or self.radius < 0):
                raise _bad(
                    f"radius must be finite and >= 0, got {self.radius!r}"
                )
        if self.within is not None:
            if (not isinstance(self.within, (int, float))
                    or not math.isfinite(self.within) or self.within < 0):
                raise _bad(
                    f"within must be finite and >= 0, got {self.within!r}"
                )
            object.__setattr__(self, "within", float(self.within))
        object.__setattr__(self, "exclude", frozenset(self.exclude))

    def key(self) -> tuple:
        """Canonical hashable identity of the query (cache key material).

        ``method`` is deliberately part of the key: methods are answer-
        equivalent but not cost-equivalent, and the cache stores results
        together with the cost record of the run that produced them.
        """
        method = self.method if self.kind in METHOD_KINDS else ""
        return (
            self.kind,
            self.query,
            self.k,
            method,
            self.radius,
            self.route,
            tuple(sorted(self.exclude)),
            self.group,
            self.agg,
            self.limit,
            self.weights,
            self.bichromatic,
            self.within,
        )

    # -- JSON round-trip (the `repro batch` wire format) --------------------

    def to_json(self) -> str:
        """One JSON object (one JSONL line) describing this spec."""
        payload: dict = {"kind": self.kind}
        if self.route is not None:
            payload["route"] = list(self.route)
        elif self.group is not None:
            payload["group"] = list(self.group)
        elif self.query is not None:
            payload["query"] = self.query
        payload["k"] = self.k
        if self.kind in METHOD_KINDS:
            payload["method"] = self.method
        if self.radius is not None:
            payload["radius"] = self.radius
        if self.within is not None:
            payload["within"] = self.within
        if self.kind == "aggregate_nn":
            payload["agg"] = self.agg
        if self.limit is not None:
            payload["limit"] = self.limit
        if self.weights:
            payload["weights"] = {str(pid): w for pid, w in self.weights}
        if self.bichromatic:
            payload["bichromatic"] = True
        if self.exclude:
            payload["exclude"] = sorted(self.exclude)
        return json.dumps(payload)

    @classmethod
    def from_payload(cls, payload: Mapping) -> "QuerySpec":
        """Build a spec from a parsed JSON object.

        Every rejection reports the offending key/value together with
        the allowed set, routed through the per-kind field tables
        (:data:`REQUIRED_FIELDS` / :data:`ALLOWED_FIELDS`), so group
        kinds without a ``query`` validate cleanly.
        """
        if "kind" not in payload:
            raise _bad(
                f"missing required field 'kind'; allowed kinds: {KINDS}"
            )
        kind = payload["kind"]
        if kind not in KINDS:
            raise _bad(f"unknown query kind {kind!r}; allowed kinds: {KINDS}")
        allowed = ALLOWED_FIELDS[kind]
        unknown = sorted(set(payload) - set(allowed) - {"kind"})
        if unknown:
            raise _bad(
                f"unknown field(s) {unknown} for kind {kind!r}; "
                f"allowed fields for {kind!r}: {allowed}"
            )
        for name in REQUIRED_FIELDS[kind]:
            if name not in payload:
                raise _bad(
                    f"kind {kind!r} is missing required field {name!r}; "
                    f"required fields for {kind!r}: {REQUIRED_FIELDS[kind]}"
                )
        query = payload.get("query")
        if isinstance(query, list):
            query = tuple(query)
        route = payload.get("route")
        if route is not None and not isinstance(route, (list, tuple)):
            raise _bad(
                f"route={route!r} is invalid; routes are arrays of node ids"
            )
        group = payload.get("group")
        if group is not None and not isinstance(group, (list, tuple)):
            raise _bad(
                f"group={group!r} is invalid; groups are arrays of node ids"
            )
        try:
            return cls(
                kind=kind,
                query=query,
                k=int(payload.get("k", 1)),
                method=payload.get("method", "eager"),
                radius=payload.get("radius"),
                exclude=frozenset(int(pid) for pid in payload.get("exclude", ())),
                route=tuple(route) if route is not None else None,
                group=tuple(group) if group is not None else None,
                agg=payload.get("agg"),
                limit=payload.get("limit"),
                weights=payload.get("weights"),
                bichromatic=bool(payload.get("bichromatic", False)),
                within=payload.get("within"),
            )
        except (TypeError, ValueError) as exc:
            # bad field types (k="a", exclude=["x"], radius=[]) must
            # surface as QueryError so CLI callers report a clean line
            raise _bad(f"bad field value: {exc}") from exc

    @classmethod
    def from_mapping(cls, payload: Mapping) -> "QuerySpec":
        """Alias of :meth:`from_payload` (the original name)."""
        return cls.from_payload(payload)

    @classmethod
    def from_json(cls, line: str) -> "QuerySpec":
        """Parse one JSONL line into a spec."""
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise QueryError(f"bad query spec JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise QueryError(f"query specs are JSON objects, got {type(payload).__name__}")
        return cls.from_payload(payload)


def _normalize_weights(weights) -> tuple[tuple[int, float], ...]:
    """Normalize a weights mapping / pair-iterable to sorted pairs."""
    if isinstance(weights, Mapping):
        items = weights.items()
    else:
        items = list(weights)
    try:
        pairs = tuple(sorted((int(pid), float(w)) for pid, w in items))
    except (TypeError, ValueError) as exc:
        raise _bad(
            f"weights={weights!r} is invalid; weights map point ids to "
            f"finite numbers"
        ) from exc
    for _, w in pairs:
        if not math.isfinite(w):
            raise _bad(
                f"weights={weights!r} is invalid; weights map point ids to "
                f"finite numbers"
            )
    seen: set[int] = set()
    for pid, _ in pairs:
        if pid in seen:
            raise _bad(f"weights list point id {pid} more than once")
        seen.add(pid)
    return pairs


def load_specs(lines: Iterable[str]) -> list[QuerySpec]:
    """Parse a JSONL stream (blank lines and ``#`` comments skipped)."""
    specs = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            specs.append(QuerySpec.from_json(line))
        except QueryError as exc:
            raise QueryError(f"line {lineno}: {exc}") from exc
    return specs
