"""On-disk snapshots of a compact database.

A snapshot is a directory holding the immutable pieces a
:class:`~repro.compact.db.CompactDatabase` is built from, each in the
flattest format that will carry it:

* ``graph.csr`` -- the CSR kernel in the :mod:`repro.compact.csr`
  on-disk format (mappable);
* ``order.i64`` -- the packing order behind the planner's locality
  rank, raw little-endian int64;
* ``coords.f64`` -- optional node coordinates, raw little-endian
  float64 ``x0 y0 x1 y1 ...``;
* ``meta.json`` -- format version plus the point set.

:func:`load_snapshot` rebuilds the database in **constant time** when
``mmap=True``: the CSR arrays become read-only ``numpy.memmap`` views,
so N worker processes loading the same snapshot share one set of
physical pages -- ``read_clone`` made zero-copy *across* processes,
which is what the serve fleet (:mod:`repro.serve.fleet`) boots its
workers from.  The graph protocol over a loaded snapshot is served by
:class:`CSRGraphAdapter`; only the rare edge-mutation and compaction
paths ever pay to reconstruct an edge list from it.
"""

from __future__ import annotations

import json
import os
import sys
from array import array
from pathlib import Path

from repro.compact.csr import CSRGraph, _merge_edge_order
from repro.errors import GraphError

_FORMAT = 1
_GRAPH_FILE = "graph.csr"
_ORDER_FILE = "order.i64"
_COORDS_FILE = "coords.f64"
_META_FILE = "meta.json"


def _write_i64(path: Path, values) -> None:
    """Dump a sequence of ints as raw little-endian int64."""
    arr = array("q", values)
    if sys.byteorder == "big":  # pragma: no cover - little-endian CI
        arr.byteswap()
    path.write_bytes(arr.tobytes())


def _read_flat(path: Path, typecode: str) -> array:
    """Read one raw little-endian flat file back into a stdlib array."""
    arr = array(typecode)
    arr.frombytes(path.read_bytes())
    if sys.byteorder == "big":  # pragma: no cover - little-endian CI
        arr.byteswap()
    return arr


class CSRGraphAdapter:
    """Graph-protocol facade over a loaded CSR kernel.

    A snapshot stores no :class:`~repro.graph.graph.Graph`; rebuilding
    one would cost O(E) and defeat the constant-time mmap load.  This
    adapter serves the protocol straight off the kernel instead:
    counts, adjacency and degrees are direct array reads, and
    ``edges()`` -- needed only by the rare edge-mutation and
    compaction paths -- reconstructs a consistent global edge order
    lazily, once.
    """

    def __init__(self, csr: CSRGraph, coords=None):
        self._csr = csr
        #: Optional node coordinates (``None`` when the snapshot has none).
        self.coords = coords
        self._edges: list[tuple[int, int, float]] | None = None

    @property
    def num_nodes(self) -> int:
        """Node count of the underlying kernel."""
        return self._csr.num_nodes

    @property
    def num_edges(self) -> int:
        """Edge count of the underlying kernel."""
        return self._csr.num_edges

    def nodes(self) -> range:
        """Dense node id range."""
        return range(self._csr.num_nodes)

    def neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        """``(neighbor, weight)`` pairs of ``node`` in kernel order."""
        return self._csr.neighbors(node)

    def degree(self, node: int) -> int:
        """Neighbor count of ``node``."""
        return self._csr.degree(node)

    def average_degree(self) -> float:
        """Average node degree (2|E| / |V|)."""
        return 2.0 * self.num_edges / self.num_nodes

    def edges(self):
        """Iterate the edges in an order consistent with every
        adjacency list (reconstructed lazily on first call)."""
        if self._edges is None:
            lists = [
                list(self._csr.neighbors(v)) for v in range(self.num_nodes)
            ]
            self._edges = _merge_edge_order(lists)
        return iter(self._edges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraphAdapter({self._csr!r})"


def save_snapshot(db, path) -> Path:
    """Write ``db``'s immutable base to the snapshot directory ``path``.

    Requires a clean CSR base (no pending edge deltas -- ``compact()``
    first); pending *point* deltas are fine, the current point set is
    what gets recorded.  The loaded database starts a fresh stamp
    history at ``(0, 0)``.

    Parameters
    ----------
    db:
        A :class:`~repro.compact.db.CompactDatabase`.
    path:
        Snapshot directory (created if missing).

    Returns
    -------
    pathlib.Path
        The snapshot directory.
    """
    db._require_base_network("save_snapshot")
    root = Path(os.fspath(path))
    root.mkdir(parents=True, exist_ok=True)
    store = db._base_store
    store.csr.save(root / _GRAPH_FILE)
    order = [0] * store.num_nodes
    for node, position in enumerate(store._rank):
        order[position] = node
    _write_i64(root / _ORDER_FILE, order)
    coords = getattr(db.graph, "coords", None)
    if coords is not None:
        flat: list[float] = []
        for x, y in coords:
            flat.extend((float(x), float(y)))
        arr = array("d", flat)
        if sys.byteorder == "big":  # pragma: no cover - little-endian CI
            arr.byteswap()
        (root / _COORDS_FILE).write_bytes(arr.tobytes())
    meta = {
        "format": _FORMAT,
        "num_nodes": store.num_nodes,
        "has_coords": coords is not None,
        "points": {str(pid): node for pid, node in db.points.items()},
    }
    (root / _META_FILE).write_text(json.dumps(meta, sort_keys=True))
    return root


def load_snapshot(path, *, mmap: bool = True, compact_threshold=None):
    """Rebuild a :class:`~repro.compact.db.CompactDatabase` from ``path``.

    Parameters
    ----------
    path:
        A directory written by :func:`save_snapshot`.
    mmap:
        Map the CSR arrays read-only (constant-time load, physical
        pages shared across every process mapping the same snapshot)
        instead of copying them into private memory.
    compact_threshold:
        Forwarded to the database (auto-compaction trigger).

    Returns
    -------
    CompactDatabase
        Answering exactly what the saved database answered, starting
        at stamp ``(0, 0)``.
    """
    from repro.compact.db import CompactDatabase
    from repro.compact.store import CompactGraphStore
    from repro.core.network import NetworkView
    from repro.points.points import NodePointSet
    from repro.storage.stats import CostTracker

    root = Path(os.fspath(path))
    try:
        meta = json.loads((root / _META_FILE).read_text())
    except FileNotFoundError:
        raise GraphError(f"no snapshot at {root} (missing {_META_FILE})")
    if meta.get("format") != _FORMAT:
        raise GraphError(f"unsupported snapshot format {meta.get('format')!r}")
    csr = CSRGraph.load(root / _GRAPH_FILE, mmap=mmap)
    order = _read_flat(root / _ORDER_FILE, "q")
    coords = None
    if meta.get("has_coords"):
        flat = _read_flat(root / _COORDS_FILE, "d")
        coords = [
            (flat[2 * v], flat[2 * v + 1]) for v in range(csr.num_nodes)
        ]
    points = NodePointSet(
        {int(pid): int(node) for pid, node in meta["points"].items()}
    )
    db = CompactDatabase.__new__(CompactDatabase)
    db.graph = CSRGraphAdapter(csr, coords=coords)
    db.points = points
    db.tracker = CostTracker()
    db.store = CompactGraphStore(order=order, csr=csr)
    db.view = NetworkView(db.store, points, db.tracker)
    db.materialized = None
    db.oracle = None
    db._ref_points = None
    db._ref_view = None
    db._ref_materialized = None
    db.generation = 0
    db._init_overlay(compact_threshold)
    return db
