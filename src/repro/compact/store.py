"""Memory-resident stores over the CSR kernels.

These classes give the CSR kernels the *store protocol* the rest of
the system consumes -- ``neighbors`` / ``out_neighbors`` /
``in_neighbors``, ``num_nodes``, ``page_of`` -- so the existing
:class:`~repro.core.network.NetworkView` and
:class:`~repro.core.directed.DirectedView` (and through them every
query algorithm) run over a compact store unchanged.

Reads are **free**: there are no pages, no buffer and no charged I/O.
The ``page_of`` index survives as a locality *rank* (the position of a
node in the packing order the disk layout would have used), so the
batch planner's page-adjacency ordering keeps working and orders
compact batches the same way it orders disk batches.

:class:`MemoryKnnStore` is the in-memory counterpart of
:class:`~repro.storage.disk.KnnListStore`: the same ``get`` / ``put``
/ ``capacity`` surface consumed by
:class:`~repro.core.materialize.MaterializedKNN`, without pages or
charging, so ``eager-m`` and its update maintenance run unchanged.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.compact.csr import CSRDiGraph, CSRGraph
from repro.errors import StorageError
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.graph.partition import bfs_order
from repro.storage.disk_directed import weak_bfs_order


def _disk_pack_order(pages: Sequence[bytes]) -> list[int]:
    """The node order a paged adjacency file actually uses: page
    sequence first, in-page record order second."""
    from repro.storage.page import decode_adjacency_page

    order: list[int] = []
    for payload in pages:
        order.extend(record.node for record in decode_adjacency_page(payload))
    return order


def _rank_of(order: Sequence[int], num_nodes: int) -> list[int]:
    """Invert a packing order into a node -> rank table."""
    if sorted(order) != list(range(num_nodes)):
        raise StorageError("packing order must cover every node exactly once")
    rank = [0] * num_nodes
    for position, node in enumerate(order):
        rank[node] = position
    return rank


class CompactGraphStore:
    """CSR-backed drop-in for :class:`~repro.storage.disk.DiskGraph`.

    Parameters
    ----------
    graph:
        The network to flatten (adjacency order is preserved, so
        results match the disk store exactly).
    order:
        Packing order used only as the planner's locality rank;
        defaults to the same BFS order the disk layout uses.
    csr:
        A prebuilt kernel (skips flattening ``graph``).
    """

    def __init__(
        self,
        graph: Graph | None = None,
        *,
        order: Sequence[int] | None = None,
        csr: CSRGraph | None = None,
    ):
        if csr is None:
            if graph is None:
                raise StorageError("CompactGraphStore needs a graph or a csr")
            csr = CSRGraph.from_graph(graph)
        self.csr = csr
        self.num_nodes = csr.num_nodes
        self.num_edges = csr.num_edges
        if order is None:
            order = bfs_order(graph) if graph is not None else range(self.num_nodes)
        self._rank = _rank_of(list(order), self.num_nodes)

    @classmethod
    def from_disk(cls, disk, order: Sequence[int] | None = None) -> "CompactGraphStore":
        """Load an existing :class:`~repro.storage.disk.DiskGraph`.

        Pages are decoded uncharged; the disk's own packing order
        (page sequence, then in-page record order) seeds the locality
        rank unless ``order`` overrides it.
        """
        csr = CSRGraph.from_disk_graph(disk)
        if order is None:
            order = _disk_pack_order(disk._pages)
        return cls(order=order, csr=csr)

    @property
    def num_pages(self) -> int:
        """Always 0: the compact store is memory-resident."""
        return 0

    def page_of(self, node: int) -> int:
        """Locality rank of ``node`` (free look-up; no real pages).

        Preserves the planner's page-adjacency ordering: nodes that
        would have shared a disk page get adjacent ranks.
        """
        if not 0 <= node < self.num_nodes:
            raise StorageError(f"node {node} out of range")
        return self._rank[node]

    def neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        """Adjacency list of ``node``; a free flat-array read."""
        if not 0 <= node < self.num_nodes:
            raise StorageError(f"node {node} out of range")
        return self.csr.neighbors(node)


class CompactDiGraphStore:
    """CSR-backed drop-in for
    :class:`~repro.storage.disk_directed.DiskDiGraph`."""

    def __init__(
        self,
        graph: DiGraph | None = None,
        *,
        order: Sequence[int] | None = None,
        csr: CSRDiGraph | None = None,
    ):
        if csr is None:
            if graph is None:
                raise StorageError("CompactDiGraphStore needs a graph or a csr")
            csr = CSRDiGraph.from_digraph(graph)
        self.csr = csr
        self.num_nodes = csr.num_nodes
        self.num_arcs = csr.num_arcs
        if order is None:
            order = (
                weak_bfs_order(graph) if graph is not None
                else range(self.num_nodes)
            )
        self._rank = _rank_of(list(order), self.num_nodes)

    @classmethod
    def from_disk(cls, disk, order: Sequence[int] | None = None) -> "CompactDiGraphStore":
        """Load an existing paged directed store, decoding pages uncharged.

        The forward file's packing order (page sequence, then in-page
        record order) seeds the locality rank.
        """
        csr = CSRDiGraph.from_disk_digraph(disk)
        if order is None:
            order = _disk_pack_order(disk._forward._pages)
        return cls(order=order, csr=csr)

    @property
    def num_pages(self) -> int:
        """Always 0: the compact store is memory-resident."""
        return 0

    def page_of(self, node: int) -> int:
        """Locality rank of ``node`` (free look-up; no real pages)."""
        if not 0 <= node < self.num_nodes:
            raise StorageError(f"node {node} out of range")
        return self._rank[node]

    def out_neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        """Outgoing arcs of ``node``; a free flat-array read."""
        if not 0 <= node < self.num_nodes:
            raise StorageError(f"node {node} out of range")
        return self.csr.out_neighbors(node)

    def in_neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        """Incoming arcs of ``node``; a free flat-array read."""
        if not 0 <= node < self.num_nodes:
            raise StorageError(f"node {node} out of range")
        return self.csr.in_neighbors(node)


class MemoryKnnStore:
    """In-memory materialized K-NN lists (uncharged ``get``/``put``).

    The same record protocol as
    :class:`~repro.storage.disk.KnnListStore` -- fixed ``capacity``,
    per-node entry tuples in ascending distance order -- minus the
    pages and the charging, so
    :class:`~repro.core.materialize.MaterializedKNN` maintenance runs
    unchanged over it.
    """

    def __init__(
        self,
        num_nodes: int,
        capacity: int,
        lists: Mapping[int, Sequence[tuple[int, float]]] | None = None,
    ):
        if capacity < 1:
            raise StorageError(f"K must be >= 1, got {capacity}")
        self.capacity = capacity
        self.num_nodes = num_nodes
        lists = lists or {}
        self._lists: list[tuple[tuple[int, float], ...]] = [
            tuple((int(pid), float(dist)) for pid, dist in lists.get(v, ()))
            for v in range(num_nodes)
        ]

    def get(self, node: int) -> tuple[tuple[int, float], ...]:
        """Materialized list of ``node`` (free read)."""
        if not 0 <= node < self.num_nodes:
            raise StorageError(f"node {node} out of range")
        return self._lists[node]

    def put(self, node: int, entries: Sequence[tuple[int, float]]) -> None:
        """Replace ``node``'s list in place (free write)."""
        if len(entries) > self.capacity:
            raise StorageError(
                f"list for node {node} has {len(entries)} entries, "
                f"capacity is {self.capacity}"
            )
        if not 0 <= node < self.num_nodes:
            raise StorageError(f"node {node} out of range")
        self._lists[node] = tuple(
            (int(pid), float(dist)) for pid, dist in entries
        )
