"""Compact backend: CSR flat-array stores behind database facades.

The memory-resident fast path of the multi-backend architecture: the
network is flattened once into compressed-sparse-row arrays
(:mod:`repro.compact.csr`), served through store adapters matching the
disk protocol (:mod:`repro.compact.store`), and exposed behind
:class:`CompactDatabase` / :class:`CompactDirectedDatabase` facades
(:mod:`repro.compact.db`) that answer every restricted query
identically to the disk-backed and sharded databases -- with zero page
I/O and no buffer bookkeeping on the adjacency hot path.

Because the flat arrays support the buffer protocol, the backend also
carries a vectorized batch kernel (:mod:`repro.compact.batch`):
``batch_rknn()`` answers a whole batch of RkNN specs in one
multi-source bucketed Dijkstra over numpy views of the CSR arrays,
bitwise identical to the scalar loop and charged to the same cost
model.
"""

from repro.compact.batch import BatchRequest, batch_rknn_kernel, numpy_available
from repro.compact.csr import CSRDiGraph, CSRGraph
from repro.compact.db import CompactDatabase, CompactDirectedDatabase
from repro.compact.store import (
    CompactDiGraphStore,
    CompactGraphStore,
    MemoryKnnStore,
)

__all__ = [
    "BatchRequest",
    "CSRDiGraph",
    "CSRGraph",
    "CompactDatabase",
    "CompactDiGraphStore",
    "CompactDirectedDatabase",
    "CompactGraphStore",
    "MemoryKnnStore",
    "batch_rknn_kernel",
    "numpy_available",
]
