"""Compact backend: CSR flat-array stores behind database facades.

The memory-resident fast path of the multi-backend architecture: the
network is flattened once into compressed-sparse-row arrays
(:mod:`repro.compact.csr`), served through store adapters matching the
disk protocol (:mod:`repro.compact.store`), and exposed behind
:class:`CompactDatabase` / :class:`CompactDirectedDatabase` facades
(:mod:`repro.compact.db`) that answer every restricted query
identically to the disk-backed and sharded databases -- with zero page
I/O and no buffer bookkeeping on the adjacency hot path.

Because the flat arrays support the buffer protocol, the backend also
carries a vectorized batch kernel (:mod:`repro.compact.batch`):
``batch_rknn()`` answers a whole batch of RkNN specs in one
multi-source bucketed Dijkstra over numpy views of the CSR arrays,
bitwise identical to the scalar loop and charged to the same cost
model.

Mutations go through an LSM-style delta overlay
(:mod:`repro.compact.overlay`): the CSR arrays are an immutable base
generation, every point/edge insert-delete appends to a log, readers
pin a ``(base_generation, delta_epoch)`` snapshot stamp, and
``compact()`` folds the log into a fresh base -- writes never drain
readers.
"""

from repro.compact.batch import BatchRequest, batch_rknn_kernel, numpy_available
from repro.compact.csr import CSRDiGraph, CSRGraph
from repro.compact.db import CompactDatabase, CompactDirectedDatabase
from repro.compact.overlay import DeltaOp, DeltaOverlay, OverlayGraphStore
from repro.compact.snapshot import CSRGraphAdapter, load_snapshot, save_snapshot
from repro.compact.store import (
    CompactDiGraphStore,
    CompactGraphStore,
    MemoryKnnStore,
)

__all__ = [
    "BatchRequest",
    "CSRDiGraph",
    "CSRGraph",
    "CSRGraphAdapter",
    "CompactDatabase",
    "CompactDiGraphStore",
    "CompactDirectedDatabase",
    "CompactGraphStore",
    "DeltaOp",
    "DeltaOverlay",
    "MemoryKnnStore",
    "OverlayGraphStore",
    "batch_rknn_kernel",
    "load_snapshot",
    "numpy_available",
    "save_snapshot",
]
