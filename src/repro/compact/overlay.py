"""LSM-style delta overlay over an immutable CSR base generation.

The compact backend's mutation story used to be "swap the world":
every point insertion/deletion rebound the facade's view, and the
serve tier drained all in-flight batches through its
writer-preferring gate before letting the write land.  This module
replaces that with the append-mostly design the streaming RkNN
setting wants:

* the CSR arrays stay **immutable** -- they are the *base
  generation*;
* every mutation is appended to a :class:`DeltaOverlay` log as a
  :class:`DeltaOp` (point insert/delete, edge insert/delete), bumping
  the *delta epoch* (the number of appended operations);
* readers pin a ``(base_generation, delta_epoch)`` **stamp**:
  a snapshot is the base arrays plus a log prefix, so appends never
  invalidate -- let alone drain -- a running query;
* :class:`OverlayGraphStore` is the thin merged-view shim: it speaks
  the same store protocol as
  :class:`~repro.compact.store.CompactGraphStore` (``num_nodes``,
  ``num_edges``, ``page_of``, ``neighbors``) while replaying the
  pending *edge* operations over the base adjacency on demand;
* compaction (:meth:`~repro.compact.db.CompactDatabase.compact`)
  folds the log into a fresh CSR base, bumps the base generation and
  resets the epoch to zero -- the only moment that behaves like the
  old swap.

**Answer identity.**  Heap tie-breaking -- and therefore every RkNN
answer -- depends on adjacency *order*.  The merged view reproduces
exactly the order a from-scratch rebuild would produce: a node's base
neighbors in their original order, minus deleted edges (deletion
preserves the relative order of survivors), plus delta-inserted edges
in append order.  Rebuilding a :class:`~repro.graph.graph.Graph` from
the same merged edge sequence yields identical adjacency lists, so
overlay-view answers are bitwise identical to a rebuild at every
epoch -- the property suite in
``tests/compact/test_overlay_properties.py`` holds the system to it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError, StorageError
from repro.points.points import NodePointSet

#: Operation kinds a delta log may hold.
OP_KINDS = ("insert-point", "delete-point", "insert-edge", "delete-edge")

#: The subset of :data:`OP_KINDS` that changes the network itself.
EDGE_KINDS = ("insert-edge", "delete-edge")


@dataclass(frozen=True)
class DeltaOp:
    """One appended mutation in a :class:`DeltaOverlay` log.

    Point operations carry ``pid``/``node``; edge operations carry
    ``u``/``v`` (and ``weight`` for insertions).  Instances are frozen:
    a log entry never changes after it is appended, which is what makes
    a ``(base, epoch)`` stamp a durable snapshot name.

    Parameters
    ----------
    kind:
        One of :data:`OP_KINDS`.
    pid / node:
        Point id and node for point operations (``node`` is ``None``
        for deletions).
    u / v / weight:
        Endpoints and weight for edge operations (``weight`` is
        ``None`` for deletions).
    """

    kind: str
    pid: int | None = None
    node: int | None = None
    u: int | None = None
    v: int | None = None
    weight: float | None = None

    def __post_init__(self):
        if self.kind not in OP_KINDS:
            raise QueryError(f"unknown delta op kind {self.kind!r}")

    @property
    def is_edge_op(self) -> bool:
        """Whether this operation mutates the network (see
        :data:`EDGE_KINDS`)."""
        return self.kind in EDGE_KINDS


class DeltaOverlay:
    """Append-only mutation log over an immutable point/network base.

    The overlay is the write side of the compact backend's LSM pair:
    the base (CSR arrays + the point set at the last compaction) is
    immutable, and every mutation lands here as an appended
    :class:`DeltaOp`.  The log length is the **delta epoch**; a log
    prefix of length ``e`` names the exact database state after the
    first ``e`` mutations, which is what time-travel sessions
    (``at_epoch``) and snapshot replay in the test battery rely on.

    Parameters
    ----------
    base_points:
        The point set at the base generation (epoch 0).
    """

    def __init__(self, base_points: NodePointSet):
        self.base_points = base_points
        self._ops: list[DeltaOp] = []
        self._edge_ops = 0
        self._edge_inserts = 0

    @property
    def epoch(self) -> int:
        """The delta epoch: number of operations appended so far."""
        return len(self._ops)

    @property
    def edge_op_count(self) -> int:
        """How many of the appended operations are edge operations."""
        return self._edge_ops

    @property
    def has_edge_inserts(self) -> bool:
        """Whether any pending operation inserts an edge.

        Edge insertions can *shrink* network distances, which breaks
        the admissibility of landmark lower bounds computed on the
        base -- the facade detaches its oracle exactly when this turns
        true.  Deletions only grow distances, so base bounds stay
        admissible under them.
        """
        return self._edge_inserts > 0

    def append(self, op: DeltaOp) -> int:
        """Append one operation; return the new epoch.

        Parameters
        ----------
        op:
            The validated operation (the facade validates against the
            merged head state *before* appending).

        Returns
        -------
        int
            The epoch after the append (``old epoch + 1``).
        """
        self._ops.append(op)
        if op.is_edge_op:
            self._edge_ops += 1
            if op.kind == "insert-edge":
                self._edge_inserts += 1
        return len(self._ops)

    def ops_at(self, epoch: int) -> tuple[DeltaOp, ...]:
        """The log prefix naming state ``epoch``.

        Parameters
        ----------
        epoch:
            A value in ``0 .. self.epoch``.

        Returns
        -------
        tuple[DeltaOp, ...]
        """
        if not 0 <= epoch <= len(self._ops):
            raise QueryError(
                f"epoch {epoch} out of range (log holds epochs "
                f"0..{len(self._ops)})"
            )
        return tuple(self._ops[:epoch])

    def edge_ops_at(self, epoch: int) -> tuple[DeltaOp, ...]:
        """The edge operations within the prefix of length ``epoch``."""
        return tuple(op for op in self.ops_at(epoch) if op.is_edge_op)

    def points_at(self, epoch: int) -> NodePointSet:
        """Replay the point set as of ``epoch``.

        Parameters
        ----------
        epoch:
            A value in ``0 .. self.epoch``; 0 is the base point set.

        Returns
        -------
        NodePointSet
            A fresh set: the base placement with the prefix's point
            insertions/deletions applied in order.
        """
        placement = dict(self.base_points.items())
        for op in self.ops_at(epoch):
            if op.kind == "insert-point":
                placement[op.pid] = op.node
            elif op.kind == "delete-point":
                del placement[op.pid]
        return NodePointSet(placement)


class OverlayGraphStore:
    """Merged view of a CSR base plus pending edge operations.

    Speaks the compact store protocol (``num_nodes`` / ``num_edges`` /
    ``num_pages`` / ``page_of`` / ``neighbors``) so
    :class:`~repro.core.network.NetworkView` -- and through it every
    expansion kernel -- consults the overlay without change.  A node's
    adjacency is replayed lazily and memoized: base neighbors in base
    order, deletions removing their single matching entry, insertions
    appended in log order.  Nodes no edge operation touches return the
    base tuple itself (same objects, same floats -- bitwise identical).

    Deliberately does **not** expose a ``csr`` attribute: the
    vectorized batch kernel and the landmark-oracle builder read raw
    flat arrays, which do not reflect pending edge deltas, so the
    facade falls back to the scalar path (and refuses oracle builds)
    whenever its store is an overlay view.  Compaction restores the
    fast paths.

    Parameters
    ----------
    base:
        The immutable :class:`~repro.compact.store.CompactGraphStore`.
    edge_ops:
        The pending edge operations, in append order (a
        :meth:`DeltaOverlay.edge_ops_at` prefix).
    """

    def __init__(self, base, edge_ops):
        self.base = base
        self.edge_ops = tuple(edge_ops)
        self.num_nodes = base.num_nodes
        inserts = sum(1 for op in self.edge_ops if op.kind == "insert-edge")
        self.num_edges = base.num_edges + 2 * inserts - len(self.edge_ops)
        self._node_ops: dict[int, list[DeltaOp]] = {}
        for op in self.edge_ops:
            if not op.is_edge_op:
                raise StorageError(
                    f"OverlayGraphStore takes edge operations, got {op.kind!r}"
                )
            self._node_ops.setdefault(op.u, []).append(op)
            self._node_ops.setdefault(op.v, []).append(op)
        self._merged: dict[int, tuple[tuple[int, float], ...]] = {}

    @property
    def num_pages(self) -> int:
        """Always 0: the overlay view is memory-resident."""
        return 0

    def page_of(self, node: int) -> int:
        """The base store's locality rank (delta edges do not repack)."""
        return self.base.page_of(node)

    def neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        """Merged adjacency of ``node``: base order, then delta appends.

        Parameters
        ----------
        node:
            Node id.

        Returns
        -------
        tuple[tuple[int, float], ...]
            Exactly the adjacency a from-scratch rebuild at this epoch
            would produce, so heap tie-breaking -- and every answer --
            matches the rebuild bitwise.
        """
        ops = self._node_ops.get(node)
        if ops is None:
            return self.base.neighbors(node)
        merged = self._merged.get(node)
        if merged is None:
            entries = list(self.base.neighbors(node))
            for op in ops:
                other = op.v if op.u == node else op.u
                if op.kind == "insert-edge":
                    entries.append((other, float(op.weight)))
                else:
                    for i, (nbr, _) in enumerate(entries):
                        if nbr == other:
                            del entries[i]
                            break
            merged = tuple(entries)
            self._merged[node] = merged
        return merged
