"""Compact database facades: the paper's queries over CSR flat arrays.

:class:`CompactDatabase` mirrors the restricted-network surface of
:class:`~repro.api.GraphDatabase` -- kNN, range-NN, monochromatic /
continuous / bichromatic RkNN, materialization, point updates, batch
serving -- over a :class:`~repro.compact.store.CompactGraphStore`.
The query algorithms are reused verbatim through the standard
:class:`~repro.core.network.NetworkView`, so answers are **identical**
to the disk-backed and sharded databases; what changes is the storage:
adjacency lives in three flat arrays, reads are free (no pages, no
buffer, no charged I/O) and a query's cost record counts only the
algorithmic work (heap traffic, nodes visited, probes, CPU).

:class:`CompactDirectedDatabase` is the directed counterpart
(:class:`~repro.api_directed.DirectedGraphDatabase` surface).

Because the store is immutable shared memory, :meth:`read_clone` is a
constant-time operation: a session is a new tracker over the *same*
arrays, which is what lets the batch engine hand every worker a
session without copying the graph (``backend="compact"`` mode).
"""

from __future__ import annotations

import copy
from typing import AbstractSet, Iterable, Sequence

from repro.compact.batch import (
    BatchRequest,
    batch_rknn_kernel,
    numpy_available,
)
from repro.compact.store import (
    CompactDiGraphStore,
    CompactGraphStore,
    MemoryKnnStore,
)
from repro.core.bichromatic import (
    bichromatic_eager,
    bichromatic_eager_m,
    bichromatic_lazy,
)
from repro.core.continuous import validate_route
from repro.core.directed import (
    DirectedView,
    directed_all_nn,
    directed_delete,
    directed_insert,
    directed_knn,
    directed_range_nn,
    directed_rknn,
)
from repro.core.eager import eager_rknn, eager_rknn_route
from repro.core.eager_m import eager_m_rknn, eager_m_rknn_route
from repro.core.lazy import lazy_rknn, lazy_rknn_route
from repro.core.lazy_ep import lazy_ep_rknn, lazy_ep_rknn_route
from repro.core.materialize import MaterializedKNN, all_nn
from repro.core.network import NetworkView
from repro.core.nn import knn as restricted_knn
from repro.core.nn import range_nn as restricted_range_nn
from repro.core.result import KnnResult, OracleResult, RnnResult, UpdateResult
from repro.errors import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.graph.partition import bfs_order, hilbert_order
from repro.oracle import (
    DEFAULT_LANDMARKS,
    DistanceOracle,
    csr_landmark_distances,
    resolve_oracle_source,
    select_landmarks,
)
from repro.points.points import NodePointSet
from repro.storage.stats import CostTracker

_EMPTY: frozenset[int] = frozenset()

#: RkNN methods served by the compact undirected facade.
METHODS = ("eager", "lazy", "eager-m", "lazy-ep")

#: RkNN methods served by the compact directed facade.
DIRECTED_METHODS = ("eager", "eager-m", "naive")


def _require_node_points(points: NodePointSet | None, graph_nodes: int) -> NodePointSet:
    """Validate the restricted point set shared by both compact facades."""
    if points is None:
        points = NodePointSet({})
    if not isinstance(points, NodePointSet):
        raise QueryError(
            "the compact backend serves restricted networks "
            "(NodePointSet); edge-resident points are unsupported"
        )
    for pid, node in points.items():
        if not 0 <= node < graph_nodes:
            raise QueryError(f"point {pid} lies on unknown node {node}")
    return points


class _CompactMeasureMixin:
    """Measurement and session plumbing shared by both compact facades."""

    #: Engine-visible backend tag (see :func:`repro.engine.planner.backend_of`).
    backend = "compact"

    def _measure(self, func):
        before = self.tracker.snapshot()
        with self.tracker.time_block():
            outcome = func()
        diff = self.tracker.diff(before)
        return outcome, diff

    def _batch_measure(self, flat, requests, oracle):
        """Run the vectorized kernel under this facade's cost tracking.

        The kernel's per-request charges are merged into the facade
        tracker inside the timed block (exactly where the scalar path
        charges its work), then the measured CPU is apportioned evenly
        across the batch so per-query records stay comparable to
        scalar ones.
        """
        before = self.tracker.snapshot()
        with self.tracker.time_block():
            answers, charges = batch_rknn_kernel(
                flat, self.store.num_nodes, sorted(self.points.items()),
                requests, oracle=oracle,
            )
            for charge in charges:
                self.tracker.merge(charge)
        diff = self.tracker.diff(before)
        cpu_each = diff.cpu_seconds / max(1, len(requests))
        results = []
        for answer, charge in zip(answers, charges):
            charge.cpu_seconds = cpu_each
            results.append(
                RnnResult(tuple(answer), charge.io_operations, cpu_each, charge)
            )
        return tuple(results)

    # -- cost measurement ---------------------------------------------------

    def reset_stats(self) -> None:
        """Zero the counters."""
        self.tracker.reset()

    def clear_buffer(self) -> None:
        """No-op: the compact store has no buffer to cool.

        Kept so workloads written against the disk backends (which
        call ``clear_buffer`` between cold runs) run unchanged.
        """

    # -- serving ------------------------------------------------------------

    def engine(self, **kwargs) -> "QueryEngine":
        """A batch :class:`~repro.engine.engine.QueryEngine` over this
        database.

        Parameters
        ----------
        **kwargs:
            Forwarded to the engine constructor (``cache_entries``,
            ``calibrator``, ``plan``, ``batch_kernel``).  The engine
            detects the compact backend: worker sessions share these
            read-only arrays instead of cloning storage, and batched
            RkNN specs execute through the vectorized
            :meth:`~CompactDatabase.batch_rknn` kernel unless
            ``batch_kernel=False``.

        Returns
        -------
        QueryEngine
        """
        from repro.engine.engine import QueryEngine

        return QueryEngine(self, **kwargs)


class CompactDatabase(_CompactMeasureMixin):
    """Memory-resident CSR graph database answering (reverse) NN queries.

    Parameters
    ----------
    graph:
        The network.  It is flattened once into CSR arrays; queries
        never touch pages or a buffer.
    points:
        The data set P as a :class:`~repro.points.points.NodePointSet`
        (the compact backend serves restricted networks).  ``None``
        creates an empty set.
    node_order:
        Locality rank fed to the batch planner: ``"bfs"`` (default) or
        ``"hilbert"`` (requires coordinates).  Answers never depend on
        it; only batch execution order does.
    """

    def __init__(
        self,
        graph: Graph,
        points: NodePointSet | None = None,
        *,
        node_order: str = "bfs",
    ):
        points = _require_node_points(points, graph.num_nodes)
        points.validate(graph)
        self.graph = graph
        self.points = points
        self.tracker = CostTracker()
        if node_order == "bfs":
            order = bfs_order(graph)
        elif node_order == "hilbert":
            order = hilbert_order(graph)
        else:
            raise QueryError(f"unknown node_order {node_order!r}")
        self.store = CompactGraphStore(graph, order=order)
        self.view = NetworkView(self.store, points, self.tracker)
        self.materialized: MaterializedKNN | None = None
        #: Landmark distance oracle (see :meth:`build_oracle`); ``None``
        #: until built or opened.  The compact backend keeps it purely
        #: in memory (no pages to persist to).
        self.oracle: DistanceOracle | None = None
        self._ref_points: NodePointSet | None = None
        self._ref_view: NetworkView | None = None
        self._ref_materialized: MaterializedKNN | None = None
        #: Update generation: bumped by every point insertion/deletion
        #: (the query engine keys its result cache on this counter).
        self.generation = 0

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int, float]],
        points: NodePointSet | None = None,
        **kwargs,
    ) -> "CompactDatabase":
        """Build a compact database straight from an edge list.

        Parameters
        ----------
        edges:
            ``(u, v, weight)`` triples.
        points:
            Optional :class:`~repro.points.points.NodePointSet`.
        **kwargs:
            Forwarded to the constructor (``node_order``).

        Returns
        -------
        CompactDatabase
        """
        return cls(Graph.from_edges(edges), points, **kwargs)

    @classmethod
    def from_database(cls, db) -> "CompactDatabase":
        """Promote an existing disk-backed database to the compact backend.

        Parameters
        ----------
        db:
            A :class:`~repro.api.GraphDatabase` with node-resident
            points.  Its serialized adjacency pages are decoded once
            (uncharged) into the CSR arrays; the point set is shared.

        Returns
        -------
        CompactDatabase
            A database answering every restricted query identically to
            ``db``, without page I/O.
        """
        points = _require_node_points(db.points, db.graph.num_nodes)
        compact = cls.__new__(cls)
        compact.graph = db.graph
        compact.points = points
        compact.tracker = CostTracker()
        compact.store = CompactGraphStore.from_disk(db.disk)
        compact.view = NetworkView(compact.store, points, compact.tracker)
        compact.materialized = None
        compact.oracle = None
        compact._ref_points = None
        compact._ref_view = None
        compact._ref_materialized = None
        compact.generation = 0
        return compact

    # -- properties ---------------------------------------------------------

    @property
    def restricted(self) -> bool:
        """Always true: the compact backend stores points on nodes."""
        return True

    @property
    def disk(self):
        """The compact store, exposed under the facade's disk slot.

        The engine's admission planner only needs ``disk.page_of``;
        the compact store serves the packing-order locality rank.
        """
        return self.store

    # -- materialization ----------------------------------------------------

    def materialize(self, capacity: int) -> None:
        """Precompute the K-NN lists of every node (paper Section 4.1).

        Parameters
        ----------
        capacity:
            The paper's ``K``: the largest ``k`` any future ``eager-m``
            query may use (data-distributed queries that exclude their
            own point effectively need ``K >= k + 1``).
        """
        lists = all_nn(
            self.view,
            capacity,
            [(node, pid, 0.0) for pid, node in self.points.items()],
        )
        store = MemoryKnnStore(self.graph.num_nodes, capacity, lists)
        self.materialized = MaterializedKNN(store)

    def materialize_reference(self, capacity: int) -> None:
        """Materialize K-NN lists over the attached reference set Q.

        Parameters
        ----------
        capacity:
            List capacity ``K`` for the reference materialization
            (required by bichromatic ``eager-m``).
        """
        if self._ref_view is None or self._ref_points is None:
            raise QueryError("attach_reference() before materialize_reference()")
        lists = all_nn(
            self._ref_view,
            capacity,
            [(node, pid, 0.0) for pid, node in self._ref_points.items()],
        )
        store = MemoryKnnStore(self.graph.num_nodes, capacity, lists)
        self._ref_materialized = MaterializedKNN(store)

    # -- bichromatic reference set ------------------------------------------

    def attach_reference(self, reference: NodePointSet) -> None:
        """Attach the reference set Q for bichromatic queries.

        Parameters
        ----------
        reference:
            A :class:`~repro.points.points.NodePointSet`; the facade's
            own points act as P.  Swapping Q bumps the generation so
            cached bichromatic answers invalidate.
        """
        if not isinstance(reference, NodePointSet):
            raise QueryError("the compact backend takes node-resident references")
        reference.validate(self.graph)
        self._ref_points = reference
        self._ref_view = NetworkView(
            self.store, reference, self.tracker, bounds=self.oracle
        )
        self._ref_materialized = None
        self.generation += 1

    # -- landmark distance oracle -------------------------------------------

    def build_oracle(
        self,
        count: int = DEFAULT_LANDMARKS,
        *,
        seed: int = 0,
        strategy: str = "farthest",
    ) -> OracleResult:
        """Build and attach an ALT landmark distance oracle (CPU only).

        One single-source Dijkstra per landmark runs directly over the
        CSR flat arrays, with the relaxation step vectorized across
        each adjacency range -- no pages, no buffer, no charged I/O.
        The oracle stays in memory (the compact backend has no disk
        store to persist to; use :meth:`open_oracle` to share a label
        table built by a paged backend, or hand this oracle to one).

        Parameters
        ----------
        count:
            Number of landmarks ``L``.
        seed:
            Seeds the first landmark pick.
        strategy:
            ``"farthest"`` (default) or ``"random"``.

        Returns
        -------
        OracleResult
            The selected landmarks plus the CPU-only cost record.
        """

        def run():
            landmarks, tables = select_landmarks(
                lambda source: csr_landmark_distances(self.store.csr, source),
                self.graph.num_nodes,
                count,
                seed=seed,
                strategy=strategy,
            )
            return DistanceOracle(landmarks, tables)

        oracle, diff = self._measure(run)
        self.oracle = oracle
        self._attach_bounds(oracle)
        return OracleResult(
            oracle.landmarks, oracle.storage_entries, 0,
            diff.io_operations, diff.cpu_seconds, diff,
        )

    def open_oracle(self, source) -> OracleResult:
        """Attach an oracle built elsewhere (store or oracle object).

        Parameters
        ----------
        source:
            A persisted :class:`~repro.oracle.store.LandmarkStore`
            (decoded uncharged) or a ready
            :class:`~repro.oracle.oracle.DistanceOracle` built by any
            backend over the same graph.

        Returns
        -------
        OracleResult
            The attached landmarks (opening charges no I/O).
        """
        oracle, _, _ = resolve_oracle_source(source, self.graph.num_nodes)
        self.oracle = oracle
        self._attach_bounds(oracle)
        return OracleResult(oracle.landmarks, oracle.storage_entries, 0, 0, 0.0)

    def _attach_bounds(self, bounds) -> None:
        self.view.bounds = bounds
        if self._ref_view is not None:
            self._ref_view.bounds = bounds

    # -- sessions -----------------------------------------------------------

    def read_clone(self) -> "CompactDatabase":
        """A read-only session **sharing** this database's CSR arrays.

        Returns
        -------
        CompactDatabase
            A constant-time clone: the flat arrays and materialized
            lists are shared read-only; only the tracker (and the
            views bound to it) is private, so concurrent sessions
            never race on counters.  Running updates through a clone
            is unsupported.
        """
        clone = copy.copy(self)
        clone.tracker = CostTracker()
        clone.view = NetworkView(
            self.store, clone.points, clone.tracker, bounds=self.oracle
        )
        if self._ref_points is not None:
            clone._ref_view = NetworkView(
                self.store, self._ref_points, clone.tracker, bounds=self.oracle
            )
        return clone

    # -- monochromatic RkNN -------------------------------------------------

    def rknn(
        self,
        query: int,
        k: int = 1,
        method: str = "eager",
        exclude: AbstractSet[int] = _EMPTY,
    ) -> RnnResult:
        """Reverse k-nearest-neighbor query (paper Sections 3-5).

        Parameters
        ----------
        query:
            Query node id.
        k:
            Neighborhood size (>= 1).
        method:
            One of :data:`METHODS`; ``eager-m`` needs
            :meth:`materialize` first.
        exclude:
            Point ids hidden for the query's duration.

        Returns
        -------
        RnnResult
            The reverse neighbors plus the cost record (zero I/O: the
            compact store never faults).
        """
        self._check_query(query, k, method)
        points, diff = self._measure(
            lambda: self._run_rknn([query], k, method, exclude, route=False)
        )
        return RnnResult(tuple(points), diff.io_operations, diff.cpu_seconds, diff)

    def continuous_rknn(
        self,
        route: Sequence[int],
        k: int = 1,
        method: str = "eager",
        exclude: AbstractSet[int] = _EMPTY,
    ) -> RnnResult:
        """Continuous RkNN along a route of nodes (Section 5.1).

        Parameters
        ----------
        route:
            A walk: consecutive nodes must share an edge.
        k / method / exclude:
            As in :meth:`rknn`.

        Returns
        -------
        RnnResult
        """
        validate_route(self.view, route)
        self._check_query(route[0], k, method)
        points, diff = self._measure(
            lambda: self._run_rknn(list(route), k, method, exclude, route=True)
        )
        return RnnResult(tuple(points), diff.io_operations, diff.cpu_seconds, diff)

    def _run_rknn(self, sources, k, method, exclude, *, route):
        if method == "eager":
            runner = eager_rknn_route if route else eager_rknn
            return runner(self.view, sources if route else sources[0], k, exclude)
        if method == "lazy":
            runner = lazy_rknn_route if route else lazy_rknn
            return runner(self.view, sources if route else sources[0], k, exclude)
        if method == "lazy-ep":
            runner = lazy_ep_rknn_route if route else lazy_ep_rknn
            return runner(self.view, sources if route else sources[0], k, exclude)
        mat = self._require_mat()
        runner = eager_m_rknn_route if route else eager_m_rknn
        return runner(self.view, mat, sources if route else sources[0], k, exclude)

    # -- vectorized batch kernel --------------------------------------------

    #: Query kinds the vectorized batch kernel serves (engine dispatch).
    batch_kinds = ("rknn", "continuous")

    def batch_rknn(self, specs) -> tuple[RnnResult, ...]:
        """Answer a batch of RkNN specs in one vectorized CSR pass.

        All candidate expansions run together as a bucketed
        multi-source Dijkstra over numpy views of the CSR arrays (see
        :mod:`repro.compact.batch`), with the attached landmark oracle
        -- when profitable -- filtering whole candidate rows up front.
        Answers are bitwise identical to looping the scalar facade
        over the specs; each spec is validated exactly as its scalar
        counterpart would validate it.

        Parameters
        ----------
        specs:
            :class:`~repro.engine.spec.QuerySpec` values of kind
            ``"rknn"`` or ``"continuous"`` (see :attr:`batch_kinds`).
            Methods are accepted for surface parity but do not change
            the vectorized plan (every method answers identically).

        Returns
        -------
        tuple[RnnResult, ...]
            One result per spec, in order, each carrying its share of
            the batch's charged cost (zero I/O; the per-query counters
            sum to the batch total).  Without numpy the batch falls
            back to the scalar per-spec loop, answers unchanged.
        """
        specs = list(specs)
        requests = []
        for spec in specs:
            if spec.kind == "rknn":
                self._check_query(spec.query, spec.k, spec.method)
                sources = (spec.query,)
            elif spec.kind == "continuous":
                validate_route(self.view, spec.route)
                self._check_query(spec.route[0], spec.k, spec.method)
                sources = tuple(spec.route)
            else:
                raise QueryError(
                    f"batch_rknn serves kinds {self.batch_kinds}, "
                    f"got {spec.kind!r}"
                )
            if spec.method == "eager-m":
                mat = self._require_mat()
                if spec.k > mat.capacity:
                    raise QueryError(
                        f"k={spec.k} exceeds the materialized capacity "
                        f"K={mat.capacity}"
                    )
            requests.append(
                BatchRequest(sources, spec.k, frozenset(spec.exclude))
            )
        if not specs:
            return ()
        if not numpy_available():
            return tuple(self._scalar_batch(specs))
        return self._batch_measure(self.store.csr.flat(), requests, self.oracle)

    def _scalar_batch(self, specs):
        """Per-spec scalar loop: the numpy-free ``batch_rknn`` fallback."""
        results = []
        for spec in specs:
            route = spec.kind == "continuous"
            sources = list(spec.route) if route else [spec.query]
            points, diff = self._measure(
                lambda sources=sources, spec=spec, route=route: self._run_rknn(
                    sources, spec.k, spec.method, spec.exclude, route=route
                )
            )
            results.append(
                RnnResult(tuple(points), diff.io_operations,
                          diff.cpu_seconds, diff)
            )
        return results

    # -- bichromatic RkNN ---------------------------------------------------

    def bichromatic_rknn(
        self,
        query: int,
        k: int = 1,
        method: str = "eager",
        exclude: AbstractSet[int] = _EMPTY,
    ) -> RnnResult:
        """Bichromatic RkNN against the attached reference set.

        Parameters
        ----------
        query:
            Query node id.
        k:
            Neighborhood size among *reference* points.
        method:
            ``"eager"``, ``"lazy"`` or ``"eager-m"`` (the latter needs
            :meth:`materialize_reference`).
        exclude:
            Reference point ids hidden for the query's duration.

        Returns
        -------
        RnnResult
            Database points that keep the query among their k nearest
            reference points.
        """
        if self._ref_view is None:
            raise QueryError("attach_reference() before bichromatic queries")
        self._check_query(query, k, method)

        def run() -> list[int]:
            if method == "eager":
                return bichromatic_eager(self.view, self._ref_view, query, k, exclude)
            if method == "lazy":
                return bichromatic_lazy(self.view, self._ref_view, query, k, exclude)
            if method == "eager-m":
                if self._ref_materialized is None:
                    raise QueryError(
                        "materialize_reference() before bichromatic eager-m"
                    )
                return bichromatic_eager_m(
                    self.view, self._ref_view, self._ref_materialized,
                    query, k, exclude,
                )
            raise QueryError(
                "bichromatic queries support methods 'eager', 'lazy', 'eager-m'"
            )

        points, diff = self._measure(run)
        return RnnResult(tuple(points), diff.io_operations, diff.cpu_seconds, diff)

    # -- plain NN queries ---------------------------------------------------

    def knn(
        self,
        query: int,
        k: int = 1,
        exclude: AbstractSet[int] = _EMPTY,
    ) -> KnnResult:
        """The k nearest data points of a node.

        Parameters
        ----------
        query:
            Query node id.
        k:
            Number of neighbors requested.
        exclude:
            Point ids hidden for the query's duration.

        Returns
        -------
        KnnResult
            ``(point id, network distance)`` pairs in ascending order.
        """
        def run() -> list[tuple[int, float]]:
            if not isinstance(query, int):
                raise QueryError("the compact backend takes node-id queries")
            return restricted_knn(self.view, query, k, exclude)

        neighbors, diff = self._measure(run)
        return KnnResult(tuple(neighbors), diff.io_operations, diff.cpu_seconds, diff)

    def range_nn(
        self,
        query: int,
        k: int,
        radius: float,
        exclude: AbstractSet[int] = _EMPTY,
    ) -> KnnResult:
        """``range-NN(n, k, e)``: k nearest points strictly within ``radius``.

        Parameters
        ----------
        query:
            Query node id.
        k:
            Maximum number of points returned.
        radius:
            Strict distance bound ``e``.
        exclude:
            Point ids hidden for the query's duration.

        Returns
        -------
        KnnResult
        """
        neighbors, diff = self._measure(
            lambda: restricted_range_nn(self.view, query, k, radius, exclude)
        )
        return KnnResult(tuple(neighbors), diff.io_operations, diff.cpu_seconds, diff)

    # -- updates ------------------------------------------------------------

    def insert_point(self, pid: int, node: int) -> UpdateResult:
        """Add a data point, maintaining the materialized lists if any.

        Parameters
        ----------
        pid:
            New point id (must be unused).
        node:
            Node the point resides on.

        Returns
        -------
        UpdateResult
            Number of updated K-NN lists plus the cost record.
        """
        def run() -> int:
            if not isinstance(node, int):
                raise QueryError("the compact backend takes node-id locations")
            self.points = self.points.with_point(pid, node)
            self._rebuild_view()
            if self.materialized is not None:
                return self.materialized.insert(self.view, pid, [(node, 0.0)])
            return 0

        affected, diff = self._measure(run)
        self.generation += 1
        return UpdateResult(affected, diff.io_operations, diff.cpu_seconds, diff)

    def delete_point(self, pid: int) -> UpdateResult:
        """Remove a data point, maintaining the materialized lists if any.

        Parameters
        ----------
        pid:
            Id of the point to remove.

        Returns
        -------
        UpdateResult
        """
        def run() -> int:
            node = self.points.node_of(pid)
            self.points = self.points.without_point(pid)
            self._rebuild_view()
            if self.materialized is not None:
                return self.materialized.delete(self.view, pid, [(node, 0.0)])
            return 0

        affected, diff = self._measure(run)
        self.generation += 1
        return UpdateResult(affected, diff.io_operations, diff.cpu_seconds, diff)

    def _rebuild_view(self) -> None:
        self.view = NetworkView(
            self.store, self.points, self.tracker, bounds=self.oracle
        )

    # -- validation helpers -------------------------------------------------

    def _require_mat(self) -> MaterializedKNN:
        if self.materialized is None:
            raise QueryError("method 'eager-m' needs materialize() first")
        return self.materialized

    def _check_query(self, query: int, k: int, method: str) -> None:
        if method not in METHODS:
            raise QueryError(f"unknown method {method!r}; choose one of {METHODS}")
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        if not isinstance(query, int):
            raise QueryError("the compact backend takes node-id queries")
        if not 0 <= query < self.graph.num_nodes:
            raise QueryError(f"query node {query} out of range")


class CompactDirectedDatabase(_CompactMeasureMixin):
    """Memory-resident CSR directed graph database answering RkNN queries.

    Mirrors :class:`~repro.api_directed.DirectedGraphDatabase` over a
    :class:`~repro.compact.store.CompactDiGraphStore`: backward
    expansions and forward probes read the two CSR direction arrays,
    free of page I/O.
    """

    def __init__(
        self,
        graph: DiGraph,
        points: NodePointSet | None = None,
    ):
        points = _require_node_points(points, graph.num_nodes)
        self.graph = graph
        self.points = points
        self.tracker = CostTracker()
        self.store = CompactDiGraphStore(graph)
        self.view = DirectedView(self.store, points, self.tracker)
        self.materialized: MaterializedKNN | None = None
        #: Update generation (see :class:`CompactDatabase`).
        self.generation = 0

    @classmethod
    def from_arcs(
        cls,
        arcs: Iterable[tuple[int, int, float]],
        points: NodePointSet | None = None,
        **kwargs,
    ) -> "CompactDirectedDatabase":
        """Build a compact directed database straight from an arc list.

        Parameters
        ----------
        arcs:
            ``(tail, head, weight)`` triples.
        points:
            Optional :class:`~repro.points.points.NodePointSet`.
        **kwargs:
            Forwarded to the constructor.

        Returns
        -------
        CompactDirectedDatabase
        """
        return cls(DiGraph.from_arcs(arcs), points, **kwargs)

    @classmethod
    def from_database(cls, db) -> "CompactDirectedDatabase":
        """Promote an existing disk-backed directed database.

        Parameters
        ----------
        db:
            A :class:`~repro.api_directed.DirectedGraphDatabase`; its
            two direction files are decoded once (uncharged) into the
            CSR arrays.

        Returns
        -------
        CompactDirectedDatabase
        """
        compact = cls.__new__(cls)
        compact.graph = db.graph
        compact.points = db.points
        compact.tracker = CostTracker()
        compact.store = CompactDiGraphStore.from_disk(db.disk)
        compact.view = DirectedView(compact.store, db.points, compact.tracker)
        compact.materialized = None
        compact.generation = 0
        return compact

    @property
    def disk(self):
        """The compact store (planner access to the locality rank)."""
        return self.store

    # -- materialization ----------------------------------------------------

    def materialize(self, capacity: int) -> None:
        """Precompute each node's forward K-NN list (directed all-NN).

        Parameters
        ----------
        capacity:
            List capacity ``K`` -- the largest ``k`` served by
            ``eager-m``.
        """
        lists = directed_all_nn(self.view, capacity)
        store = MemoryKnnStore(self.graph.num_nodes, capacity, lists)
        self.materialized = MaterializedKNN(store)

    # -- sessions -----------------------------------------------------------

    def read_clone(self) -> "CompactDirectedDatabase":
        """A read-only session sharing the CSR arrays (constant time).

        Returns
        -------
        CompactDirectedDatabase
        """
        clone = copy.copy(self)
        clone.tracker = CostTracker()
        clone.view = DirectedView(self.store, clone.points, clone.tracker)
        return clone

    # -- queries ------------------------------------------------------------

    def rknn(
        self,
        query: int,
        k: int = 1,
        method: str = "eager",
        exclude: AbstractSet[int] = _EMPTY,
    ) -> RnnResult:
        """Directed RkNN: points with ``d(p -> q) <= d(p -> p_k(p))``.

        Parameters
        ----------
        query:
            Query node id.
        k:
            Neighborhood size (>= 1).
        method:
            One of :data:`DIRECTED_METHODS`.
        exclude:
            Point ids hidden for the query's duration.

        Returns
        -------
        RnnResult
        """
        self._check(query, k, method)
        points, diff = self._measure(
            lambda: directed_rknn(
                self.view, query, k, method, self.materialized, exclude
            )
        )
        return RnnResult(tuple(points), diff.io_operations, diff.cpu_seconds, diff)

    # -- vectorized batch kernel --------------------------------------------

    #: Query kinds the vectorized batch kernel serves (engine dispatch).
    batch_kinds = ("rknn",)

    def batch_rknn(self, specs) -> tuple[RnnResult, ...]:
        """Answer a batch of directed RkNN specs in one vectorized pass.

        Candidate points expand *forward* over the out-arc CSR views
        (distances ``d(p -> .)``), and the membership test compares
        ``d(p -> q)`` against the point's k-th nearest competitor --
        the directed RkNN definition.  Answers are bitwise identical
        to looping :meth:`rknn` over the specs.

        Parameters
        ----------
        specs:
            :class:`~repro.engine.spec.QuerySpec` values of kind
            ``"rknn"`` (see :attr:`batch_kinds`).

        Returns
        -------
        tuple[RnnResult, ...]
            One result per spec, in order; without numpy the batch
            falls back to the scalar per-spec loop.
        """
        specs = list(specs)
        requests = []
        for spec in specs:
            if spec.kind != "rknn":
                raise QueryError(
                    f"batch_rknn serves kinds {self.batch_kinds}, "
                    f"got {spec.kind!r}"
                )
            self._check(spec.query, spec.k, spec.method)
            if spec.method == "eager-m" and spec.k > self.materialized.capacity:
                raise QueryError(
                    f"k={spec.k} exceeds the materialized capacity "
                    f"K={self.materialized.capacity}"
                )
            requests.append(
                BatchRequest((spec.query,), spec.k, frozenset(spec.exclude))
            )
        if not specs:
            return ()
        if not numpy_available():
            return tuple(self._scalar_batch(specs))
        return self._batch_measure(self.store.csr.out_flat(), requests, None)

    def _scalar_batch(self, specs):
        """Per-spec scalar loop: the numpy-free ``batch_rknn`` fallback."""
        results = []
        for spec in specs:
            points, diff = self._measure(
                lambda spec=spec: directed_rknn(
                    self.view, spec.query, spec.k, spec.method,
                    self.materialized, spec.exclude,
                )
            )
            results.append(
                RnnResult(tuple(points), diff.io_operations,
                          diff.cpu_seconds, diff)
            )
        return results

    def knn(
        self,
        query: int,
        k: int = 1,
        exclude: AbstractSet[int] = _EMPTY,
    ) -> KnnResult:
        """The k nearest points *from* ``query`` (forward distances).

        Parameters
        ----------
        query:
            Query node id.
        k:
            Number of neighbors requested.
        exclude:
            Point ids hidden for the query's duration.

        Returns
        -------
        KnnResult
        """
        neighbors, diff = self._measure(
            lambda: directed_knn(self.view, query, k, exclude)
        )
        return KnnResult(tuple(neighbors), diff.io_operations, diff.cpu_seconds, diff)

    def range_nn(
        self,
        query: int,
        k: int,
        radius: float,
        exclude: AbstractSet[int] = _EMPTY,
    ) -> KnnResult:
        """Forward range-NN from ``query`` with a strict ``radius``.

        Parameters
        ----------
        query:
            Query node id.
        k:
            Maximum number of points returned.
        radius:
            Strict bound on ``d(query -> x)``.
        exclude:
            Point ids hidden for the query's duration.

        Returns
        -------
        KnnResult
        """
        neighbors, diff = self._measure(
            lambda: directed_range_nn(self.view, query, k, radius, exclude)
        )
        return KnnResult(tuple(neighbors), diff.io_operations, diff.cpu_seconds, diff)

    # -- updates ------------------------------------------------------------

    def insert_point(self, pid: int, node: int) -> UpdateResult:
        """Add a data point, maintaining the materialized lists if any.

        Parameters
        ----------
        pid:
            New point id (must be unused).
        node:
            Node the point resides on.

        Returns
        -------
        UpdateResult
            The number of updated K-NN lists plus the cost record.
        """
        def run() -> int:
            self.points = self.points.with_point(pid, node)
            self.view = DirectedView(self.store, self.points, self.tracker)
            if self.materialized is not None:
                return directed_insert(self.view, self.materialized, pid, node)
            return 0

        affected, diff = self._measure(run)
        self.generation += 1
        return UpdateResult(affected, diff.io_operations, diff.cpu_seconds, diff)

    def delete_point(self, pid: int) -> UpdateResult:
        """Remove a data point, maintaining the materialized lists if any.

        Parameters
        ----------
        pid:
            Id of the point to remove.

        Returns
        -------
        UpdateResult
            The number of repaired K-NN lists plus the cost record.
        """
        def run() -> int:
            node = self.points.node_of(pid)
            self.points = self.points.without_point(pid)
            self.view = DirectedView(self.store, self.points, self.tracker)
            if self.materialized is not None:
                return directed_delete(self.view, self.materialized, pid, node)
            return 0

        affected, diff = self._measure(run)
        self.generation += 1
        return UpdateResult(affected, diff.io_operations, diff.cpu_seconds, diff)

    def _check(self, query: int, k: int, method: str) -> None:
        if method not in DIRECTED_METHODS:
            raise QueryError(
                f"unknown method {method!r}; choose one of {DIRECTED_METHODS}"
            )
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        if not isinstance(query, int):
            raise QueryError("directed networks take node-id queries")
        if not 0 <= query < self.graph.num_nodes:
            raise QueryError(f"query node {query} out of range")
        if method == "eager-m" and self.materialized is None:
            raise QueryError("method 'eager-m' needs materialize() first")
