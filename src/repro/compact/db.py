"""Compact database facades: the paper's queries over CSR flat arrays.

:class:`CompactDatabase` mirrors the restricted-network surface of
:class:`~repro.api.GraphDatabase` -- kNN, range-NN, monochromatic /
continuous / bichromatic RkNN, materialization, point updates, batch
serving -- over a :class:`~repro.compact.store.CompactGraphStore`.
The query algorithms are reused verbatim through the standard
:class:`~repro.core.network.NetworkView`, so answers are **identical**
to the disk-backed and sharded databases; what changes is the storage:
adjacency lives in three flat arrays, reads are free (no pages, no
buffer, no charged I/O) and a query's cost record counts only the
algorithmic work (heap traffic, nodes visited, probes, CPU).

:class:`CompactDirectedDatabase` is the directed counterpart
(:class:`~repro.api_directed.DirectedGraphDatabase` surface).

Because the store is immutable shared memory, :meth:`read_clone` is a
constant-time operation: a session is a new tracker over the *same*
arrays, which is what lets the batch engine hand every worker a
session without copying the graph (``backend="compact"`` mode).
"""

from __future__ import annotations

import copy
from typing import AbstractSet, Iterable, Sequence

from repro.compact.batch import (
    BatchRequest,
    batch_rknn_kernel,
    numpy_available,
)
from repro.compact.overlay import DeltaOp, DeltaOverlay, OverlayGraphStore
from repro.compact.store import (
    CompactDiGraphStore,
    CompactGraphStore,
    MemoryKnnStore,
)
from repro.core.bichromatic import (
    bichromatic_eager,
    bichromatic_eager_m,
    bichromatic_lazy,
)
from repro.core.continuous import validate_route
from repro.core.directed import (
    DirectedView,
    directed_all_nn,
    directed_delete,
    directed_insert,
    directed_knn,
    directed_range_nn,
    directed_rknn,
)
from repro.core.eager import eager_rknn, eager_rknn_route
from repro.core.eager_m import eager_m_rknn, eager_m_rknn_route
from repro.core.lazy import lazy_rknn, lazy_rknn_route
from repro.core.lazy_ep import lazy_ep_rknn, lazy_ep_rknn_route
from repro.core.materialize import MaterializedKNN, all_nn
from repro.core.network import NetworkView
from repro.core.nn import knn as restricted_knn
from repro.core.nn import range_nn as restricted_range_nn
from repro.core.result import KnnResult, OracleResult, RnnResult, UpdateResult
from repro.errors import QueryError
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph, edge_key
from repro.graph.partition import bfs_order, hilbert_order
from repro.oracle import (
    DEFAULT_LANDMARKS,
    DistanceOracle,
    LowerOnlyBounds,
    csr_landmark_distances,
    resolve_oracle_source,
    select_landmarks,
)
from repro.points.points import NodePointSet
from repro.storage.stats import CostTracker

_EMPTY: frozenset[int] = frozenset()

#: RkNN methods served by the compact undirected facade.
METHODS = ("eager", "lazy", "eager-m", "lazy-ep")

#: RkNN methods served by the compact directed facade.
DIRECTED_METHODS = ("eager", "eager-m", "naive")


def _require_node_points(points: NodePointSet | None, graph_nodes: int) -> NodePointSet:
    """Validate the restricted point set shared by both compact facades."""
    if points is None:
        points = NodePointSet({})
    if not isinstance(points, NodePointSet):
        raise QueryError(
            "the compact backend serves restricted networks "
            "(NodePointSet); edge-resident points are unsupported"
        )
    for pid, node in points.items():
        if not 0 <= node < graph_nodes:
            raise QueryError(f"point {pid} lies on unknown node {node}")
    return points


class _CompactMeasureMixin:
    """Measurement and session plumbing shared by both compact facades."""

    #: Engine-visible backend tag (see :func:`repro.engine.planner.backend_of`).
    backend = "compact"

    def _measure(self, func):
        before = self.tracker.snapshot()
        with self.tracker.time_block():
            outcome = func()
        diff = self.tracker.diff(before)
        return outcome, diff

    def _batch_measure(self, flat, requests, oracle):
        """Run the vectorized kernel under this facade's cost tracking.

        The kernel's per-request charges are merged into the facade
        tracker inside the timed block (exactly where the scalar path
        charges its work), then the measured CPU is apportioned evenly
        across the batch so per-query records stay comparable to
        scalar ones.
        """
        before = self.tracker.snapshot()
        with self.tracker.time_block():
            answers, charges = batch_rknn_kernel(
                flat, self.store.num_nodes, sorted(self.points.items()),
                requests, oracle=oracle,
            )
            for charge in charges:
                self.tracker.merge(charge)
        diff = self.tracker.diff(before)
        cpu_each = diff.cpu_seconds / max(1, len(requests))
        results = []
        for answer, charge in zip(answers, charges):
            charge.cpu_seconds = cpu_each
            results.append(
                RnnResult(tuple(answer), charge.io_operations, cpu_each, charge)
            )
        return tuple(results)

    # -- cost measurement ---------------------------------------------------

    def reset_stats(self) -> None:
        """Zero the counters."""
        self.tracker.reset()

    def clear_buffer(self) -> None:
        """No-op: the compact store has no buffer to cool.

        Kept so workloads written against the disk backends (which
        call ``clear_buffer`` between cold runs) run unchanged.
        """

    # -- serving ------------------------------------------------------------

    def engine(self, **kwargs) -> "QueryEngine":
        """A batch :class:`~repro.engine.engine.QueryEngine` over this
        database.

        Parameters
        ----------
        **kwargs:
            Forwarded to the engine constructor (``cache_entries``,
            ``calibrator``, ``plan``, ``batch_kernel``).  The engine
            detects the compact backend: worker sessions share these
            read-only arrays instead of cloning storage, and batched
            RkNN specs execute through the vectorized
            :meth:`~CompactDatabase.batch_rknn` kernel unless
            ``batch_kernel=False``.

        Returns
        -------
        QueryEngine
        """
        from repro.engine.engine import QueryEngine

        return QueryEngine(self, **kwargs)

    def query(self, statement):
        """Answer a qlang statement (or spec) on this database.

        See :meth:`repro.api.GraphDatabase.query`; on the compact
        backend, batchable sub-queries of compiled plans execute
        through the vectorized :meth:`batch_rknn` kernel.
        """
        from repro.qlang import execute

        return execute(self, statement)


class CompactDatabase(_CompactMeasureMixin):
    """Memory-resident CSR graph database answering (reverse) NN queries.

    Parameters
    ----------
    graph:
        The network.  It is flattened once into CSR arrays; queries
        never touch pages or a buffer.
    points:
        The data set P as a :class:`~repro.points.points.NodePointSet`
        (the compact backend serves restricted networks).  ``None``
        creates an empty set.
    node_order:
        Locality rank fed to the batch planner: ``"bfs"`` (default) or
        ``"hilbert"`` (requires coordinates).  Answers never depend on
        it; only batch execution order does.
    compact_threshold:
        When set, the delta overlay auto-compacts into a fresh base
        generation as soon as the pending log reaches this many
        operations (see :meth:`compact`); ``None`` (default) leaves
        compaction to explicit calls.
    """

    def __init__(
        self,
        graph: Graph,
        points: NodePointSet | None = None,
        *,
        node_order: str = "bfs",
        compact_threshold: int | None = None,
    ):
        points = _require_node_points(points, graph.num_nodes)
        points.validate(graph)
        self.graph = graph
        self.points = points
        self.tracker = CostTracker()
        if node_order == "bfs":
            order = bfs_order(graph)
        elif node_order == "hilbert":
            order = hilbert_order(graph)
        else:
            raise QueryError(f"unknown node_order {node_order!r}")
        self.store = CompactGraphStore(graph, order=order)
        self.view = NetworkView(self.store, points, self.tracker)
        self.materialized: MaterializedKNN | None = None
        #: Landmark distance oracle (see :meth:`build_oracle`); ``None``
        #: until built or opened.  The compact backend keeps it purely
        #: in memory (no pages to persist to).
        self.oracle: DistanceOracle | None = None
        self._ref_points: NodePointSet | None = None
        self._ref_view: NetworkView | None = None
        self._ref_materialized: MaterializedKNN | None = None
        #: Update generation: bumped by every point insertion/deletion
        #: (the query engine keys its result cache on this counter).
        self.generation = 0
        self._init_overlay(compact_threshold)

    def _init_overlay(self, compact_threshold: int | None) -> None:
        """Start the delta-overlay state at ``(base 0, epoch 0)``."""
        if compact_threshold is not None and compact_threshold < 1:
            raise QueryError(
                f"compact_threshold must be >= 1, got {compact_threshold}"
            )
        #: Append-only mutation log over the immutable base (see
        #: :mod:`repro.compact.overlay`).
        self.overlay = DeltaOverlay(self.points)
        #: Base generation: bumped only by :meth:`compact`.
        self.base_generation = 0
        #: Delta epoch: operations appended since the last compaction.
        self.delta_epoch = 0
        self.compact_threshold = compact_threshold
        self._base_store = self.store
        self._base_graph = self.graph
        self._live_weights: dict[tuple[int, int], float] | None = None
        self._time_travel = False

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int, float]],
        points: NodePointSet | None = None,
        **kwargs,
    ) -> "CompactDatabase":
        """Build a compact database straight from an edge list.

        Parameters
        ----------
        edges:
            ``(u, v, weight)`` triples.
        points:
            Optional :class:`~repro.points.points.NodePointSet`.
        **kwargs:
            Forwarded to the constructor (``node_order``).

        Returns
        -------
        CompactDatabase
        """
        return cls(Graph.from_edges(edges), points, **kwargs)

    @classmethod
    def from_database(cls, db) -> "CompactDatabase":
        """Promote an existing disk-backed database to the compact backend.

        Parameters
        ----------
        db:
            A :class:`~repro.api.GraphDatabase` with node-resident
            points.  Its serialized adjacency pages are decoded once
            (uncharged) into the CSR arrays; the point set is shared.

        Returns
        -------
        CompactDatabase
            A database answering every restricted query identically to
            ``db``, without page I/O.
        """
        points = _require_node_points(db.points, db.graph.num_nodes)
        compact = cls.__new__(cls)
        compact.graph = db.graph
        compact.points = points
        compact.tracker = CostTracker()
        compact.store = CompactGraphStore.from_disk(db.disk)
        compact.view = NetworkView(compact.store, points, compact.tracker)
        compact.materialized = None
        compact.oracle = None
        compact._ref_points = None
        compact._ref_view = None
        compact._ref_materialized = None
        compact.generation = 0
        compact._init_overlay(None)
        return compact

    # -- properties ---------------------------------------------------------

    @property
    def restricted(self) -> bool:
        """Always true: the compact backend stores points on nodes."""
        return True

    @property
    def stamp(self) -> tuple[int, int]:
        """The snapshot stamp ``(base_generation, delta_epoch)``.

        Names the exact database state a reader sees: the immutable
        CSR base plus a prefix of the append-only delta log.  The
        query engine keys its result cache on this two-part stamp, and
        the serve tier stamps every response with it, so appends
        invalidate exactly the entries they must (the epoch moves) and
        compactions -- which change no answers -- simply move cached
        traffic to a fresh key.
        """
        return (self.base_generation, self.delta_epoch)

    @property
    def needs_compaction(self) -> bool:
        """Whether the pending delta log has reached ``compact_threshold``."""
        return (
            self.compact_threshold is not None
            and self.overlay.epoch >= self.compact_threshold
        )

    @property
    def disk(self):
        """The compact store, exposed under the facade's disk slot.

        The engine's admission planner only needs ``disk.page_of``;
        the compact store serves the packing-order locality rank.
        """
        return self.store

    @property
    def reference_points(self) -> NodePointSet | None:
        """The attached bichromatic reference set Q (``None`` before
        :meth:`attach_reference`)."""
        return self._ref_points

    # -- materialization ----------------------------------------------------

    def materialize(self, capacity: int) -> None:
        """Precompute the K-NN lists of every node (paper Section 4.1).

        Parameters
        ----------
        capacity:
            The paper's ``K``: the largest ``k`` any future ``eager-m``
            query may use (data-distributed queries that exclude their
            own point effectively need ``K >= k + 1``).
        """
        lists = all_nn(
            self.view,
            capacity,
            [(node, pid, 0.0) for pid, node in self.points.items()],
        )
        store = MemoryKnnStore(self.graph.num_nodes, capacity, lists)
        self.materialized = MaterializedKNN(store)

    def materialize_reference(self, capacity: int) -> None:
        """Materialize K-NN lists over the attached reference set Q.

        Parameters
        ----------
        capacity:
            List capacity ``K`` for the reference materialization
            (required by bichromatic ``eager-m``).
        """
        if self._ref_view is None or self._ref_points is None:
            raise QueryError("attach_reference() before materialize_reference()")
        lists = all_nn(
            self._ref_view,
            capacity,
            [(node, pid, 0.0) for pid, node in self._ref_points.items()],
        )
        store = MemoryKnnStore(self.graph.num_nodes, capacity, lists)
        self._ref_materialized = MaterializedKNN(store)

    # -- bichromatic reference set ------------------------------------------

    def attach_reference(self, reference: NodePointSet) -> None:
        """Attach the reference set Q for bichromatic queries.

        Parameters
        ----------
        reference:
            A :class:`~repro.points.points.NodePointSet`; the facade's
            own points act as P.  Swapping Q bumps the generation so
            cached bichromatic answers invalidate.
        """
        if not isinstance(reference, NodePointSet):
            raise QueryError("the compact backend takes node-resident references")
        reference.validate(self.graph)
        self._ref_points = reference
        self._ref_view = NetworkView(
            self.store, reference, self.tracker, bounds=self.oracle
        )
        self._ref_materialized = None
        self.generation += 1
        # Swapping Q replaces an immutable input outside the delta log,
        # so it moves the *base* half of the snapshot stamp -- cached
        # bichromatic answers keyed on the old stamp become unreachable.
        self.base_generation += 1

    # -- landmark distance oracle -------------------------------------------

    def build_oracle(
        self,
        count: int = DEFAULT_LANDMARKS,
        *,
        seed: int = 0,
        strategy: str = "farthest",
    ) -> OracleResult:
        """Build and attach an ALT landmark distance oracle (CPU only).

        One single-source Dijkstra per landmark runs directly over the
        CSR flat arrays, with the relaxation step vectorized across
        each adjacency range -- no pages, no buffer, no charged I/O.
        The oracle stays in memory (the compact backend has no disk
        store to persist to; use :meth:`open_oracle` to share a label
        table built by a paged backend, or hand this oracle to one).

        Parameters
        ----------
        count:
            Number of landmarks ``L``.
        seed:
            Seeds the first landmark pick.
        strategy:
            ``"farthest"`` (default) or ``"random"``.

        Returns
        -------
        OracleResult
            The selected landmarks plus the CPU-only cost record.
        """
        self._require_base_network("build_oracle")

        def run():
            landmarks, tables = select_landmarks(
                lambda source: csr_landmark_distances(self.store.csr, source),
                self.graph.num_nodes,
                count,
                seed=seed,
                strategy=strategy,
            )
            return DistanceOracle(landmarks, tables)

        oracle, diff = self._measure(run)
        self.oracle = oracle
        self._attach_bounds(oracle)
        return OracleResult(
            oracle.landmarks, oracle.storage_entries, 0,
            diff.io_operations, diff.cpu_seconds, diff,
        )

    def open_oracle(self, source) -> OracleResult:
        """Attach an oracle built elsewhere (store or oracle object).

        Parameters
        ----------
        source:
            A persisted :class:`~repro.oracle.store.LandmarkStore`
            (decoded uncharged) or a ready
            :class:`~repro.oracle.oracle.DistanceOracle` built by any
            backend over the same graph.

        Returns
        -------
        OracleResult
            The attached landmarks (opening charges no I/O).
        """
        self._require_base_network("open_oracle")
        oracle, _, _ = resolve_oracle_source(source, self.graph.num_nodes)
        self.oracle = oracle
        self._attach_bounds(oracle)
        return OracleResult(oracle.landmarks, oracle.storage_entries, 0, 0, 0.0)

    def _attach_bounds(self, bounds) -> None:
        self.view.bounds = bounds
        if self._ref_view is not None:
            self._ref_view.bounds = bounds

    # -- snapshots ----------------------------------------------------------

    def save_snapshot(self, path):
        """Write the immutable base to a snapshot directory.

        Thin wrapper over :func:`repro.compact.snapshot.save_snapshot`
        (see there for the format and the clean-base requirement).

        Parameters
        ----------
        path:
            Snapshot directory (created if missing).

        Returns
        -------
        pathlib.Path
            The snapshot directory.
        """
        from repro.compact.snapshot import save_snapshot

        return save_snapshot(self, path)

    @classmethod
    def load_snapshot(
        cls, path, *, mmap: bool = True, compact_threshold=None
    ) -> "CompactDatabase":
        """Rebuild a database from a snapshot directory.

        With ``mmap=True`` (default) the CSR arrays are read-only
        memory maps: loading is constant-time and every process
        mapping the same snapshot shares physical pages -- the
        cross-process form of :meth:`read_clone`.

        Parameters
        ----------
        path:
            A directory written by :meth:`save_snapshot`.
        mmap:
            Map the arrays instead of copying them.
        compact_threshold:
            Auto-compaction trigger, as in the constructor.

        Returns
        -------
        CompactDatabase
            Answering exactly what the saved database answered,
            starting at stamp ``(0, 0)``.
        """
        from repro.compact.snapshot import load_snapshot

        return load_snapshot(
            path, mmap=mmap, compact_threshold=compact_threshold
        )

    # -- sessions -----------------------------------------------------------

    def read_clone(self) -> "CompactDatabase":
        """A read-only session **sharing** this database's CSR arrays.

        Returns
        -------
        CompactDatabase
            A constant-time clone: the flat arrays and materialized
            lists are shared read-only; only the tracker (and the
            views bound to it) is private, so concurrent sessions
            never race on counters.  Running updates through a clone
            is unsupported.
        """
        clone = copy.copy(self)
        clone.tracker = CostTracker()
        clone.view = NetworkView(
            self.store, clone.points, clone.tracker, bounds=self.oracle
        )
        if self._ref_points is not None:
            clone._ref_view = NetworkView(
                self.store, self._ref_points, clone.tracker, bounds=self.oracle
            )
        return clone

    def at_epoch(self, epoch: int) -> "CompactDatabase":
        """A pinned read-only session answering as of delta ``epoch``.

        Time travel within the current base generation: the session's
        point set is the delta log replayed to ``epoch``, its store is
        the base CSR arrays merged with the prefix's edge operations,
        and its :attr:`stamp` is ``(base_generation, epoch)``.  Because
        the base is immutable and the log append-only, the session
        stays valid while the head keeps mutating; it answers exactly
        what the head answered when its epoch *was* ``epoch``.
        Epochs older than the last compaction are gone -- compaction
        folds the log into a fresh base -- so ``epoch`` must be within
        ``0 .. delta_epoch``.

        Parameters
        ----------
        epoch:
            The delta epoch to pin (0 is the base itself).

        Returns
        -------
        CompactDatabase
            A read-only session: mutations and compaction raise
            :class:`~repro.errors.QueryError`.  Materialized lists and
            the bichromatic reference set are not carried (they track
            the head); the landmark oracle is kept whenever it is
            still admissible at ``epoch`` (no pending edge insertions
            in the prefix).
        """
        points = self.overlay.points_at(epoch)
        edge_ops = self.overlay.edge_ops_at(epoch)
        session = copy.copy(self)
        session.tracker = CostTracker()
        session.points = points
        session.graph = self._base_graph
        session.store = (
            self._base_store if not edge_ops
            else OverlayGraphStore(self._base_store, edge_ops)
        )
        session.materialized = None
        session._ref_points = None
        session._ref_view = None
        session._ref_materialized = None
        if any(op.kind == "insert-edge" for op in edge_ops):
            session.oracle = None
        session.view = NetworkView(
            session.store, points, session.tracker, bounds=session.oracle
        )
        session.delta_epoch = epoch
        session._time_travel = True
        return session

    # -- monochromatic RkNN -------------------------------------------------

    def rknn(
        self,
        query: int,
        k: int = 1,
        method: str = "eager",
        exclude: AbstractSet[int] = _EMPTY,
    ) -> RnnResult:
        """Reverse k-nearest-neighbor query (paper Sections 3-5).

        Parameters
        ----------
        query:
            Query node id.
        k:
            Neighborhood size (>= 1).
        method:
            One of :data:`METHODS`; ``eager-m`` needs
            :meth:`materialize` first.
        exclude:
            Point ids hidden for the query's duration.

        Returns
        -------
        RnnResult
            The reverse neighbors plus the cost record (zero I/O: the
            compact store never faults).
        """
        self._check_query(query, k, method)
        points, diff = self._measure(
            lambda: self._run_rknn([query], k, method, exclude, route=False)
        )
        return RnnResult(tuple(points), diff.io_operations, diff.cpu_seconds, diff)

    def continuous_rknn(
        self,
        route: Sequence[int],
        k: int = 1,
        method: str = "eager",
        exclude: AbstractSet[int] = _EMPTY,
    ) -> RnnResult:
        """Continuous RkNN along a route of nodes (Section 5.1).

        Parameters
        ----------
        route:
            A walk: consecutive nodes must share an edge.
        k / method / exclude:
            As in :meth:`rknn`.

        Returns
        -------
        RnnResult
        """
        validate_route(self.view, route)
        self._check_query(route[0], k, method)
        points, diff = self._measure(
            lambda: self._run_rknn(list(route), k, method, exclude, route=True)
        )
        return RnnResult(tuple(points), diff.io_operations, diff.cpu_seconds, diff)

    def _run_rknn(self, sources, k, method, exclude, *, route):
        if method == "eager":
            runner = eager_rknn_route if route else eager_rknn
            return runner(self.view, sources if route else sources[0], k, exclude)
        if method == "lazy":
            runner = lazy_rknn_route if route else lazy_rknn
            return runner(self.view, sources if route else sources[0], k, exclude)
        if method == "lazy-ep":
            runner = lazy_ep_rknn_route if route else lazy_ep_rknn
            return runner(self.view, sources if route else sources[0], k, exclude)
        mat = self._require_mat()
        runner = eager_m_rknn_route if route else eager_m_rknn
        return runner(self.view, mat, sources if route else sources[0], k, exclude)

    # -- vectorized batch kernel --------------------------------------------

    #: Query kinds the vectorized batch kernel serves (engine dispatch).
    batch_kinds = ("rknn", "continuous")

    def batch_rknn(self, specs) -> tuple[RnnResult, ...]:
        """Answer a batch of RkNN specs in one vectorized CSR pass.

        All candidate expansions run together as a bucketed
        multi-source Dijkstra over numpy views of the CSR arrays (see
        :mod:`repro.compact.batch`), with the attached landmark oracle
        -- when profitable -- filtering whole candidate rows up front.
        Answers are bitwise identical to looping the scalar facade
        over the specs; each spec is validated exactly as its scalar
        counterpart would validate it.

        Parameters
        ----------
        specs:
            :class:`~repro.engine.spec.QuerySpec` values of kind
            ``"rknn"`` or ``"continuous"`` (see :attr:`batch_kinds`).
            Methods are accepted for surface parity but do not change
            the vectorized plan (every method answers identically).

        Returns
        -------
        tuple[RnnResult, ...]
            One result per spec, in order, each carrying its share of
            the batch's charged cost (zero I/O; the per-query counters
            sum to the batch total).  Without numpy the batch falls
            back to the scalar per-spec loop, answers unchanged.
        """
        specs = list(specs)
        requests = []
        for spec in specs:
            if spec.kind == "rknn":
                self._check_query(spec.query, spec.k, spec.method)
                sources = (spec.query,)
            elif spec.kind == "continuous":
                validate_route(self.view, spec.route)
                self._check_query(spec.route[0], spec.k, spec.method)
                sources = tuple(spec.route)
            else:
                raise QueryError(
                    f"batch_rknn serves kinds {self.batch_kinds}, "
                    f"got {spec.kind!r}"
                )
            if spec.method == "eager-m":
                mat = self._require_mat()
                if spec.k > mat.capacity:
                    raise QueryError(
                        f"k={spec.k} exceeds the materialized capacity "
                        f"K={mat.capacity}"
                    )
            requests.append(
                BatchRequest(sources, spec.k, frozenset(spec.exclude))
            )
        if not specs:
            return ()
        # Pending *edge* deltas hide the store's raw CSR arrays (the
        # overlay shim has no ``csr``), so the batch falls back to the
        # scalar loop until compaction folds the log; point deltas keep
        # the kernel, since candidate placements are passed explicitly.
        csr = getattr(self.store, "csr", None)
        if csr is None or not numpy_available():
            return tuple(self._scalar_batch(specs))
        return self._batch_measure(csr.flat(), requests, self.oracle)

    def _scalar_batch(self, specs):
        """Per-spec scalar loop: the numpy-free ``batch_rknn`` fallback."""
        results = []
        for spec in specs:
            route = spec.kind == "continuous"
            sources = list(spec.route) if route else [spec.query]
            points, diff = self._measure(
                lambda sources=sources, spec=spec, route=route: self._run_rknn(
                    sources, spec.k, spec.method, spec.exclude, route=route
                )
            )
            results.append(
                RnnResult(tuple(points), diff.io_operations,
                          diff.cpu_seconds, diff)
            )
        return results

    # -- bichromatic RkNN ---------------------------------------------------

    def bichromatic_rknn(
        self,
        query: int,
        k: int = 1,
        method: str = "eager",
        exclude: AbstractSet[int] = _EMPTY,
    ) -> RnnResult:
        """Bichromatic RkNN against the attached reference set.

        Parameters
        ----------
        query:
            Query node id.
        k:
            Neighborhood size among *reference* points.
        method:
            ``"eager"``, ``"lazy"`` or ``"eager-m"`` (the latter needs
            :meth:`materialize_reference`).
        exclude:
            Reference point ids hidden for the query's duration.

        Returns
        -------
        RnnResult
            Database points that keep the query among their k nearest
            reference points.
        """
        if self._ref_view is None:
            raise QueryError("attach_reference() before bichromatic queries")
        self._check_query(query, k, method)

        def run() -> list[int]:
            if method == "eager":
                return bichromatic_eager(self.view, self._ref_view, query, k, exclude)
            if method == "lazy":
                return bichromatic_lazy(self.view, self._ref_view, query, k, exclude)
            if method == "eager-m":
                if self._ref_materialized is None:
                    raise QueryError(
                        "materialize_reference() before bichromatic eager-m"
                    )
                return bichromatic_eager_m(
                    self.view, self._ref_view, self._ref_materialized,
                    query, k, exclude,
                )
            raise QueryError(
                "bichromatic queries support methods 'eager', 'lazy', 'eager-m'"
            )

        points, diff = self._measure(run)
        return RnnResult(tuple(points), diff.io_operations, diff.cpu_seconds, diff)

    # -- plain NN queries ---------------------------------------------------

    def knn(
        self,
        query: int,
        k: int = 1,
        exclude: AbstractSet[int] = _EMPTY,
    ) -> KnnResult:
        """The k nearest data points of a node.

        Parameters
        ----------
        query:
            Query node id.
        k:
            Number of neighbors requested.
        exclude:
            Point ids hidden for the query's duration.

        Returns
        -------
        KnnResult
            ``(point id, network distance)`` pairs in ascending order.
        """
        def run() -> list[tuple[int, float]]:
            if not isinstance(query, int):
                raise QueryError("the compact backend takes node-id queries")
            return restricted_knn(self.view, query, k, exclude)

        neighbors, diff = self._measure(run)
        return KnnResult(tuple(neighbors), diff.io_operations, diff.cpu_seconds, diff)

    def range_nn(
        self,
        query: int,
        k: int,
        radius: float,
        exclude: AbstractSet[int] = _EMPTY,
    ) -> KnnResult:
        """``range-NN(n, k, e)``: k nearest points strictly within ``radius``.

        Parameters
        ----------
        query:
            Query node id.
        k:
            Maximum number of points returned.
        radius:
            Strict distance bound ``e``.
        exclude:
            Point ids hidden for the query's duration.

        Returns
        -------
        KnnResult
        """
        neighbors, diff = self._measure(
            lambda: restricted_range_nn(self.view, query, k, radius, exclude)
        )
        return KnnResult(tuple(neighbors), diff.io_operations, diff.cpu_seconds, diff)

    # -- updates ------------------------------------------------------------

    def insert_point(self, pid: int, node: int) -> UpdateResult:
        """Add a data point, maintaining the materialized lists if any.

        Parameters
        ----------
        pid:
            New point id (must be unused).
        node:
            Node the point resides on.

        Returns
        -------
        UpdateResult
            Number of updated K-NN lists plus the cost record.
        """
        self._require_writable()

        def run() -> int:
            if not isinstance(node, int):
                raise QueryError("the compact backend takes node-id locations")
            self.points = self.points.with_point(pid, node)
            self._rebuild_view()
            if self.materialized is not None:
                return self.materialized.insert(self.view, pid, [(node, 0.0)])
            return 0

        affected, diff = self._measure(run)
        self._log_op(DeltaOp("insert-point", pid=pid, node=node))
        return UpdateResult(affected, diff.io_operations, diff.cpu_seconds, diff)

    def delete_point(self, pid: int) -> UpdateResult:
        """Remove a data point, maintaining the materialized lists if any.

        Parameters
        ----------
        pid:
            Id of the point to remove.

        Returns
        -------
        UpdateResult
        """
        self._require_writable()

        def run() -> int:
            node = self.points.node_of(pid)
            self.points = self.points.without_point(pid)
            self._rebuild_view()
            if self.materialized is not None:
                return self.materialized.delete(self.view, pid, [(node, 0.0)])
            return 0

        affected, diff = self._measure(run)
        self._log_op(DeltaOp("delete-point", pid=pid))
        return UpdateResult(affected, diff.io_operations, diff.cpu_seconds, diff)

    def insert_edge(self, u: int, v: int, weight: float) -> UpdateResult:
        """Append an edge insertion to the delta overlay.

        The CSR base stays untouched: the new edge lives in the delta
        log, and the facade's store becomes (or remains) the merged
        overlay view, so pinned readers -- ``read_clone()`` sessions
        and :meth:`at_epoch` snapshots -- keep answering over the
        state they captured.  Edge deltas suspend the fast paths built
        on the raw arrays: the vectorized batch kernel falls back to
        the scalar loop, materialized K-NN lists are dropped (their
        distances are stale), and an attached landmark oracle is
        detached (an insertion can shrink distances below the base's
        lower bounds).  :meth:`compact` folds the log into a fresh
        base and restores them all.

        Parameters
        ----------
        u / v:
            Distinct endpoint node ids.
        weight:
            Positive traversal cost.

        Returns
        -------
        UpdateResult
            ``affected`` is the number of pending delta operations
            after the append (pre-compaction).
        """
        self._require_writable()

        def run() -> int:
            if not (0 <= u < self.graph.num_nodes
                    and 0 <= v < self.graph.num_nodes):
                raise QueryError(f"edge ({u}, {v}) references an unknown node")
            if u == v:
                raise QueryError(f"self-loop on node {u} is not allowed")
            if weight <= 0:
                raise QueryError(
                    f"edge ({u}, {v}) has non-positive weight {weight}"
                )
            if edge_key(u, v) in self._edge_weights():
                raise QueryError(f"edge ({u}, {v}) already exists")
            self._edge_weights()[edge_key(u, v)] = float(weight)
            self.materialized = None
            self._ref_materialized = None
            self.oracle = None
            return self.overlay.epoch + 1

        affected, diff = self._measure(run)
        self._log_op(DeltaOp("insert-edge", u=u, v=v, weight=float(weight)))
        return UpdateResult(affected, diff.io_operations, diff.cpu_seconds, diff)

    def delete_edge(self, u: int, v: int) -> UpdateResult:
        """Append an edge deletion to the delta overlay.

        Like :meth:`insert_edge`, the base arrays stay immutable and
        the deletion is replayed by the merged view; materialized
        lists are dropped and the batch kernel falls back to scalar
        until :meth:`compact`.  An attached landmark oracle is *kept*
        but degraded to lower bounds only
        (:class:`~repro.oracle.bounds.LowerOnlyBounds`): deleting an
        edge can only grow distances, so the base's lower bounds
        remain admissible, while its upper bounds -- witness paths
        that may have used the deleted edge -- do not.

        Parameters
        ----------
        u / v:
            Endpoints of a currently live edge.

        Returns
        -------
        UpdateResult
            ``affected`` is the number of pending delta operations
            after the append (pre-compaction).
        """
        self._require_writable()

        def run() -> int:
            if edge_key(u, v) not in self._edge_weights():
                raise QueryError(f"no edge between {u} and {v}")
            del self._edge_weights()[edge_key(u, v)]
            self.materialized = None
            self._ref_materialized = None
            if self.oracle is not None and not isinstance(
                    self.oracle, LowerOnlyBounds):
                self.oracle = LowerOnlyBounds(self.oracle)
            return self.overlay.epoch + 1

        affected, diff = self._measure(run)
        self._log_op(DeltaOp("delete-edge", u=u, v=v))
        return UpdateResult(affected, diff.io_operations, diff.cpu_seconds, diff)

    # -- compaction ----------------------------------------------------------

    def compact(self) -> UpdateResult:
        """Fold the delta log into a fresh immutable base generation.

        With pending edge operations the network is rebuilt -- the
        merged edge sequence (base order minus deletions, plus
        insertions in append order) becomes a new
        :class:`~repro.graph.graph.Graph` and a new CSR store, with
        adjacency order identical to the overlay view, so answers do
        not change by a single bit.  With a point-only log the arrays
        are reused as they are.  Either way the current point set
        becomes the new base, :attr:`base_generation` is bumped, the
        epoch resets to 0 and the vectorized batch kernel / oracle
        builds are available again.  The update :attr:`generation` is
        *not* bumped: compaction changes no observable state.  With an
        empty log this is a no-op (nothing folded, no bump), so forced
        compactions are idempotent.

        Returns
        -------
        UpdateResult
            ``affected`` is the number of delta operations folded.
        """
        self._require_writable()

        def run() -> int:
            folded = self.overlay.epoch
            if folded == 0:
                return 0
            if self.overlay.edge_op_count:
                graph = Graph(
                    self._base_graph.num_nodes,
                    self._merged_edges(),
                    coords=self._base_graph.coords,
                )
                self.graph = graph
                self._base_graph = graph
                self.store = CompactGraphStore(graph, order=bfs_order(graph))
            else:
                self.store = self._base_store
            self._base_store = self.store
            self.overlay = DeltaOverlay(self.points)
            self.base_generation += 1
            self.delta_epoch = 0
            self._live_weights = None
            self._rebuild_view()
            if self._ref_points is not None:
                self._ref_view = NetworkView(
                    self.store, self._ref_points, self.tracker,
                    bounds=self.oracle,
                )
            return folded

        folded, diff = self._measure(run)
        return UpdateResult(folded, diff.io_operations, diff.cpu_seconds, diff)

    def _merged_edges(self) -> list[tuple[int, int, float]]:
        """The head edge sequence: base order with the log replayed.

        A deletion removes its edge; a (re)insertion appends at the
        end -- exactly the order :class:`OverlayGraphStore` replays
        per node, so the rebuilt adjacency matches the overlay view.
        """
        merged = {
            edge_key(u, v): (u, v, w) for u, v, w in self._base_graph.edges()
        }
        for op in self.overlay.edge_ops_at(self.overlay.epoch):
            key = edge_key(op.u, op.v)
            if op.kind == "insert-edge":
                merged[key] = (op.u, op.v, float(op.weight))
            else:
                del merged[key]
        return list(merged.values())

    def _edge_weights(self) -> dict[tuple[int, int], float]:
        """The live (head) edge table, built lazily on first edge mutation."""
        if self._live_weights is None:
            live = {
                edge_key(u, v): w for u, v, w in self._base_graph.edges()
            }
            for op in self.overlay.edge_ops_at(self.overlay.epoch):
                key = edge_key(op.u, op.v)
                if op.kind == "insert-edge":
                    live[key] = float(op.weight)
                else:
                    del live[key]
            self._live_weights = live
        return self._live_weights

    def _log_op(self, op: DeltaOp) -> None:
        """Append a validated mutation: bump the epoch, rebind views,
        auto-compact past the threshold.  Never drains readers --
        pinned sessions keep their captured store/point references."""
        self.delta_epoch = self.overlay.append(op)
        if op.is_edge_op:
            self.store = OverlayGraphStore(
                self._base_store, self.overlay.edge_ops_at(self.delta_epoch)
            )
        self._rebuild_view()
        if self._ref_points is not None:
            self._ref_view = NetworkView(
                self.store, self._ref_points, self.tracker, bounds=self.oracle
            )
        self.generation += 1
        if self.needs_compaction:
            self.compact()

    def _require_writable(self) -> None:
        if self._time_travel:
            raise QueryError("time-travel sessions are read-only")

    def _rebuild_view(self) -> None:
        self.view = NetworkView(
            self.store, self.points, self.tracker, bounds=self.oracle
        )

    # -- validation helpers -------------------------------------------------

    def _require_mat(self) -> MaterializedKNN:
        if self.materialized is None:
            raise QueryError("method 'eager-m' needs materialize() first")
        return self.materialized

    def _require_base_network(self, what: str) -> None:
        if self.overlay.edge_op_count:
            raise QueryError(
                f"{what}() needs the CSR base: {self.overlay.edge_op_count} "
                "edge delta(s) pending -- compact() first"
            )

    def _check_query(self, query: int, k: int, method: str) -> None:
        if method not in METHODS:
            raise QueryError(f"unknown method {method!r}; choose one of {METHODS}")
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        if not isinstance(query, int):
            raise QueryError("the compact backend takes node-id queries")
        if not 0 <= query < self.graph.num_nodes:
            raise QueryError(f"query node {query} out of range")


class CompactDirectedDatabase(_CompactMeasureMixin):
    """Memory-resident CSR directed graph database answering RkNN queries.

    Mirrors :class:`~repro.api_directed.DirectedGraphDatabase` over a
    :class:`~repro.compact.store.CompactDiGraphStore`: backward
    expansions and forward probes read the two CSR direction arrays,
    free of page I/O.
    """

    def __init__(
        self,
        graph: DiGraph,
        points: NodePointSet | None = None,
    ):
        points = _require_node_points(points, graph.num_nodes)
        self.graph = graph
        self.points = points
        self.tracker = CostTracker()
        self.store = CompactDiGraphStore(graph)
        self.view = DirectedView(self.store, points, self.tracker)
        self.materialized: MaterializedKNN | None = None
        #: Update generation (see :class:`CompactDatabase`).
        self.generation = 0

    @classmethod
    def from_arcs(
        cls,
        arcs: Iterable[tuple[int, int, float]],
        points: NodePointSet | None = None,
        **kwargs,
    ) -> "CompactDirectedDatabase":
        """Build a compact directed database straight from an arc list.

        Parameters
        ----------
        arcs:
            ``(tail, head, weight)`` triples.
        points:
            Optional :class:`~repro.points.points.NodePointSet`.
        **kwargs:
            Forwarded to the constructor.

        Returns
        -------
        CompactDirectedDatabase
        """
        return cls(DiGraph.from_arcs(arcs), points, **kwargs)

    @classmethod
    def from_database(cls, db) -> "CompactDirectedDatabase":
        """Promote an existing disk-backed directed database.

        Parameters
        ----------
        db:
            A :class:`~repro.api_directed.DirectedGraphDatabase`; its
            two direction files are decoded once (uncharged) into the
            CSR arrays.

        Returns
        -------
        CompactDirectedDatabase
        """
        compact = cls.__new__(cls)
        compact.graph = db.graph
        compact.points = db.points
        compact.tracker = CostTracker()
        compact.store = CompactDiGraphStore.from_disk(db.disk)
        compact.view = DirectedView(compact.store, db.points, compact.tracker)
        compact.materialized = None
        compact.generation = 0
        return compact

    @property
    def disk(self):
        """The compact store (planner access to the locality rank)."""
        return self.store

    # -- materialization ----------------------------------------------------

    def materialize(self, capacity: int) -> None:
        """Precompute each node's forward K-NN list (directed all-NN).

        Parameters
        ----------
        capacity:
            List capacity ``K`` -- the largest ``k`` served by
            ``eager-m``.
        """
        lists = directed_all_nn(self.view, capacity)
        store = MemoryKnnStore(self.graph.num_nodes, capacity, lists)
        self.materialized = MaterializedKNN(store)

    # -- sessions -----------------------------------------------------------

    def read_clone(self) -> "CompactDirectedDatabase":
        """A read-only session sharing the CSR arrays (constant time).

        Returns
        -------
        CompactDirectedDatabase
        """
        clone = copy.copy(self)
        clone.tracker = CostTracker()
        clone.view = DirectedView(self.store, clone.points, clone.tracker)
        return clone

    # -- queries ------------------------------------------------------------

    def rknn(
        self,
        query: int,
        k: int = 1,
        method: str = "eager",
        exclude: AbstractSet[int] = _EMPTY,
    ) -> RnnResult:
        """Directed RkNN: points with ``d(p -> q) <= d(p -> p_k(p))``.

        Parameters
        ----------
        query:
            Query node id.
        k:
            Neighborhood size (>= 1).
        method:
            One of :data:`DIRECTED_METHODS`.
        exclude:
            Point ids hidden for the query's duration.

        Returns
        -------
        RnnResult
        """
        self._check(query, k, method)
        points, diff = self._measure(
            lambda: directed_rknn(
                self.view, query, k, method, self.materialized, exclude
            )
        )
        return RnnResult(tuple(points), diff.io_operations, diff.cpu_seconds, diff)

    # -- vectorized batch kernel --------------------------------------------

    #: Query kinds the vectorized batch kernel serves (engine dispatch).
    batch_kinds = ("rknn",)

    def batch_rknn(self, specs) -> tuple[RnnResult, ...]:
        """Answer a batch of directed RkNN specs in one vectorized pass.

        Candidate points expand *forward* over the out-arc CSR views
        (distances ``d(p -> .)``), and the membership test compares
        ``d(p -> q)`` against the point's k-th nearest competitor --
        the directed RkNN definition.  Answers are bitwise identical
        to looping :meth:`rknn` over the specs.

        Parameters
        ----------
        specs:
            :class:`~repro.engine.spec.QuerySpec` values of kind
            ``"rknn"`` (see :attr:`batch_kinds`).

        Returns
        -------
        tuple[RnnResult, ...]
            One result per spec, in order; without numpy the batch
            falls back to the scalar per-spec loop.
        """
        specs = list(specs)
        requests = []
        for spec in specs:
            if spec.kind != "rknn":
                raise QueryError(
                    f"batch_rknn serves kinds {self.batch_kinds}, "
                    f"got {spec.kind!r}"
                )
            self._check(spec.query, spec.k, spec.method)
            if spec.method == "eager-m" and spec.k > self.materialized.capacity:
                raise QueryError(
                    f"k={spec.k} exceeds the materialized capacity "
                    f"K={self.materialized.capacity}"
                )
            requests.append(
                BatchRequest((spec.query,), spec.k, frozenset(spec.exclude))
            )
        if not specs:
            return ()
        if not numpy_available():
            return tuple(self._scalar_batch(specs))
        return self._batch_measure(self.store.csr.out_flat(), requests, None)

    def _scalar_batch(self, specs):
        """Per-spec scalar loop: the numpy-free ``batch_rknn`` fallback."""
        results = []
        for spec in specs:
            points, diff = self._measure(
                lambda spec=spec: directed_rknn(
                    self.view, spec.query, spec.k, spec.method,
                    self.materialized, spec.exclude,
                )
            )
            results.append(
                RnnResult(tuple(points), diff.io_operations,
                          diff.cpu_seconds, diff)
            )
        return results

    def knn(
        self,
        query: int,
        k: int = 1,
        exclude: AbstractSet[int] = _EMPTY,
    ) -> KnnResult:
        """The k nearest points *from* ``query`` (forward distances).

        Parameters
        ----------
        query:
            Query node id.
        k:
            Number of neighbors requested.
        exclude:
            Point ids hidden for the query's duration.

        Returns
        -------
        KnnResult
        """
        neighbors, diff = self._measure(
            lambda: directed_knn(self.view, query, k, exclude)
        )
        return KnnResult(tuple(neighbors), diff.io_operations, diff.cpu_seconds, diff)

    def range_nn(
        self,
        query: int,
        k: int,
        radius: float,
        exclude: AbstractSet[int] = _EMPTY,
    ) -> KnnResult:
        """Forward range-NN from ``query`` with a strict ``radius``.

        Parameters
        ----------
        query:
            Query node id.
        k:
            Maximum number of points returned.
        radius:
            Strict bound on ``d(query -> x)``.
        exclude:
            Point ids hidden for the query's duration.

        Returns
        -------
        KnnResult
        """
        neighbors, diff = self._measure(
            lambda: directed_range_nn(self.view, query, k, radius, exclude)
        )
        return KnnResult(tuple(neighbors), diff.io_operations, diff.cpu_seconds, diff)

    # -- updates ------------------------------------------------------------

    def insert_point(self, pid: int, node: int) -> UpdateResult:
        """Add a data point, maintaining the materialized lists if any.

        Parameters
        ----------
        pid:
            New point id (must be unused).
        node:
            Node the point resides on.

        Returns
        -------
        UpdateResult
            The number of updated K-NN lists plus the cost record.
        """
        def run() -> int:
            self.points = self.points.with_point(pid, node)
            self.view = DirectedView(self.store, self.points, self.tracker)
            if self.materialized is not None:
                return directed_insert(self.view, self.materialized, pid, node)
            return 0

        affected, diff = self._measure(run)
        self.generation += 1
        return UpdateResult(affected, diff.io_operations, diff.cpu_seconds, diff)

    def delete_point(self, pid: int) -> UpdateResult:
        """Remove a data point, maintaining the materialized lists if any.

        Parameters
        ----------
        pid:
            Id of the point to remove.

        Returns
        -------
        UpdateResult
            The number of repaired K-NN lists plus the cost record.
        """
        def run() -> int:
            node = self.points.node_of(pid)
            self.points = self.points.without_point(pid)
            self.view = DirectedView(self.store, self.points, self.tracker)
            if self.materialized is not None:
                return directed_delete(self.view, self.materialized, pid, node)
            return 0

        affected, diff = self._measure(run)
        self.generation += 1
        return UpdateResult(affected, diff.io_operations, diff.cpu_seconds, diff)

    def _check(self, query: int, k: int, method: str) -> None:
        if method not in DIRECTED_METHODS:
            raise QueryError(
                f"unknown method {method!r}; choose one of {DIRECTED_METHODS}"
            )
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        if not isinstance(query, int):
            raise QueryError("directed networks take node-id queries")
        if not 0 <= query < self.graph.num_nodes:
            raise QueryError(f"query node {query} out of range")
        if method == "eager-m" and self.materialized is None:
            raise QueryError("method 'eager-m' needs materialize() first")
