"""Vectorized batch RkNN kernel over the compact CSR flat arrays.

The scalar paper algorithms answer one query at a time through Python
heap loops.  This module answers a whole *batch* of monochromatic
RkNN / continuous-RkNN queries in one numpy pass over the CSR arrays:

1. **Candidate rows.**  Every data point is one row of a dense
   ``(P, |V|)`` distance table.  All P single-source expansions run
   together as a *bucketed* Dijkstra: per round, every frontier entry
   whose tentative distance lies below ``row_min + min_edge_weight``
   is final (no shorter path can still reach it, since every further
   relaxation adds at least the minimum edge weight to a label that is
   at least ``row_min``), so the whole bucket settles at once and the
   relaxation of all settled entries is one vectorized scatter-min.
2. **Adaptive bound.**  A row stops expanding once its ``m``-th
   nearest competitor settles, where ``m = max(k_b + |exclude_b|)``
   over the queries the row is still a candidate for -- the same
   radius the scalar ``verify`` proves sufficient: a point's k-th
   nearest competitor is never farther than its ``m``-th nearest
   point, so every distance a membership decision reads is settled
   (exact) by then.
3. **Membership.**  Point ``p`` is a reverse neighbor of query ``q``
   iff fewer than ``k`` non-excluded competitors are *strictly*
   closer to ``p`` than ``q`` -- equivalently, with ``t`` the k-th
   smallest competitor label, iff ``d(p, q) <= t``.  All distances in
   the comparison come from ``p``'s own row, exactly as the scalar
   ``verify`` compares only within one expansion, so the answers are
   bitwise identical to the scalar backends (same floating-point path
   folds, same exact ``<=``).
4. **Oracle filtering.**  With a landmark oracle attached, whole rows
   are dropped before the expansion when the ALT bounds prove them
   non-members of *every* query in the batch, under the same
   ``EPS``-band guard as :mod:`repro.oracle.prune` -- answer
   preserving by the same argument, and gated by the same
   :func:`~repro.oracle.prune.scan_is_profitable` cost rule.

The kernel charges the scalar cost model honestly: every settled
``(row, node)`` entry counts one node visit, one heap pop and the
node's degree in expanded edges (the charge the scalar Dijkstra makes
when it de-heaps that node), every label improvement one heap push,
every evaluated ``(query, candidate)`` pair one verification, and the
compact backend's I/O stays zero.  Shared expansion work is split
evenly across the batch so the per-query cost records sum exactly to
the work performed.

The same kernel serves directed databases: rows expand over the
*out*-arc CSR (distances ``d(p -> .)``), and the membership test reads
``d(p -> q)`` against the competitor labels ``d(p -> x)`` -- the
directed RkNN definition.

numpy is optional: :func:`numpy_available` reports whether the
vectorized path can run, and the facades fall back to the scalar
per-spec loop when it cannot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.numeric import EPS
from repro.oracle.prune import scan_is_profitable
from repro.storage.stats import CostTracker

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _np = None

#: Counter fields of the shared expansion work, split evenly across
#: the batch so per-query records sum to the total charged.
_SHARED_FIELDS = ("nodes_visited", "edges_expanded", "heap_pushes", "heap_pops")


def numpy_available() -> bool:
    """Whether the vectorized kernel can run (numpy is importable)."""
    return _np is not None


@dataclass(frozen=True)
class BatchRequest:
    """One RkNN membership question posed to the batch kernel.

    Attributes
    ----------
    sources:
        The query's source nodes: ``(query,)`` for a point query, the
        route's nodes for a continuous query (a point qualifies
        against its *nearest* route node, matching the scalar route
        semantics).
    k:
        Neighborhood size (>= 1).
    exclude:
        Point ids hidden for this request's duration.
    """

    sources: tuple[int, ...]
    k: int
    exclude: frozenset[int]


def _split_shared(charges: list[CostTracker], totals: dict) -> None:
    """Distribute the batch's shared expansion counters evenly.

    Division remainders go to the leading requests, so the per-request
    records always sum exactly to the charged totals (the cost model
    never undercounts).
    """
    count = len(charges)
    for name, total in totals.items():
        base, extra = divmod(int(total), count)
        for i, charge in enumerate(charges):
            setattr(charge, name,
                    getattr(charge, name) + base + (1 if i < extra else 0))


def _oracle_row_filter(oracle, pnodes, pids, requests, eligible, charges):
    """Drop candidate rows the ALT bounds prove non-members everywhere.

    For each still-eligible ``(row, request)`` pair the filter compares
    the oracle's *lower* bound on ``d(p, q)`` against the inflated
    ``k``-th smallest *upper* bound on the competitor distances: when
    the lower bound clears it beyond the ``EPS`` tie band, the true
    distance provably exceeds the true membership threshold and the
    pair is pruned (charged as ``oracle_prunes``).  Mirrors the scalar
    verification short-circuit of :mod:`repro.oracle.prune`, batched.
    """
    np = _np
    labels = oracle.labels_matrix()
    point_labels = labels[pnodes]  # (P, L)
    num_points = len(pids)
    with np.errstate(invalid="ignore"):
        # competitor upper bounds: min over landmarks of label sums
        ub = (point_labels[:, None, :] + point_labels[None, :, :]).min(axis=2)
    ub[pnodes[:, None] == pnodes[None, :]] = 0.0  # same node: exact zero
    for b, request in enumerate(requests):
        lower = None
        for source in request.sources:
            with np.errstate(invalid="ignore"):
                gap = np.abs(point_labels - labels[source])
            gap = np.where(np.isnan(gap), 0.0, gap)  # both ends unreachable
            bound = gap.max(axis=1)
            bound[pnodes == source] = 0.0
            lower = bound if lower is None else np.minimum(lower, bound)
        competitors = ub.copy()
        competitors[np.arange(num_points), np.arange(num_points)] = np.inf
        excluded = [c for c, pid in enumerate(pids) if pid in request.exclude]
        if excluded:
            competitors[:, excluded] = np.inf
        if request.k <= num_points:
            threshold = np.partition(
                competitors, request.k - 1, axis=1)[:, request.k - 1]
        else:
            threshold = np.full(num_points, np.inf)
        inflated = np.where(np.isinf(threshold), threshold,
                            threshold + EPS * np.abs(threshold))
        # strictly_less(inflated, lower), vectorized with exact inf rules
        margin = EPS * np.maximum(np.abs(inflated), np.abs(lower))
        either_inf = np.isinf(inflated) | np.isinf(lower)
        prune = np.where(either_inf, inflated < lower,
                         inflated < lower - margin)
        prune &= eligible[:, b]
        pruned = int(prune.sum())
        if pruned:
            charges[b].oracle_prunes += pruned
            eligible[prune, b] = False


def batch_rknn_kernel(
    flat,
    num_nodes: int,
    point_items: Sequence[tuple[int, int]],
    requests: Sequence[BatchRequest],
    oracle=None,
) -> tuple[list[list[int]], list[CostTracker]]:
    """Answer a batch of RkNN membership questions in one numpy pass.

    Parameters
    ----------
    flat:
        ``(offsets, targets, weights)`` numpy views of the CSR arrays
        the candidate expansions traverse (the undirected adjacency,
        or the out-arc triple of a directed kernel).
    num_nodes:
        Node count ``|V|`` of the network.
    point_items:
        ``(pid, node)`` pairs of the data set P, in a deterministic
        order (answers are returned as sorted pid lists regardless).
    requests:
        The batched :class:`BatchRequest` values.
    oracle:
        Optional :class:`~repro.oracle.oracle.DistanceOracle`; consulted
        for row pre-filtering only when
        :func:`~repro.oracle.prune.scan_is_profitable` says the scan
        pays for itself.

    Returns
    -------
    (answers, charges)
        Per-request sorted point-id lists, plus one
        :class:`~repro.storage.stats.CostTracker` per request whose
        fields sum to the batch's total charged work.
    """
    np = _np
    batch = len(requests)
    answers: list[list[int]] = [[] for _ in requests]
    charges = [CostTracker() for _ in requests]
    num_points = len(point_items)
    if num_points == 0 or batch == 0:
        return answers, charges

    offsets, targets, weights = flat
    pids = [pid for pid, _ in point_items]
    pnodes = np.array([node for _, node in point_items], dtype=np.int64)
    pts_on_node = np.bincount(pnodes, minlength=num_nodes)

    # (row, request) candidacy: a point is never a member of a query
    # that excludes it, and the oracle may retire more pairs up front
    eligible = np.ones((num_points, batch), dtype=bool)
    for b, request in enumerate(requests):
        if request.exclude:
            rows = [r for r, pid in enumerate(pids) if pid in request.exclude]
            if rows:
                eligible[rows, b] = False
    if oracle is not None and scan_is_profitable(
            num_points, oracle.num_landmarks, num_nodes):
        _oracle_row_filter(oracle, pnodes, pids, requests, eligible, charges)

    # per-row expansion budget: settle the m nearest competitors, with
    # m covering every query the row is still a candidate for
    needed = np.array([request.k + len(request.exclude)
                       for request in requests], dtype=np.int64)
    m_rows = np.where(eligible, needed[None, :], 0).max(axis=1)

    dist = np.full((num_points, num_nodes), np.inf)
    settled = np.zeros((num_points, num_nodes), dtype=bool)
    active = np.zeros((num_points, num_nodes), dtype=bool)
    live = np.nonzero(m_rows > 0)[0]
    dist[live, pnodes[live]] = 0.0
    active[live, pnodes[live]] = True
    bound = np.full(num_points, np.inf)
    competitor_count = np.zeros(num_points, dtype=np.int64)
    min_weight = float(weights.min()) if weights.size else np.inf

    totals = {name: 0 for name in _SHARED_FIELDS}
    flat_dist = dist.reshape(-1)
    flat_active = active.reshape(-1)
    while True:
        frontier = np.where(active & (dist <= bound[:, None]), dist, np.inf)
        row_min = frontier.min(axis=1)
        if not np.isfinite(row_min).any():
            break
        # one bucket per row: entries below row_min + min_weight are
        # final -- any future relaxation lands at or above that line
        process = frontier < (row_min + min_weight)[:, None]
        rows_idx, nodes_idx = np.nonzero(process)
        settled[rows_idx, nodes_idx] = True
        active[rows_idx, nodes_idx] = False
        source_dist = dist[rows_idx, nodes_idx]

        increments = (pts_on_node[nodes_idx]
                      - (nodes_idx == pnodes[rows_idx]).astype(np.int64))
        if increments.any():
            np.add.at(competitor_count, rows_idx, increments)
        newly = (competitor_count >= m_rows) & np.isinf(bound) & (m_rows > 0)
        for row in np.nonzero(newly)[0]:
            competitors = dist[row, pnodes].copy()
            competitors[row] = np.inf
            m = int(m_rows[row])
            bound[row] = np.partition(competitors, m - 1)[m - 1]

        degrees = offsets[nodes_idx + 1] - offsets[nodes_idx]
        totals["nodes_visited"] += len(nodes_idx)
        totals["heap_pops"] += len(nodes_idx)
        total_edges = int(degrees.sum())
        totals["edges_expanded"] += total_edges
        if total_edges == 0:
            continue
        edge_index = (np.repeat(offsets[nodes_idx], degrees)
                      + np.arange(total_edges)
                      - np.repeat(np.cumsum(degrees) - degrees, degrees))
        heads = targets[edge_index]
        candidate = np.repeat(source_dist, degrees) + weights[edge_index]
        row_rep = np.repeat(rows_idx, degrees)
        # settled labels are final, and labels beyond the row's bound
        # can never decide a membership -- both relaxations are skipped
        keep = (candidate <= bound[row_rep]) & ~settled[row_rep, heads]
        if not keep.any():
            continue
        linear = row_rep[keep] * num_nodes + heads[keep]
        values = candidate[keep]
        unique, inverse = np.unique(linear, return_inverse=True)
        best = np.full(len(unique), np.inf)
        np.minimum.at(best, inverse, values)
        improved = best < flat_dist[unique]
        winners = unique[improved]
        flat_dist[winners] = best[improved]
        flat_active[winners] = True
        totals["heap_pushes"] += int(improved.sum())

    point_labels = dist[:, pnodes]  # (P, P): d(p, x) for every pair
    diagonal = np.arange(num_points)
    for b, request in enumerate(requests):
        candidates = eligible[:, b]
        charges[b].verifications += int(candidates.sum())
        sources = np.fromiter(request.sources, dtype=np.int64)
        query_dist = dist[:, sources].min(axis=1)
        competitors = point_labels.copy()
        competitors[diagonal, diagonal] = np.inf
        excluded = [c for c, pid in enumerate(pids) if pid in request.exclude]
        if excluded:
            competitors[:, excluded] = np.inf
        if request.k <= num_points:
            threshold = np.partition(
                competitors, request.k - 1, axis=1)[:, request.k - 1]
        else:
            threshold = np.full(num_points, np.inf)
        member = candidates & np.isfinite(query_dist) & (query_dist <= threshold)
        answers[b] = sorted(pids[row] for row in np.nonzero(member)[0])

    _split_shared(charges, totals)
    return answers, charges
