"""CSR (compressed-sparse-row) flat-array graph kernels.

The disk-resident stores spend most of a query decoding adjacency
pages and maintaining LRU bookkeeping; :class:`CSRGraph` and
:class:`CSRDiGraph` strip both away.  A CSR kernel is three flat
arrays built exactly once:

* ``offsets`` -- ``num_nodes + 1`` integers; node ``v``'s adjacency
  occupies the half-open range ``offsets[v]:offsets[v + 1]``;
* ``targets`` -- the neighbor ids of every node, concatenated in the
  node's original adjacency order;
* ``weights`` -- the matching edge weights (C doubles).

Adjacency order is preserved verbatim from the source graph, so every
downstream algorithm (whose heap tie-breaking depends on neighbor
order) produces results byte-identical to the disk-backed stores.

Kernels build from an in-memory :class:`~repro.graph.graph.Graph` /
:class:`~repro.graph.digraph.DiGraph`, or load straight from an
existing :class:`~repro.storage.disk.DiskGraph` /
:class:`~repro.storage.disk_directed.DiskDiGraph` (decoding each page
once, outside the charged read path).  ``to_graph`` / ``to_digraph``
reconstruct an in-memory graph whose adjacency lists match the kernel
entry for entry -- the round trip the property suite leans on.
"""

from __future__ import annotations

import os
import struct
import sys
from array import array
from collections import deque
from typing import Sequence

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph

AdjacencyLists = Sequence[Sequence[tuple[int, float]]]

# On-disk flat-array format (little-endian throughout):
#   header   -- magic ``RCSR`` + uint16 version + uint16 kind
#   counts   -- int64 num_nodes + int64 entry count(s)
#   arrays   -- the CSR triple(s) exactly as held in memory:
#               offsets (num_nodes + 1 int64), targets (int64),
#               weights (float64); a digraph writes the out-triple
#               then the in-triple.
# Both header shapes are 8-byte multiples (24 bytes undirected, 32
# directed), so every array starts 8-byte aligned and ``load(...,
# mmap=True)`` can hand out typed views over one shared mapping.
_MAGIC = b"RCSR"
_FORMAT_VERSION = 1
_KIND_GRAPH = 1
_KIND_DIGRAPH = 2
_HEADER = struct.Struct("<4sHH")


def _le_bytes(arr) -> bytes:
    """Serialize one flat array as little-endian raw bytes."""
    if sys.byteorder == "big":  # pragma: no cover - little-endian CI
        import numpy as np

        return np.asarray(arr).byteswap().tobytes()
    return arr.tobytes()


def _read_exact(handle, count: int, what: str) -> bytes:
    """Read exactly ``count`` bytes or reject the file as truncated."""
    data = handle.read(count)
    if len(data) != count:
        raise GraphError(f"CSR file truncated while reading {what}")
    return data


def _read_preamble(handle, expected_kind: int, counts: int) -> tuple[int, ...]:
    """Validate the header and return the int64 count fields."""
    magic, version, kind = _HEADER.unpack(
        _read_exact(handle, _HEADER.size, "header")
    )
    if magic != _MAGIC:
        raise GraphError("not a CSR file (bad magic)")
    if version != _FORMAT_VERSION:
        raise GraphError(f"unsupported CSR format version {version}")
    if kind != expected_kind:
        raise GraphError("CSR file holds the other graph kind")
    return struct.unpack(
        f"<{counts}q", _read_exact(handle, 8 * counts, "counts")
    )


def _mmap_views(path, preamble_size: int, sizes: Sequence[tuple[int, str]]):
    """Typed read-only views over one shared mapping of ``path``.

    One ``numpy.memmap`` of the whole file backs every view, so N
    worker processes loading the same snapshot share a single set of
    page-cache pages -- the zero-copy cross-process ``read_clone``.
    ``sizes`` pairs each array's element count with its dtype, in file
    order; the byte offsets all stay 8-aligned by construction.
    """
    import numpy as np

    raw = np.memmap(path, dtype=np.uint8, mode="r")
    expected = preamble_size + sum(count * 8 for count, _ in sizes)
    if raw.size < expected:
        raise GraphError("CSR file truncated while mapping arrays")
    views = []
    cursor = preamble_size
    for count, dtype in sizes:
        stop = cursor + count * 8
        views.append(raw[cursor:stop].view(dtype))
        cursor = stop
    return views


def _load_arrays(handle, sizes: Sequence[tuple[int, str]]) -> list[array]:
    """Read the flat arrays into stdlib ``array`` storage (copying)."""
    out = []
    for count, dtype in sizes:
        typecode = "q" if dtype == "<i8" else "d"
        arr = array(typecode)
        arr.frombytes(_read_exact(handle, count * 8, "arrays"))
        if sys.byteorder == "big":  # pragma: no cover - little-endian CI
            arr.byteswap()
        out.append(arr)
    return out


def _numpy_views(offsets: array, targets: array, weights: array):
    """Zero-copy numpy views over one CSR triple (buffer protocol).

    The stdlib arrays remain the storage; the views only reinterpret
    their memory, so building them costs neither time nor space.  A
    missing numpy raises :class:`~repro.errors.GraphError` -- callers
    gate the vectorized path on
    :func:`repro.compact.batch.numpy_available` first.
    """
    try:
        import numpy as np
    except ImportError as exc:  # pragma: no cover - numpy ships in CI
        raise GraphError(
            "numpy is required for the vectorized CSR views"
        ) from exc
    def view(arr, dtype):
        if isinstance(arr, np.ndarray):  # mmap-loaded storage is already a view
            return arr
        return np.frombuffer(arr, dtype=dtype)

    return (
        view(offsets, np.int64),
        view(targets, np.int64),
        view(weights, np.float64),
    )


def _build_arrays(
    lists: AdjacencyLists,
) -> tuple[array, array, array]:
    """Flatten adjacency lists into ``(offsets, targets, weights)``.

    Validates what the in-memory graphs also reject -- self-loops,
    parallel edges (a neighbor repeated within one list), out-of-range
    targets and non-positive weights -- so a kernel can never hold a
    network the rest of the system would refuse.
    """
    num_nodes = len(lists)
    offsets = array("q", [0] * (num_nodes + 1))
    targets = array("q")
    weights = array("d")
    for node, adjacency in enumerate(lists):
        seen: set[int] = set()
        for nbr, weight in adjacency:
            if not 0 <= nbr < num_nodes:
                raise GraphError(
                    f"edge ({node}, {nbr}) references an unknown node"
                )
            if nbr == node:
                raise GraphError(f"self-loop on node {node} is not allowed")
            if nbr in seen:
                raise GraphError(f"duplicate edge ({node}, {nbr})")
            if weight <= 0:
                raise GraphError(
                    f"edge ({node}, {nbr}) has non-positive weight {weight}"
                )
            seen.add(nbr)
            targets.append(nbr)
            weights.append(float(weight))
        offsets[node + 1] = len(targets)
    return offsets, targets, weights


def _merge_edge_order(
    lists: list[list[tuple[int, float]]],
) -> list[tuple[int, int, float]]:
    """Recover one global edge sequence consistent with every local order.

    Re-adding the returned edges to a fresh graph appends each node's
    incident edges in exactly the order the adjacency lists dictate,
    reproducing the lists entry for entry.  An edge is emitted only
    when it sits at the front of *both* endpoints' pending lists.  The
    source lists came from a real graph, so a consistent order exists;
    inconsistent hand-built input is rejected.
    """
    num_nodes = len(lists)
    pending: list[deque] = [deque() for _ in range(num_nodes)]
    remaining = 0
    for node, adjacency in enumerate(lists):
        for nbr, weight in adjacency:
            pending[node].append((nbr, weight))
            remaining += 1
    if remaining % 2:
        raise GraphError("undirected adjacency lists are not symmetric")
    remaining //= 2

    def ready(u: int) -> tuple[int, int, float] | None:
        """The edge at the front of ``u``'s list, if its partner agrees."""
        if not pending[u]:
            return None
        v, weight = pending[u][0]
        if not pending[v]:
            return None
        mirror, mirror_weight = pending[v][0]
        if mirror != u or mirror_weight != weight:
            return None
        return (u, v, weight)

    edges: list[tuple[int, int, float]] = []
    frontier = deque(range(num_nodes))
    queued = [True] * num_nodes
    while frontier:
        u = frontier.popleft()
        queued[u] = False
        while True:
            edge = ready(u)
            if edge is None:
                break
            _, v, weight = edge
            pending[u].popleft()
            pending[v].popleft()
            edges.append(edge)
            if not queued[v]:
                frontier.append(v)
                queued[v] = True
    if len(edges) != remaining:
        raise GraphError("adjacency lists admit no consistent edge order")
    return edges


def _merge_arc_order(
    out_lists: list[list[tuple[int, float]]],
    in_lists: list[list[tuple[int, float]]],
) -> list[tuple[int, int, float]]:
    """Directed counterpart of :func:`_merge_edge_order`.

    An arc ``u -> v`` is emitted when it heads both ``u``'s pending
    out-list and ``v``'s pending in-list.
    """
    num_nodes = len(out_lists)
    out_pending: list[deque] = [deque(lst) for lst in out_lists]
    in_pending: list[deque] = [deque(lst) for lst in in_lists]
    total = sum(len(lst) for lst in out_lists)
    if total != sum(len(lst) for lst in in_lists):
        raise GraphError("out- and in-adjacency lists disagree on arc count")

    def ready(u: int) -> tuple[int, int, float] | None:
        if not out_pending[u]:
            return None
        v, weight = out_pending[u][0]
        if not in_pending[v]:
            return None
        tail, mirror_weight = in_pending[v][0]
        if tail != u or mirror_weight != weight:
            return None
        return (u, v, weight)

    arcs: list[tuple[int, int, float]] = []
    frontier = deque(range(num_nodes))
    queued = [True] * num_nodes
    while frontier:
        u = frontier.popleft()
        queued[u] = False
        while True:
            arc = ready(u)
            if arc is None:
                break
            _, v, weight = arc
            out_pending[u].popleft()
            in_pending[v].popleft()
            arcs.append(arc)
            # advancing v's in-list may unblock the arc now heading it,
            # whose readiness is only ever checked from its *tail*
            if in_pending[v]:
                tail = in_pending[v][0][0]
                if not queued[tail]:
                    frontier.append(tail)
                    queued[tail] = True
    if len(arcs) != total:
        raise GraphError("adjacency lists admit no consistent arc order")
    return arcs


class CSRGraph:
    """Flat-array adjacency of an undirected network.

    Build once with :meth:`from_graph` (or :meth:`from_disk_graph`),
    then read adjacency through :meth:`neighbors`.  The arrays are the
    storage; each node's ``(neighbor, weight)`` tuple is assembled at
    most once and memoized, so steady-state reads are a list index --
    no page decode, no buffer bookkeeping, no charged I/O.
    """

    def __init__(self, lists: AdjacencyLists):
        self.num_nodes = len(lists)
        if self.num_nodes == 0:
            raise GraphError("graph needs at least one node, got 0")
        self.offsets, self.targets, self.weights = _build_arrays(lists)
        self._check_symmetry(lists)
        self.num_edges = len(self.targets) // 2
        self._memo: list[tuple[tuple[int, float], ...] | None]
        self._memo = [None] * self.num_nodes
        self._flat = None

    @staticmethod
    def _check_symmetry(lists: AdjacencyLists) -> None:
        """Reject lists no undirected graph could produce: every entry
        ``(v, w)`` on ``u`` must be mirrored by ``(u, w)`` on ``v``."""
        weights: dict[tuple[int, int], float] = {}
        for node, adjacency in enumerate(lists):
            for nbr, weight in adjacency:
                weights[(node, nbr)] = float(weight)
        for (u, v), weight in weights.items():
            if weights.get((v, u)) != weight:
                raise GraphError(
                    "undirected adjacency lists are not symmetric: "
                    f"edge ({u}, {v}) has no matching mirror entry"
                )

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_graph(cls, graph: Graph) -> "CSRGraph":
        """Flatten an in-memory :class:`~repro.graph.graph.Graph`."""
        return cls([graph.neighbors(v) for v in range(graph.num_nodes)])

    @classmethod
    def from_disk_graph(cls, disk) -> "CSRGraph":
        """Load from an existing :class:`~repro.storage.disk.DiskGraph`.

        Decodes every serialized page exactly once, outside the charged
        read path (construction is not a query), and preserves the
        on-disk adjacency order.
        """
        from repro.storage.page import decode_adjacency_page

        lists: list[tuple[tuple[int, float], ...]] = [()] * disk.num_nodes
        for payload in disk._pages:
            for record in decode_adjacency_page(payload):
                lists[record.node] = record.neighbors
        return cls(lists)

    @classmethod
    def _from_arrays(cls, num_nodes: int, offsets, targets, weights):
        """Adopt already-validated flat arrays without re-flattening.

        The loader's entry point: the arrays came from a file this
        module wrote (or a mapping of one), so the O(E) list
        validation and symmetry check are skipped -- loading stays
        constant-time regardless of graph size.
        """
        kernel = cls.__new__(cls)
        kernel.num_nodes = num_nodes
        kernel.offsets = offsets
        kernel.targets = targets
        kernel.weights = weights
        kernel.num_edges = len(targets) // 2
        kernel._memo = [None] * num_nodes
        kernel._flat = None
        return kernel

    # -- persistence -----------------------------------------------------

    def save(self, path) -> None:
        """Write the kernel to ``path`` in the flat on-disk format.

        The three arrays are dumped verbatim after a 24-byte preamble,
        so the file *is* the in-memory layout -- ``load`` round-trips
        bitwise, with or without ``mmap``.
        """
        with open(os.fspath(path), "wb") as handle:
            handle.write(_HEADER.pack(_MAGIC, _FORMAT_VERSION, _KIND_GRAPH))
            handle.write(struct.pack("<2q", self.num_nodes, len(self.targets)))
            handle.write(_le_bytes(self.offsets))
            handle.write(_le_bytes(self.targets))
            handle.write(_le_bytes(self.weights))

    @classmethod
    def load(cls, path, *, mmap: bool = False) -> "CSRGraph":
        """Read a kernel previously written by :meth:`save`.

        With ``mmap=False`` the arrays are copied into process-private
        stdlib storage.  With ``mmap=True`` they are read-only
        ``numpy.memmap`` views over one shared mapping of the file:
        loading is constant-time and N processes mapping the same
        snapshot share physical pages, which is what makes
        ``CompactDatabase.read_clone`` zero-copy across processes.
        """
        path = os.fspath(path)
        with open(path, "rb") as handle:
            num_nodes, num_entries = _read_preamble(handle, _KIND_GRAPH, 2)
            if num_nodes < 1 or num_entries < 0 or num_entries % 2:
                raise GraphError("CSR file header holds impossible counts")
            sizes = [
                (num_nodes + 1, "<i8"),
                (num_entries, "<i8"),
                (num_entries, "<f8"),
            ]
            if mmap:
                arrays = _mmap_views(path, _HEADER.size + 16, sizes)
            else:
                arrays = _load_arrays(handle, sizes)
        offsets, targets, weights = arrays
        if offsets[0] != 0 or offsets[num_nodes] != num_entries:
            raise GraphError("CSR file offsets disagree with its header")
        return cls._from_arrays(num_nodes, offsets, targets, weights)

    # -- reads -----------------------------------------------------------

    def degree(self, node: int) -> int:
        """Neighbor count of ``node``."""
        return int(self.offsets[node + 1] - self.offsets[node])

    def neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        """``(neighbor, weight)`` pairs of ``node`` in original order."""
        memo = self._memo[node]
        if memo is None:
            lo, hi = int(self.offsets[node]), int(self.offsets[node + 1])
            # .tolist() yields plain int/float for stdlib and numpy
            # storage alike -- downstream JSON encoding and dict keys
            # must never see numpy scalars
            memo = tuple(
                zip(self.targets[lo:hi].tolist(), self.weights[lo:hi].tolist())
            )
            self._memo[node] = memo
        return memo

    def flat(self):
        """Numpy views of ``(offsets, targets, weights)`` (zero-copy).

        The views share the kernel's memory through the buffer
        protocol -- nothing is copied and the arrays stay the single
        source of truth.  Built once and memoized; the vectorized
        batch kernel (:mod:`repro.compact.batch`) traverses adjacency
        through them.  Raises :class:`~repro.errors.GraphError` when
        numpy is unavailable (callers gate on
        :func:`repro.compact.batch.numpy_available`).
        """
        if self._flat is None:
            self._flat = _numpy_views(self.offsets, self.targets, self.weights)
        return self._flat

    @property
    def nbytes(self) -> int:
        """Bytes held by the three flat arrays."""
        return (
            self.offsets.itemsize * len(self.offsets)
            + self.targets.itemsize * len(self.targets)
            + self.weights.itemsize * len(self.weights)
        )

    # -- round trip ------------------------------------------------------

    def to_graph(self) -> Graph:
        """An in-memory graph whose adjacency lists match this kernel."""
        lists = [list(self.neighbors(v)) for v in range(self.num_nodes)]
        edges = _merge_edge_order(lists)
        return Graph(self.num_nodes, edges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRGraph(|V|={self.num_nodes}, |E|={self.num_edges})"


class CSRDiGraph:
    """Flat-array forward + backward adjacency of a directed network.

    Two CSR triples over the same node set: ``out`` holds every node's
    outgoing arcs, ``in`` its incoming arcs, both in the original
    adjacency order so backward expansions and forward probes match
    the paged files arc for arc.
    """

    def __init__(self, out_lists: AdjacencyLists, in_lists: AdjacencyLists):
        if len(out_lists) != len(in_lists):
            raise GraphError("out- and in-lists cover different node counts")
        self.num_nodes = len(out_lists)
        if self.num_nodes == 0:
            raise GraphError("graph needs at least one node, got 0")
        self._out_offsets, self._out_targets, self._out_weights = _build_arrays(
            out_lists
        )
        self._in_offsets, self._in_targets, self._in_weights = _build_arrays(
            in_lists
        )
        if len(self._out_targets) != len(self._in_targets):
            raise GraphError("out- and in-adjacency lists disagree on arc count")
        self.num_arcs = len(self._out_targets)
        self._out_memo: list[tuple[tuple[int, float], ...] | None]
        self._out_memo = [None] * self.num_nodes
        self._in_memo: list[tuple[tuple[int, float], ...] | None]
        self._in_memo = [None] * self.num_nodes
        self._out_flat = None
        self._in_flat = None

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_digraph(cls, graph: DiGraph) -> "CSRDiGraph":
        """Flatten an in-memory :class:`~repro.graph.digraph.DiGraph`."""
        nodes = range(graph.num_nodes)
        return cls(
            [graph.out_neighbors(v) for v in nodes],
            [graph.in_neighbors(v) for v in nodes],
        )

    @classmethod
    def from_disk_digraph(cls, disk) -> "CSRDiGraph":
        """Load from an existing
        :class:`~repro.storage.disk_directed.DiskDiGraph`, decoding each
        direction file's pages once, uncharged."""
        from repro.storage.page import decode_adjacency_page

        def decode(direction) -> list[tuple[tuple[int, float], ...]]:
            lists: list[tuple[tuple[int, float], ...]] = [()] * disk.num_nodes
            for payload in direction._pages:
                for record in decode_adjacency_page(payload):
                    lists[record.node] = record.neighbors
            return lists

        return cls(decode(disk._forward), decode(disk._backward))

    @classmethod
    def _from_arrays(cls, num_nodes: int, out_arrays, in_arrays):
        """Adopt already-validated out/in triples without re-flattening."""
        kernel = cls.__new__(cls)
        kernel.num_nodes = num_nodes
        (
            kernel._out_offsets, kernel._out_targets, kernel._out_weights,
        ) = out_arrays
        kernel._in_offsets, kernel._in_targets, kernel._in_weights = in_arrays
        kernel.num_arcs = len(kernel._out_targets)
        kernel._out_memo = [None] * num_nodes
        kernel._in_memo = [None] * num_nodes
        kernel._out_flat = None
        kernel._in_flat = None
        return kernel

    # -- persistence -----------------------------------------------------

    def save(self, path) -> None:
        """Write both direction triples to ``path`` (out first, then in)."""
        with open(os.fspath(path), "wb") as handle:
            handle.write(_HEADER.pack(_MAGIC, _FORMAT_VERSION, _KIND_DIGRAPH))
            handle.write(
                struct.pack(
                    "<3q",
                    self.num_nodes,
                    len(self._out_targets),
                    len(self._in_targets),
                )
            )
            for arr in (
                self._out_offsets, self._out_targets, self._out_weights,
                self._in_offsets, self._in_targets, self._in_weights,
            ):
                handle.write(_le_bytes(arr))

    @classmethod
    def load(cls, path, *, mmap: bool = False) -> "CSRDiGraph":
        """Read a kernel previously written by :meth:`save`.

        Same contract as :meth:`CSRGraph.load`: ``mmap=False`` copies
        into stdlib arrays, ``mmap=True`` maps read-only shared views.
        """
        path = os.fspath(path)
        with open(path, "rb") as handle:
            num_nodes, out_arcs, in_arcs = _read_preamble(
                handle, _KIND_DIGRAPH, 3
            )
            if num_nodes < 1 or out_arcs < 0 or out_arcs != in_arcs:
                raise GraphError("CSR file header holds impossible counts")
            sizes = [
                (num_nodes + 1, "<i8"),
                (out_arcs, "<i8"),
                (out_arcs, "<f8"),
                (num_nodes + 1, "<i8"),
                (in_arcs, "<i8"),
                (in_arcs, "<f8"),
            ]
            if mmap:
                arrays = _mmap_views(path, _HEADER.size + 24, sizes)
            else:
                arrays = _load_arrays(handle, sizes)
        for offsets, arcs in ((arrays[0], out_arcs), (arrays[3], in_arcs)):
            if offsets[0] != 0 or offsets[num_nodes] != arcs:
                raise GraphError("CSR file offsets disagree with its header")
        return cls._from_arrays(num_nodes, arrays[:3], arrays[3:])

    # -- reads -----------------------------------------------------------

    def out_neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        """Outgoing ``(head, weight)`` arcs of ``node``, original order."""
        memo = self._out_memo[node]
        if memo is None:
            lo = int(self._out_offsets[node])
            hi = int(self._out_offsets[node + 1])
            memo = tuple(
                zip(
                    self._out_targets[lo:hi].tolist(),
                    self._out_weights[lo:hi].tolist(),
                )
            )
            self._out_memo[node] = memo
        return memo

    def in_neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        """Incoming ``(tail, weight)`` arcs of ``node``, original order."""
        memo = self._in_memo[node]
        if memo is None:
            lo = int(self._in_offsets[node])
            hi = int(self._in_offsets[node + 1])
            memo = tuple(
                zip(
                    self._in_targets[lo:hi].tolist(),
                    self._in_weights[lo:hi].tolist(),
                )
            )
            self._in_memo[node] = memo
        return memo

    def out_flat(self):
        """Numpy views of the out-arc ``(offsets, targets, weights)``.

        Zero-copy and memoized, like :meth:`CSRGraph.flat`; the
        directed batch kernel expands candidate points forward over
        these views (distances ``d(p -> .)``).
        """
        if self._out_flat is None:
            self._out_flat = _numpy_views(
                self._out_offsets, self._out_targets, self._out_weights
            )
        return self._out_flat

    def in_flat(self):
        """Numpy views of the in-arc ``(offsets, targets, weights)``.

        Zero-copy and memoized; the backward counterpart of
        :meth:`out_flat`.
        """
        if self._in_flat is None:
            self._in_flat = _numpy_views(
                self._in_offsets, self._in_targets, self._in_weights
            )
        return self._in_flat

    @property
    def nbytes(self) -> int:
        """Bytes held by the six flat arrays."""
        arrays = (
            self._out_offsets, self._out_targets, self._out_weights,
            self._in_offsets, self._in_targets, self._in_weights,
        )
        return sum(a.itemsize * len(a) for a in arrays)

    # -- round trip ------------------------------------------------------

    def to_digraph(self) -> DiGraph:
        """An in-memory digraph whose adjacency matches this kernel."""
        out_lists = [list(self.out_neighbors(v)) for v in range(self.num_nodes)]
        in_lists = [list(self.in_neighbors(v)) for v in range(self.num_nodes)]
        arcs = _merge_arc_order(out_lists, in_lists)
        return DiGraph(self.num_nodes, arcs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRDiGraph(|V|={self.num_nodes}, |A|={self.num_arcs})"
