"""Topology-aware ordering of nodes for page packing.

The paper stores adjacency lists of *neighboring* nodes in the same
disk page, "grouped together using the method of [2]" (Chan & Zhang,
"Finding Shortest Paths in Large Network Systems").  The essential
property is locality: a network expansion that moves from a node to its
neighbors should mostly stay within buffered pages.

Two orderings are provided:

* :func:`bfs_order` -- breadth-first order from a (low-degree) seed,
  good for arbitrary graphs and the default packer;
* :func:`hilbert_order` -- Hilbert space-filling-curve order for graphs
  with coordinates (road networks), which clusters spatially.

:func:`partition_nodes` turns an ordering plus per-node record sizes
into the page assignment consumed by the disk stores.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.storage.page import DEFAULT_PAGE_SIZE, pack_records


def bfs_order(graph: Graph, seed: int | None = None) -> list[int]:
    """All nodes in breadth-first order (multi-source if disconnected).

    Consecutive nodes in the order are topologically close, so packing
    them into the same page gives the locality the paper's storage
    scheme relies on.
    """
    n = graph.num_nodes
    if seed is None:
        seed = min(range(n), key=graph.degree)
    if not 0 <= seed < n:
        raise GraphError(f"seed node {seed} out of range")
    order: list[int] = []
    seen = [False] * n
    starts = [seed] + [v for v in range(n) if v != seed]
    for start in starts:
        if seen[start]:
            continue
        seen[start] = True
        queue = deque([start])
        while queue:
            node = queue.popleft()
            order.append(node)
            for nbr, _ in graph.neighbors(node):
                if not seen[nbr]:
                    seen[nbr] = True
                    queue.append(nbr)
    return order


def hilbert_order(graph: Graph, bits: int = 16) -> list[int]:
    """All nodes ordered along a Hilbert curve over their coordinates.

    Requires ``graph.coords``; raises :class:`GraphError` otherwise.
    """
    if graph.coords is None:
        raise GraphError("hilbert_order requires node coordinates")
    xs = [c[0] for c in graph.coords]
    ys = [c[1] for c in graph.coords]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    side = (1 << bits) - 1
    span_x = (max_x - min_x) or 1.0
    span_y = (max_y - min_y) or 1.0

    def key(node: int) -> int:
        x = int((xs[node] - min_x) / span_x * side)
        y = int((ys[node] - min_y) / span_y * side)
        return _hilbert_d(bits, x, y)

    return sorted(graph.nodes(), key=key)


def _hilbert_d(bits: int, x: int, y: int) -> int:
    """Distance along a Hilbert curve of order ``bits`` for cell (x, y)."""
    rx = ry = 0
    d = 0
    s = 1 << (bits - 1)
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # rotate quadrant
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s //= 2
    return d


def partition_nodes(
    order: Sequence[int],
    record_sizes: Sequence[int],
    page_size: int = DEFAULT_PAGE_SIZE,
) -> list[list[int]]:
    """Group nodes (in the given order) into pages by record size.

    Returns a list of pages, each a list of node ids.  ``record_sizes``
    is indexed by node id.
    """
    sizes_in_order = [record_sizes[node] for node in order]
    pages = pack_records(sizes_in_order, page_size=page_size)
    return [[order[i] for i in page] for page in pages]
