"""Directed weighted graphs (paper Section 7's future-work direction).

The paper's algorithms assume undirected networks; Section 7 names
directed networks (e.g. road maps with one-way streets) as the natural
extension, where "the neighborhood relation is asymmetric, complicating
query processing".  :class:`DiGraph` is the directed counterpart of
:class:`~repro.graph.graph.Graph`: it keeps both out- and in-adjacency
so the directed RkNN algorithms (:mod:`repro.core.directed`) can expand
*backwards* from the query (enumerating nodes by their distance **to**
the query) while probing *forwards* (distances **from** a node to the
data points).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Sequence

from repro.errors import GraphError

Arc = tuple[int, int, float]


class DiGraph:
    """Directed graph over dense integer node ids with positive weights."""

    def __init__(self, num_nodes: int, arcs: Iterable[Arc]):
        if num_nodes <= 0:
            raise GraphError(f"graph needs at least one node, got {num_nodes}")
        self._num_nodes = num_nodes
        self._out: list[list[tuple[int, float]]] = [[] for _ in range(num_nodes)]
        self._in: list[list[tuple[int, float]]] = [[] for _ in range(num_nodes)]
        self._weights: dict[tuple[int, int], float] = {}
        for u, v, w in arcs:
            self._add_arc(u, v, w)

    def _add_arc(self, u: int, v: int, w: float) -> None:
        if not (0 <= u < self._num_nodes and 0 <= v < self._num_nodes):
            raise GraphError(f"arc ({u}, {v}) references an unknown node")
        if u == v:
            raise GraphError(f"self-loop on node {u} is not allowed")
        if w <= 0:
            raise GraphError(f"arc ({u}, {v}) has non-positive weight {w}")
        if (u, v) in self._weights:
            raise GraphError(f"duplicate arc ({u}, {v})")
        self._weights[(u, v)] = float(w)
        self._out[u].append((v, float(w)))
        self._in[v].append((u, float(w)))

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_arcs(cls, arcs: Iterable[Arc], num_nodes: int | None = None) -> "DiGraph":
        """Build from an arc list, inferring the node count if needed."""
        arcs = list(arcs)
        if num_nodes is None:
            if not arcs:
                raise GraphError("cannot infer node count from an empty arc list")
            num_nodes = 1 + max(max(u, v) for u, v, _ in arcs)
        return cls(num_nodes, arcs)

    @classmethod
    def from_undirected(cls, graph) -> "DiGraph":
        """Symmetric closure of an undirected :class:`Graph`."""
        arcs: list[Arc] = []
        for u, v, w in graph.edges():
            arcs.append((u, v, w))
            arcs.append((v, u, w))
        return cls(graph.num_nodes, arcs)

    # -- accessors ----------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_arcs(self) -> int:
        return len(self._weights)

    def nodes(self) -> range:
        return range(self._num_nodes)

    def out_neighbors(self, node: int) -> Sequence[tuple[int, float]]:
        """Arcs leaving ``node`` as ``(head, weight)`` pairs."""
        return self._out[node]

    def in_neighbors(self, node: int) -> Sequence[tuple[int, float]]:
        """Arcs entering ``node`` as ``(tail, weight)`` pairs."""
        return self._in[node]

    def out_degree(self, node: int) -> int:
        return len(self._out[node])

    def in_degree(self, node: int) -> int:
        return len(self._in[node])

    def has_arc(self, u: int, v: int) -> bool:
        return (u, v) in self._weights

    def weight(self, u: int, v: int) -> float:
        """Weight of arc ``u -> v``; raises :class:`GraphError` if absent."""
        try:
            return self._weights[(u, v)]
        except KeyError:
            raise GraphError(f"no arc from {u} to {v}") from None

    def arcs(self) -> Iterator[Arc]:
        for (u, v), w in self._weights.items():
            yield u, v, w

    def reverse(self) -> "DiGraph":
        """A copy with every arc reversed."""
        return DiGraph(self._num_nodes, [(v, u, w) for u, v, w in self.arcs()])

    # -- connectivity ----------------------------------------------------------

    def reachable_from(self, source: int) -> set[int]:
        """Nodes reachable from ``source`` along arc directions."""
        seen = {source}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for nbr, _ in self._out[node]:
                if nbr not in seen:
                    seen.add(nbr)
                    queue.append(nbr)
        return seen

    def is_strongly_connected(self) -> bool:
        """Whether every node can reach every other node."""
        if self._num_nodes == 1:
            return True
        if len(self.reachable_from(0)) != self._num_nodes:
            return False
        return len(self.reverse().reachable_from(0)) == self._num_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiGraph(|V|={self.num_nodes}, |A|={self.num_arcs})"
