"""In-memory weighted undirected graph.

The paper models the network as ``G = (V, E, W)`` with positive edge
weights and symmetric traversal cost (Section 1).  :class:`Graph` is the
canonical in-memory representation; the disk-resident representation
used by the query algorithms is built from it by
:class:`repro.storage.disk.DiskGraph`.

Nodes are dense integer ids ``0 .. num_nodes - 1``; this matches the
paper's storage scheme (an index on node id) and keeps adjacency
look-ups O(1).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Sequence

from repro.errors import GraphError

Edge = tuple[int, int, float]


def edge_key(u: int, v: int) -> tuple[int, int]:
    """Canonical (lexicographic) form of an undirected edge.

    The paper assigns a point on edge ``n_i n_j`` to the ordering with
    ``i < j`` (Section 5.2); the same convention is used everywhere an
    edge is used as a dictionary key.
    """
    return (u, v) if u <= v else (v, u)


class Graph:
    """Undirected weighted graph over dense integer node ids."""

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[Edge],
        coords: Sequence[tuple[float, float]] | None = None,
    ):
        if num_nodes <= 0:
            raise GraphError(f"graph needs at least one node, got {num_nodes}")
        self._num_nodes = num_nodes
        self._adj: list[list[tuple[int, float]]] = [[] for _ in range(num_nodes)]
        self._weights: dict[tuple[int, int], float] = {}
        for u, v, w in edges:
            self._add_edge(u, v, w)
        if coords is not None and len(coords) != num_nodes:
            raise GraphError(
                f"coords has {len(coords)} entries for {num_nodes} nodes"
            )
        self.coords = list(coords) if coords is not None else None

    # -- construction ---------------------------------------------------

    def _add_edge(self, u: int, v: int, w: float) -> None:
        if not (0 <= u < self._num_nodes and 0 <= v < self._num_nodes):
            raise GraphError(f"edge ({u}, {v}) references an unknown node")
        if u == v:
            raise GraphError(f"self-loop on node {u} is not allowed")
        if w <= 0:
            raise GraphError(f"edge ({u}, {v}) has non-positive weight {w}")
        key = edge_key(u, v)
        if key in self._weights:
            raise GraphError(f"duplicate edge ({u}, {v})")
        self._weights[key] = float(w)
        self._adj[u].append((v, float(w)))
        self._adj[v].append((u, float(w)))

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        num_nodes: int | None = None,
        coords: Sequence[tuple[float, float]] | None = None,
    ) -> "Graph":
        """Build a graph from an edge list, inferring the node count."""
        edges = list(edges)
        if num_nodes is None:
            if not edges:
                raise GraphError("cannot infer node count from an empty edge list")
            num_nodes = 1 + max(max(u, v) for u, v, _ in edges)
        return cls(num_nodes, edges, coords=coords)

    # -- basic accessors -------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        return len(self._weights)

    def nodes(self) -> range:
        return range(self._num_nodes)

    def neighbors(self, node: int) -> Sequence[tuple[int, float]]:
        """Neighbor/weight pairs of ``node``."""
        return self._adj[node]

    def degree(self, node: int) -> int:
        return len(self._adj[node])

    def average_degree(self) -> float:
        """Average node degree (2|E| / |V|)."""
        return 2.0 * self.num_edges / self.num_nodes

    def has_edge(self, u: int, v: int) -> bool:
        return edge_key(u, v) in self._weights

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)``; raises :class:`GraphError` if absent."""
        try:
            return self._weights[edge_key(u, v)]
        except KeyError:
            raise GraphError(f"no edge between {u} and {v}") from None

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges once each, in canonical ``(u < v)`` form."""
        for (u, v), w in self._weights.items():
            yield u, v, w

    # -- connectivity ----------------------------------------------------

    def connected_components(self) -> list[list[int]]:
        """All connected components, each as a sorted node list."""
        seen = [False] * self._num_nodes
        components = []
        for start in range(self._num_nodes):
            if seen[start]:
                continue
            component = []
            queue = deque([start])
            seen[start] = True
            while queue:
                node = queue.popleft()
                component.append(node)
                for nbr, _ in self._adj[node]:
                    if not seen[nbr]:
                        seen[nbr] = True
                        queue.append(nbr)
            components.append(sorted(component))
        return components

    def is_connected(self) -> bool:
        return len(self.connected_components()) == 1

    def largest_component_subgraph(self) -> tuple["Graph", list[int]]:
        """The induced subgraph of the largest component, with relabeled ids.

        Returns ``(subgraph, old_ids)`` where ``old_ids[new] = old``.
        Mirrors the paper's "cleaning" of the DBLP and San Francisco
        data sets into a single connected network (Section 6).
        """
        component = max(self.connected_components(), key=len)
        old_ids = list(component)
        remap = {old: new for new, old in enumerate(old_ids)}
        edges = [
            (remap[u], remap[v], w)
            for u, v, w in self.edges()
            if u in remap and v in remap
        ]
        coords = None
        if self.coords is not None:
            coords = [self.coords[old] for old in old_ids]
        return Graph(len(old_ids), edges, coords=coords), old_ids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(|V|={self.num_nodes}, |E|={self.num_edges})"
