"""Incremental construction of :class:`~repro.graph.graph.Graph` objects.

Dataset generators and file loaders produce edges one at a time, often
with duplicates (e.g. two authors who co-sign several papers).  The
builder deduplicates, optionally keeps the minimum weight for parallel
edges, and can relabel sparse external ids into the dense internal ids
the engine requires.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.errors import GraphError
from repro.graph.graph import Graph, edge_key


class GraphBuilder:
    """Accumulates edges and produces a validated :class:`Graph`.

    Parameters
    ----------
    on_duplicate:
        ``"error"`` (default) rejects a repeated edge, ``"min"`` keeps
        the smaller weight and ``"ignore"`` keeps the first weight.
    """

    _POLICIES = ("error", "min", "ignore")

    def __init__(self, on_duplicate: str = "error"):
        if on_duplicate not in self._POLICIES:
            raise GraphError(
                f"on_duplicate must be one of {self._POLICIES}, got {on_duplicate!r}"
            )
        self._on_duplicate = on_duplicate
        self._weights: dict[tuple[int, int], float] = {}
        self._ids: dict[Hashable, int] = {}
        self._labels: list[Hashable] = []
        self._max_node = -1

    # -- node handling -----------------------------------------------------

    def intern(self, label: Hashable) -> int:
        """Map an arbitrary hashable node label to a dense integer id."""
        node = self._ids.get(label)
        if node is None:
            node = len(self._labels)
            self._ids[label] = node
            self._labels.append(label)
            self._max_node = max(self._max_node, node)
        return node

    @property
    def labels(self) -> list[Hashable]:
        """Original labels indexed by dense node id (empty if unused)."""
        return list(self._labels)

    # -- edge handling -----------------------------------------------------

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add an undirected edge between dense node ids ``u`` and ``v``."""
        if u == v:
            raise GraphError(f"self-loop on node {u} is not allowed")
        if weight <= 0:
            raise GraphError(f"edge ({u}, {v}) has non-positive weight {weight}")
        key = edge_key(u, v)
        existing = self._weights.get(key)
        if existing is None:
            self._weights[key] = float(weight)
        elif self._on_duplicate == "error":
            raise GraphError(f"duplicate edge ({u}, {v})")
        elif self._on_duplicate == "min":
            self._weights[key] = min(existing, float(weight))
        self._max_node = max(self._max_node, u, v)

    def add_labeled_edge(self, a: Hashable, b: Hashable, weight: float = 1.0) -> None:
        """Add an edge between two labels, interning them on the fly."""
        self.add_edge(self.intern(a), self.intern(b), weight)

    def add_edges(self, edges: Iterable[tuple[int, int, float]]) -> None:
        for u, v, w in edges:
            self.add_edge(u, v, w)

    # -- finalization --------------------------------------------------------

    @property
    def num_edges(self) -> int:
        return len(self._weights)

    def build(
        self,
        num_nodes: int | None = None,
        coords: list[tuple[float, float]] | None = None,
    ) -> Graph:
        """Produce the immutable graph.

        ``num_nodes`` defaults to one past the largest node id seen.
        """
        if num_nodes is None:
            if self._max_node < 0:
                raise GraphError("builder holds no nodes or edges")
            num_nodes = self._max_node + 1
        edges = [(u, v, w) for (u, v), w in self._weights.items()]
        return Graph(num_nodes, edges, coords=coords)
