"""In-memory graph model, builders, partitioning and persistence."""

from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph, edge_key
from repro.graph.io import load_graph, save_graph
from repro.graph.partition import bfs_order, hilbert_order, partition_nodes

__all__ = [
    "Graph",
    "GraphBuilder",
    "bfs_order",
    "edge_key",
    "hilbert_order",
    "load_graph",
    "partition_nodes",
    "save_graph",
]
