"""Plain-text persistence for graphs and point sets.

The on-disk format is a simple line-oriented file that round-trips
graphs, node coordinates and data points::

    # comment
    V <num_nodes>
    C <node> <x> <y>           (optional, one per node)
    E <u> <v> <weight>
    NP <point_id> <node>       (restricted data point)
    EP <point_id> <u> <v> <pos>  (unrestricted data point)

This is deliberately not a performance format -- it exists so examples
and experiments can persist generated data sets reproducibly.
"""

from __future__ import annotations

import os
from typing import TextIO

from repro.errors import GraphError
from repro.graph.graph import Graph
from repro.points.points import EdgePointSet, NodePointSet, PointSet


def save_graph(
    path: str | os.PathLike[str],
    graph: Graph,
    points: PointSet | None = None,
) -> None:
    """Write a graph (and optionally its points) to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        _write_graph(handle, graph, points)


def _write_graph(handle: TextIO, graph: Graph, points: PointSet | None) -> None:
    handle.write(f"V {graph.num_nodes}\n")
    if graph.coords is not None:
        for node, (x, y) in enumerate(graph.coords):
            handle.write(f"C {node} {x!r} {y!r}\n")
    for u, v, w in graph.edges():
        handle.write(f"E {u} {v} {w!r}\n")
    if isinstance(points, NodePointSet):
        for pid, node in sorted(points.items()):
            handle.write(f"NP {pid} {node}\n")
    elif isinstance(points, EdgePointSet):
        for pid, (u, v, pos) in sorted(points.items()):
            handle.write(f"EP {pid} {u} {v} {pos!r}\n")


def load_graph(
    path: str | os.PathLike[str],
) -> tuple[Graph, PointSet | None]:
    """Read a graph file written by :func:`save_graph`.

    Returns ``(graph, points)`` where ``points`` is ``None`` when the
    file declares no data points.
    """
    num_nodes: int | None = None
    coords: dict[int, tuple[float, float]] = {}
    edges: list[tuple[int, int, float]] = []
    node_points: dict[int, int] = {}
    edge_points: dict[int, tuple[int, int, float]] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            tag = fields[0]
            try:
                if tag == "V":
                    num_nodes = int(fields[1])
                elif tag == "C":
                    coords[int(fields[1])] = (float(fields[2]), float(fields[3]))
                elif tag == "E":
                    edges.append((int(fields[1]), int(fields[2]), float(fields[3])))
                elif tag == "NP":
                    node_points[int(fields[1])] = int(fields[2])
                elif tag == "EP":
                    edge_points[int(fields[1])] = (
                        int(fields[2]),
                        int(fields[3]),
                        float(fields[4]),
                    )
                else:
                    raise GraphError(f"{path}:{lineno}: unknown record tag {tag!r}")
            except (IndexError, ValueError) as exc:
                raise GraphError(f"{path}:{lineno}: malformed line {line!r}") from exc
    if num_nodes is None:
        raise GraphError(f"{path}: missing 'V <num_nodes>' header")
    if node_points and edge_points:
        raise GraphError(f"{path}: mixes restricted (NP) and unrestricted (EP) points")
    coord_list = None
    if coords:
        if len(coords) != num_nodes:
            raise GraphError(
                f"{path}: has coordinates for {len(coords)} of {num_nodes} nodes"
            )
        coord_list = [coords[node] for node in range(num_nodes)]
    graph = Graph(num_nodes, edges, coords=coord_list)
    points: PointSet | None = None
    if node_points:
        points = NodePointSet(node_points)
    elif edge_points:
        points = EdgePointSet(edge_points)
    return graph, points
