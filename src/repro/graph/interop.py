"""Interchange formats: DIMACS shortest-path and METIS graph files.

Road-network research distributes graphs in the 9th DIMACS Challenge
format (the paper's San Francisco map circulates in it today), and
partitioning tools speak METIS.  Both load into the same
:class:`~repro.graph.graph.Graph` the rest of the library uses, so
real data sets can replace the synthetic generators when available.

DIMACS (``.gr`` distance graphs, ``.co`` coordinates)::

    c comment
    p sp <num_nodes> <num_arcs>
    a <u> <v> <weight>            (1-based; arcs usually listed both ways)

    p aux sp co <num_nodes>
    v <node> <x> <y>              (1-based coordinates)

METIS (``.graph``)::

    % comment
    <num_nodes> <num_edges> [fmt]   (fmt 1 = weighted edges)
    <nbr> [w] <nbr> [w] ...        (line i: 1-based neighbors of node i)

The loaders are strict about structure (counts must match) but
tolerant of the usual real-world noise: duplicate reverse arcs,
comments, and blank lines.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.errors import GraphError
from repro.graph.graph import Graph, edge_key


def load_dimacs(
    path: str | os.PathLike[str],
    coordinates: str | os.PathLike[str] | None = None,
    on_asymmetric: str = "error",
) -> Graph:
    """Load a DIMACS ``.gr`` file (plus optional ``.co`` coordinates).

    DIMACS arcs are directed; the paper's model is undirected, so each
    arc pair must agree.  ``on_asymmetric`` decides what to do when
    ``w(u, v) != w(v, u)``: ``"error"`` (default), ``"min"`` or
    ``"max"`` keep the corresponding weight.
    """
    if on_asymmetric not in ("error", "min", "max"):
        raise GraphError(
            f"on_asymmetric must be 'error', 'min' or 'max', got {on_asymmetric!r}"
        )
    num_nodes: int | None = None
    declared_arcs = 0
    seen_arcs = 0
    weights: dict[tuple[int, int], float] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            fields = raw.split()
            if not fields or fields[0] == "c":
                continue
            if fields[0] == "p":
                if len(fields) != 4 or fields[1] != "sp":
                    raise GraphError(
                        f"{path}:{lineno}: expected 'p sp <n> <m>', got {raw!r}"
                    )
                num_nodes = int(fields[2])
                declared_arcs = int(fields[3])
            elif fields[0] == "a":
                if num_nodes is None:
                    raise GraphError(f"{path}:{lineno}: arc before 'p sp' header")
                try:
                    u, v, w = int(fields[1]), int(fields[2]), float(fields[3])
                except (IndexError, ValueError) as exc:
                    raise GraphError(
                        f"{path}:{lineno}: malformed arc {raw!r}"
                    ) from exc
                seen_arcs += 1
                _merge_arc(weights, u - 1, v - 1, w, on_asymmetric, path, lineno)
            else:
                raise GraphError(
                    f"{path}:{lineno}: unknown record {fields[0]!r}"
                )
    if num_nodes is None:
        raise GraphError(f"{path}: missing 'p sp' header")
    if declared_arcs != seen_arcs:
        raise GraphError(
            f"{path}: header declares {declared_arcs} arcs, found {seen_arcs}"
        )
    coords = _load_dimacs_coords(coordinates, num_nodes) if coordinates else None
    return Graph(
        num_nodes,
        [(u, v, w) for (u, v), w in weights.items()],
        coords=coords,
    )


def _merge_arc(
    weights: dict[tuple[int, int], float],
    u: int,
    v: int,
    w: float,
    on_asymmetric: str,
    path: object,
    lineno: int,
) -> None:
    key = edge_key(u, v)
    existing = weights.get(key)
    if existing is None or existing == w:
        weights[key] = w
        return
    if on_asymmetric == "error":
        raise GraphError(
            f"{path}:{lineno}: asymmetric arc ({u + 1}, {v + 1}): "
            f"{existing} vs {w} (pass on_asymmetric='min' or 'max')"
        )
    weights[key] = min(existing, w) if on_asymmetric == "min" else max(existing, w)


def _load_dimacs_coords(
    path: str | os.PathLike[str], num_nodes: int
) -> list[tuple[float, float]]:
    coords: dict[int, tuple[float, float]] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            fields = raw.split()
            if not fields or fields[0] == "c" or fields[0] == "p":
                continue
            if fields[0] == "v":
                try:
                    node = int(fields[1]) - 1
                    coords[node] = (float(fields[2]), float(fields[3]))
                except (IndexError, ValueError) as exc:
                    raise GraphError(
                        f"{path}:{lineno}: malformed coordinate {raw!r}"
                    ) from exc
            else:
                raise GraphError(f"{path}:{lineno}: unknown record {fields[0]!r}")
    if len(coords) != num_nodes:
        raise GraphError(
            f"{path}: coordinates for {len(coords)} of {num_nodes} nodes"
        )
    return [coords[node] for node in range(num_nodes)]


def save_dimacs(
    path: str | os.PathLike[str],
    graph: Graph,
    coordinates: str | os.PathLike[str] | None = None,
) -> None:
    """Write ``graph`` as a DIMACS ``.gr`` file (both arc directions).

    Weights are written with ``repr`` so float weights round-trip;
    standard DIMACS uses integers, and integral weights are written as
    integers for compatibility.
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"p sp {graph.num_nodes} {2 * graph.num_edges}\n")
        for u, v, w in graph.edges():
            text = str(int(w)) if w == int(w) else repr(w)
            handle.write(f"a {u + 1} {v + 1} {text}\n")
            handle.write(f"a {v + 1} {u + 1} {text}\n")
    if coordinates is not None:
        if graph.coords is None:
            raise GraphError("graph has no coordinates to save")
        with open(coordinates, "w", encoding="utf-8") as handle:
            handle.write(f"p aux sp co {graph.num_nodes}\n")
            for node, (x, y) in enumerate(graph.coords):
                handle.write(f"v {node + 1} {x!r} {y!r}\n")


def load_metis(path: str | os.PathLike[str]) -> Graph:
    """Load a METIS ``.graph`` file (fmt 0 unweighted or 1 edge-weighted).

    Unweighted edges get weight 1.0 (the DBLP hop-count convention).
    """
    lines = _metis_payload_lines(path)
    if not lines:
        raise GraphError(f"{path}: empty METIS file")
    header = lines[0].split()
    if len(header) < 2:
        raise GraphError(f"{path}: malformed METIS header {lines[0]!r}")
    num_nodes = int(header[0])
    declared_edges = int(header[1])
    fmt = header[2] if len(header) > 2 else "0"
    if fmt not in ("0", "00", "1", "01"):
        raise GraphError(
            f"{path}: unsupported METIS fmt {fmt!r} (node weights not supported)"
        )
    weighted = fmt in ("1", "01")
    payload = lines[1:]
    if len(payload) < num_nodes or any(line for line in payload[num_nodes:]):
        raise GraphError(
            f"{path}: header declares {num_nodes} nodes, "
            f"found {len(payload)} adjacency lines"
        )
    weights: dict[tuple[int, int], float] = {}
    for node, line in enumerate(payload[:num_nodes]):
        fields = line.split()
        step = 2 if weighted else 1
        if len(fields) % step:
            raise GraphError(f"{path}: odd token count on node {node + 1}'s line")
        for i in range(0, len(fields), step):
            nbr = int(fields[i]) - 1
            w = float(fields[i + 1]) if weighted else 1.0
            if nbr == node:
                raise GraphError(f"{path}: self-loop on node {node + 1}")
            key = edge_key(node, nbr)
            existing = weights.get(key)
            if existing is None:
                weights[key] = w
            elif existing != w:
                raise GraphError(
                    f"{path}: edge ({node + 1}, {nbr + 1}) listed with "
                    f"weights {existing} and {w}"
                )
    if len(weights) != declared_edges:
        raise GraphError(
            f"{path}: header declares {declared_edges} edges, found {len(weights)}"
        )
    return Graph(num_nodes, [(u, v, w) for (u, v), w in weights.items()])


def save_metis(path: str | os.PathLike[str], graph: Graph) -> None:
    """Write ``graph`` as an edge-weighted METIS ``.graph`` file.

    METIS edge weights are integers; float weights raise.
    """
    adjacency: list[list[tuple[int, float]]] = [[] for _ in graph.nodes()]
    for u, v, w in graph.edges():
        if w != int(w):
            raise GraphError(
                f"METIS stores integer edge weights; edge ({u}, {v}) has {w}"
            )
        adjacency[u].append((v, w))
        adjacency[v].append((u, w))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"{graph.num_nodes} {graph.num_edges} 1\n")
        for neighbors in adjacency:
            tokens: Iterable[str] = (
                f"{nbr + 1} {int(w)}" for nbr, w in sorted(neighbors)
            )
            handle.write(" ".join(tokens) + "\n")


def _metis_payload_lines(path: str | os.PathLike[str]) -> list[str]:
    """Non-comment lines of a METIS file, preserving blank adjacency rows.

    Blank rows matter: an isolated node's adjacency line is empty.
    Leading blanks (before the header) carry nothing and are dropped;
    trailing blanks are validated against the node count by the caller.
    """
    lines: list[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            stripped = raw.strip()
            if stripped.startswith("%"):
                continue
            if not lines and not stripped:
                continue
            lines.append(stripped)
    return lines
