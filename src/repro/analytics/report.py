"""Descriptive statistics of a graph database.

The paper characterizes each experimental network before using it
(Section 6: node and edge cardinality, average degree, data density,
expansion behaviour).  :func:`network_report` computes that
characterization for any :class:`~repro.api.GraphDatabase`, so the
benchmark harness and the examples can print paper-style problem
descriptions, and the planner can reason about problem characteristics
without hand-typed constants.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.analytics.estimators import ExpansionProfile, expansion_profile
from repro.api import GraphDatabase


@dataclass(frozen=True)
class DegreeStats:
    """Node-degree distribution summary."""

    minimum: int
    maximum: int
    mean: float
    median: float

    @property
    def skewed(self) -> bool:
        """Max degree far above the mean: a power-law-ish topology."""
        return self.maximum >= 4 * max(self.mean, 1.0)


@dataclass(frozen=True)
class WeightStats:
    """Edge-weight distribution summary."""

    minimum: float
    maximum: float
    mean: float

    @property
    def unit_weights(self) -> bool:
        """All weights equal 1 (hop-count metrics like DBLP)."""
        return self.minimum == 1.0 and self.maximum == 1.0


@dataclass(frozen=True)
class NetworkReport:
    """A paper-style description of one experimental configuration."""

    num_nodes: int
    num_edges: int
    num_points: int
    density: float                # |P| / |V|, the paper's D
    restricted: bool
    degrees: DegreeStats
    weights: WeightStats
    expansion: ExpansionProfile

    def summary_lines(self) -> list[str]:
        """Human-readable lines for harness output."""
        kind = "restricted" if self.restricted else "unrestricted"
        regime = "exponential" if self.expansion.exponential else "local"
        return [
            f"|V| = {self.num_nodes}, |E| = {self.num_edges} ({kind})",
            f"|P| = {self.num_points}, density D = {self.density:.4f}",
            (
                f"degree: min {self.degrees.minimum}, mean "
                f"{self.degrees.mean:.2f}, max {self.degrees.maximum}"
            ),
            (
                f"weights: [{self.weights.minimum:.3g}, "
                f"{self.weights.maximum:.3g}], mean {self.weights.mean:.3g}"
            ),
            (
                f"expansion: {regime} (hop-ball growth "
                f"{self.expansion.growth_ratio:.2f})"
            ),
        ]


def network_report(
    db: GraphDatabase, samples: int = 8, seed: int = 0
) -> NetworkReport:
    """Characterize a database the way the paper's Section 6 does."""
    graph = db.graph
    degrees = [graph.degree(node) for node in graph.nodes()]
    weights = [w for _, _, w in graph.edges()]
    return NetworkReport(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_points=len(db.points),
        density=len(db.points) / graph.num_nodes,
        restricted=db.restricted,
        degrees=DegreeStats(
            minimum=min(degrees),
            maximum=max(degrees),
            mean=statistics.fmean(degrees),
            median=float(statistics.median(degrees)),
        ),
        weights=WeightStats(
            minimum=min(weights) if weights else 0.0,
            maximum=max(weights) if weights else 0.0,
            mean=statistics.fmean(weights) if weights else 0.0,
        ),
        expansion=expansion_profile(db, samples=samples, seed=seed),
    )
