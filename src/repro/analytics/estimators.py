"""Cost and selectivity estimation for RkNN queries.

The paper's conclusion lists cost/selectivity models as open problems:
they are "useful both for selecting the best processing method given
the problem characteristics, and optimizing complex spatial queries".
This module provides sampling-based estimators plus the closed-form
facts that do hold:

* **Selectivity.**  For a query drawn from the same distribution as the
  data (the paper's workloads), the *expected* result size of an RkNN
  query is exactly ``k``: summing ``|RkNN(p)|`` over all points counts
  every (point, one-of-its-k-NN) pair exactly once, and there are
  ``k |P|`` such pairs (ties and boundary effects aside).  Individual
  queries vary widely, which is what :func:`estimate_selectivity`
  measures.
* **Expansion regime.**  The dominant cost driver the paper identifies
  is whether the network expands *exponentially* (internet-style
  topologies, Figs. 15-16) or *polynomially* (road-style planar
  networks).  :func:`expansion_profile` measures the hop-ball growth
  around sampled nodes and classifies the regime.
* **Method choice.**  :func:`recommend_method` encodes the decision
  rules of the paper's Section 6 summary, informed by the measured
  expansion profile.
"""

from __future__ import annotations

import random
import statistics
from collections import deque
from dataclasses import dataclass

from repro.api import GraphDatabase
from repro.datasets.workload import data_queries
from repro.errors import QueryError

#: Ball-growth ratio above which a network counts as exponentially
#: expanding (BRITE-style graphs show ratios of 3+; road networks ~1.5).
EXPONENTIAL_GROWTH_RATIO = 2.2


def expected_selectivity(k: int) -> float:
    """Expected ``|RkNN(q)|`` for data-distributed queries (exactly k)."""
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    return float(k)


@dataclass(frozen=True)
class SelectivityEstimate:
    """Sampled result-size statistics of RkNN queries."""

    k: int
    samples: int
    mean: float
    std: float
    maximum: int

    @property
    def expected(self) -> float:
        """The closed-form expectation (= k) for comparison."""
        return expected_selectivity(self.k)


def estimate_selectivity(
    db: GraphDatabase,
    k: int = 1,
    samples: int = 25,
    seed: int = 0,
    method: str | None = None,
) -> SelectivityEstimate:
    """Estimate RkNN selectivity by sampling data-distributed queries.

    Uses ``eager-m`` when the database has materialized lists of
    sufficient capacity, falling back to ``eager``.
    """
    if len(db.points) == 0:
        raise QueryError("cannot sample queries from an empty point set")
    if method is None:
        usable = (
            db.materialized is not None and db.materialized.capacity >= k + 1
        )
        method = "eager-m" if usable else "eager"
    sizes = []
    for query in data_queries(db.points, count=samples, seed=seed):
        result = db.rknn(query.location, k, method=method, exclude=query.exclude)
        sizes.append(len(result))
    return SelectivityEstimate(
        k=k,
        samples=samples,
        mean=statistics.fmean(sizes),
        std=statistics.pstdev(sizes) if len(sizes) > 1 else 0.0,
        maximum=max(sizes),
    )


@dataclass(frozen=True)
class ExpansionProfile:
    """Hop-ball growth statistics around sampled nodes."""

    hop_ball_sizes: tuple[float, ...]  # avg nodes within h hops, h = 0..H
    growth_ratio: float                # median ball(h+1)/ball(h)
    coverage_at_horizon: float         # fraction of |V| inside the last ball

    @property
    def exponential(self) -> bool:
        """Whether the network shows the paper's exponential expansion."""
        return self.growth_ratio >= EXPONENTIAL_GROWTH_RATIO


def expansion_profile(
    db: GraphDatabase,
    samples: int = 8,
    max_hops: int = 5,
    seed: int = 0,
) -> ExpansionProfile:
    """Measure how fast hop-balls grow around random nodes.

    Uses the in-memory graph (this is planning-time analysis, not a
    charged query).
    """
    graph = db.graph
    rng = random.Random(seed)
    balls = [[] for _ in range(max_hops + 1)]
    for _ in range(samples):
        start = rng.randrange(graph.num_nodes)
        seen = {start}
        frontier = deque([(start, 0)])
        counts = [0] * (max_hops + 1)
        counts[0] = 1
        while frontier:
            node, hops = frontier.popleft()
            if hops == max_hops:
                continue
            for nbr, _ in graph.neighbors(node):
                if nbr not in seen:
                    seen.add(nbr)
                    counts[hops + 1] += 1
                    frontier.append((nbr, hops + 1))
        cumulative = 0
        for hop in range(max_hops + 1):
            cumulative += counts[hop]
            balls[hop].append(cumulative)
    averages = tuple(statistics.fmean(per_hop) for per_hop in balls)
    ratios = [
        averages[h + 1] / averages[h]
        for h in range(max_hops)
        if averages[h] > 0 and averages[h + 1] < 0.9 * graph.num_nodes
    ]
    growth = statistics.median(ratios) if ratios else 1.0
    return ExpansionProfile(
        hop_ball_sizes=averages,
        growth_ratio=growth,
        coverage_at_horizon=averages[-1] / graph.num_nodes,
    )


@dataclass(frozen=True)
class CostEstimate:
    """Sampled cost statistics of one (method, k) configuration."""

    method: str
    k: int
    samples: int
    io_mean: float
    cpu_mean_s: float
    total_mean_s: float


def estimate_query_cost(
    db: GraphDatabase,
    k: int = 1,
    method: str = "eager",
    samples: int = 10,
    seed: int = 0,
) -> CostEstimate:
    """Measure the average cost of a method on sampled queries."""
    if len(db.points) == 0:
        raise QueryError("cannot sample queries from an empty point set")
    ios, cpus, totals = [], [], []
    for query in data_queries(db.points, count=samples, seed=seed):
        db.clear_buffer()
        result = db.rknn(query.location, k, method=method, exclude=query.exclude)
        ios.append(result.io)
        cpus.append(result.cpu_seconds)
        totals.append(result.total_seconds())
    return CostEstimate(
        method=method,
        k=k,
        samples=samples,
        io_mean=statistics.fmean(ios),
        cpu_mean_s=statistics.fmean(cpus),
        total_mean_s=statistics.fmean(totals),
    )


@dataclass(frozen=True)
class MethodRecommendation:
    """A method choice plus the reasoning behind it."""

    method: str
    rationale: str
    profile: ExpansionProfile


def recommend_method(
    db: GraphDatabase,
    k: int = 1,
    samples: int = 8,
    seed: int = 0,
) -> MethodRecommendation:
    """Pick a processing method following the paper's Section 6 summary.

    * materialized lists of sufficient capacity -> ``eager-m`` ("the
      best and most robust algorithm");
    * exponential expansion -> ``eager`` ("the pruning strategy of lazy
      fails completely" on such networks);
    * otherwise -> ``eager`` as the general choice, with a note that
      lazy trades I/O for CPU when that matters.
    """
    profile = expansion_profile(db, samples=samples, seed=seed)
    if db.materialized is not None and db.materialized.capacity >= k + 1:
        return MethodRecommendation(
            "eager-m",
            "materialized K-NN lists cover k (+1 for query-point "
            "exclusion): eager-M dominates on both I/O and CPU",
            profile,
        )
    if profile.exponential:
        return MethodRecommendation(
            "eager",
            f"hop-ball growth ratio {profile.growth_ratio:.1f} indicates "
            "exponential expansion, where lazy evaluation visits most of "
            "the network",
            profile,
        )
    return MethodRecommendation(
        "eager",
        "eager minimizes I/O, the dominant cost factor; consider 'lazy' "
        "if CPU is the bottleneck on this (locally expanding) network",
        profile,
    )
