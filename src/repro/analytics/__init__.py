"""Cost and selectivity estimation (the paper's Section 7 model agenda)."""

from repro.analytics.estimators import (
    CostEstimate,
    ExpansionProfile,
    MethodRecommendation,
    SelectivityEstimate,
    estimate_query_cost,
    estimate_selectivity,
    expansion_profile,
    expected_selectivity,
    recommend_method,
)
from repro.analytics.planner import CalibratingPlanner, Plan
from repro.analytics.report import (
    DegreeStats,
    NetworkReport,
    WeightStats,
    network_report,
)

__all__ = [
    "CalibratingPlanner",
    "CostEstimate",
    "DegreeStats",
    "ExpansionProfile",
    "MethodRecommendation",
    "NetworkReport",
    "Plan",
    "SelectivityEstimate",
    "WeightStats",
    "estimate_query_cost",
    "estimate_selectivity",
    "expansion_profile",
    "expected_selectivity",
    "network_report",
    "recommend_method",
]
