"""A calibrating, cost-based query planner.

The paper's conclusion calls for models "useful both for selecting the
best processing method given the problem characteristics, and
optimizing complex spatial queries".  :func:`recommend_method` (in
:mod:`repro.analytics.estimators`) encodes the paper's qualitative
decision rules; :class:`CalibratingPlanner` goes one step further and
*measures*: it samples a handful of data-distributed queries with each
candidate method, fits the observed cost, and then routes production
queries to the cheapest method for their ``k``.

This is the classical optimizer architecture (calibrate once per
physical configuration, then plan per query) applied to the paper's
method space.  Calibration cost is bounded and explicit; plans are
reproducible given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.estimators import CostEstimate, estimate_query_cost
from repro.api import METHODS, GraphDatabase
from repro.errors import QueryError
from repro.storage.stats import CostModel


@dataclass(frozen=True)
class Plan:
    """A routing decision for one query class."""

    k: int
    method: str
    estimated_seconds: float
    alternatives: tuple[CostEstimate, ...]

    def explain(self) -> str:
        """Optimizer-style explanation of the decision."""
        ranked = sorted(self.alternatives, key=lambda est: est.total_mean_s)
        lines = [f"plan for k={self.k}: use {self.method!r}"]
        for est in ranked:
            marker = "->" if est.method == self.method else "  "
            lines.append(
                f"  {marker} {est.method:8s} io={est.io_mean:8.1f} "
                f"cpu={est.cpu_mean_s:.4f}s total={est.total_mean_s:.4f}s"
            )
        return "\n".join(lines)


class CalibratingPlanner:
    """Choose RkNN processing methods from measured sample costs."""

    def __init__(
        self,
        db: GraphDatabase,
        methods: tuple[str, ...] = METHODS,
        samples: int = 5,
        seed: int = 0,
        cost_model: CostModel | None = None,
    ):
        unknown = set(methods) - set(METHODS)
        if unknown:
            raise QueryError(f"unknown methods {sorted(unknown)}")
        if not methods:
            raise QueryError("at least one candidate method is required")
        if samples < 1:
            raise QueryError(f"samples must be >= 1, got {samples}")
        self.db = db
        self.samples = samples
        self.seed = seed
        self.cost_model = cost_model or CostModel()
        self._methods = tuple(methods)
        self._plans: dict[int, Plan] = {}

    def usable_methods(self, k: int) -> tuple[str, ...]:
        """Candidate methods that can run at this ``k`` right now.

        ``eager-m`` needs materialized lists of capacity ``k + 1``
        (data-distributed workloads exclude the query's own point).
        """
        usable = []
        for method in self._methods:
            if method == "eager-m":
                mat = self.db.materialized
                if mat is None or mat.capacity < k + 1:
                    continue
            usable.append(method)
        return tuple(usable)

    def calibrate(self, k: int) -> Plan:
        """Measure every usable method at ``k`` and cache the winner."""
        candidates = self.usable_methods(k)
        if not candidates:
            raise QueryError(f"no usable methods for k={k}")
        estimates = []
        for method in candidates:
            estimates.append(
                estimate_query_cost(
                    self.db, k=k, method=method,
                    samples=self.samples, seed=self.seed,
                )
            )
        best = min(estimates, key=lambda est: est.total_mean_s)
        plan = Plan(
            k=k,
            method=best.method,
            estimated_seconds=best.total_mean_s,
            alternatives=tuple(estimates),
        )
        self._plans[k] = plan
        return plan

    def plan_for(self, k: int) -> Plan:
        """The cached plan for ``k``, calibrating on first use."""
        plan = self._plans.get(k)
        if plan is None:
            plan = self.calibrate(k)
        return plan

    def method_for(self, k: int) -> str:
        """The planned method for ``k`` (used by the batch engine to
        resolve ``method="auto"`` query specs)."""
        return self.plan_for(k).method

    def estimated_seconds(self, k: int) -> float:
        """The planned method's estimated per-query cost at ``k``."""
        return self.plan_for(k).estimated_seconds

    def rknn(self, query, k: int = 1, exclude=frozenset()):
        """Run an RkNN query with the planned method."""
        plan = self.plan_for(k)
        return self.db.rknn(query, k, method=plan.method, exclude=exclude)
