"""Command-line interface: generate data sets, inspect them, run queries.

Usage (also ``python -m repro``)::

    python -m repro generate --kind spatial --nodes 2000 --density 0.02 \\
        --placement edge -o sf.graph
    python -m repro info sf.graph
    python -m repro query sf.graph --query 17 --k 2 --method eager
    python -m repro query sf.graph --query 3,9,12.5 --method lazy
    python -m repro query sf.graph -e "SELECT * FROM rknn(query=17, k=2)"
    python -m repro query sf.graph -e "SELECT * FROM topk_influence(k=2) LIMIT 5"
    python -m repro query sf.graph -e "EXPLAIN SELECT * FROM rknn(query=17, k=2)"
    python -m repro trace captured_trace.json
    python -m repro recommend sf.graph --k 2
    python -m repro report sf.graph
    python -m repro path sf.graph --source 3 --target 1200 --search alt
    python -m repro plan sf.graph --k 2 --samples 4
    python -m repro batch sf.graph --specs queries.jsonl --workers 4
    python -m repro shard build sf.graph --shards 4
    python -m repro batch sf.graph --specs queries.jsonl --backend sharded \\
        --workers 4
    python -m repro compact build sf.graph
    python -m repro batch sf.graph --specs queries.jsonl --backend compact \\
        --workers 4
    python -m repro oracle build sf.graph --landmarks 8
    python -m repro batch sf.graph --specs queries.jsonl --oracle
    python -m repro query sf.graph --query 17 --k 2 --backend compact --oracle
    python -m repro serve sf.graph --port 8750 --backend compact --workers 4

Backend selection is one shared option group: ``--backend
{disk,sharded,compact}`` (+ ``--shard-count K``) and ``--oracle``; the
old ``--shards K`` / ``--compact`` spellings still work as deprecated
aliases but warn and will be removed.

The ``batch`` subcommand reads one JSON query spec per line (see
:mod:`repro.engine.spec`), e.g.::

    {"kind": "rknn", "query": 17, "k": 2, "method": "eager"}
    {"kind": "knn", "query": 3, "k": 3}
    {"kind": "range", "query": 5, "k": 2, "radius": 8.0}

Graphs round-trip through the line-oriented format of
:mod:`repro.graph.io`, so generated data sets can be versioned and
shared between runs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Sequence

from repro.analytics import (
    CalibratingPlanner,
    expansion_profile,
    network_report,
    recommend_method,
)
from repro.api import GraphDatabase
from repro.datasets.brite import generate_brite
from repro.datasets.dblp import generate_dblp
from repro.datasets.grid import generate_grid
from repro.datasets.spatial import generate_spatial
from repro.datasets.workload import place_edge_points, place_node_points
from repro.compact import CompactDatabase
from repro.engine.spec import load_specs
from repro.errors import QueryError, ReproError
from repro.graph.io import load_graph, save_graph
from repro.graph.partition import bfs_order, hilbert_order, partition_nodes
from repro.storage.page import adjacency_record_size
from repro.points.points import NodePointSet
from repro.shard import ShardedDatabase, ShardedGraphStore
from repro.oracle import DEFAULT_LANDMARKS as ORACLE_LANDMARKS
from repro.oracle import STRATEGIES as ORACLE_STRATEGIES
from repro.paths.astar import astar_path, euclidean_heuristic
from repro.obs import SlowQueryLog, render_trace
from repro.obs.slowlog import DEFAULT_THRESHOLD_MS
from repro.qlang import compile_statements, explain_spec
from repro.paths.bidirectional import bidirectional_search
from repro.paths.dijkstra import shortest_path
from repro.paths.landmarks import LandmarkIndex

KINDS = ("dblp", "brite", "spatial", "grid")

SEARCHES = ("dijkstra", "astar", "alt", "bidirectional")


def _add_backend_arguments(parser) -> None:
    """Backend-selection flags shared by ``query``, ``batch``, ``serve``.

    The modern surface is one option group: ``--backend
    {disk,sharded,compact}`` (+ ``--shard-count``) and ``--oracle``.
    The pre-redesign spellings ``--shards K`` and ``--compact`` remain
    as deprecated aliases: they warn on use and will be removed in a
    future release.
    """
    parser.add_argument("--backend", choices=("disk", "sharded", "compact"),
                        default=None,
                        help="storage backend to serve from: the paged disk "
                        "store (default), the K-shard store, or the "
                        "memory-resident CSR store")
    parser.add_argument("--shard-count", type=int, default=4, metavar="K",
                        help="with --backend sharded: number of shards "
                        "(default 4)")
    parser.add_argument("--shards", type=int, default=None, metavar="K",
                        help="deprecated alias for --backend sharded "
                        "--shard-count K (0 = unsharded); to be removed")
    parser.add_argument("--compact", action="store_true",
                        help="deprecated alias for --backend compact; "
                        "to be removed")
    parser.add_argument("--compact-threshold", type=int, default=None,
                        metavar="N", help="with the compact backend: "
                        "auto-fold the delta-overlay log into a fresh CSR "
                        "base once N mutations are pending")
    parser.add_argument("--oracle", action="store_true",
                        help="build a landmark distance oracle before serving; "
                        "answers are identical, expansions prune harder")
    parser.add_argument("--oracle-landmarks", type=int, default=ORACLE_LANDMARKS,
                        metavar="L", help="landmark count for --oracle")


def _warn_deprecated(flag: str, replacement: str) -> None:
    """Point users of a pre-redesign flag at the ``--backend`` group."""
    print(f"warning: {flag} is deprecated and will be removed in a future "
          f"release; use {replacement}", file=sys.stderr)


def _resolve_backend(args: argparse.Namespace) -> tuple[str, int]:
    """Resolve the backend option group (and its deprecated aliases).

    Returns ``(backend, shard count)`` where ``backend`` is one of
    ``"disk"``, ``"sharded"``, ``"compact"``.  Memoized on the
    namespace so ``serve`` can pre-validate without double warnings.
    """
    cached = getattr(args, "_resolved_backend", None)
    if cached is not None:
        return cached
    backend = args.backend
    shard_count = getattr(args, "shard_count", 4)
    legacy_shards = getattr(args, "shards", None)
    if getattr(args, "compact", False):
        if legacy_shards is not None and legacy_shards > 0:
            raise QueryError("--compact and --shards are mutually exclusive")
        _warn_deprecated("--compact", "--backend compact")
        if backend not in (None, "compact"):
            raise QueryError(f"--compact conflicts with --backend {backend}")
        backend = "compact"
    if legacy_shards is not None:
        if legacy_shards < 0:
            raise QueryError(f"--shards must be >= 0, got {legacy_shards}")
        _warn_deprecated("--shards", "--backend sharded --shard-count K")
        if legacy_shards > 0:
            if backend not in (None, "sharded"):
                raise QueryError(
                    f"--shards conflicts with --backend {backend}"
                )
            backend = "sharded"
            shard_count = legacy_shards
    backend = backend or "disk"
    if backend == "sharded" and shard_count < 1:
        raise QueryError(f"--shard-count must be >= 1, got {shard_count}")
    args._resolved_backend = (backend, shard_count)
    return args._resolved_backend


def _open_backend(args: argparse.Namespace, graph, points):
    """Build the database the backend option group selects.

    Shared by ``query``, ``batch`` and ``serve``: validates the flag
    combination (including the deprecated ``--shards``/``--compact``
    aliases), constructs the disk / sharded / compact facade,
    materializes K-NN lists and attaches the oracle when asked.
    Returns ``(db, backend label)``.
    """
    kind, shard_count = _resolve_backend(args)
    threshold = getattr(args, "compact_threshold", None)
    if threshold is not None and kind != "compact":
        raise QueryError("--compact-threshold requires the compact backend "
                         "(--backend compact)")
    if kind == "compact":
        db = CompactDatabase(graph, points, compact_threshold=threshold)
        backend = "compact"
    elif kind == "sharded":
        db = ShardedDatabase(graph, points, num_shards=shard_count,
                             buffer_pages=args.buffer_pages)
        backend = f"{shard_count} shard(s)"
    else:
        db = GraphDatabase(graph, points, buffer_pages=args.buffer_pages)
        backend = "unsharded"
    if getattr(args, "materialize", 0) > 0:
        db.materialize(args.materialize)
    if args.oracle:
        report = db.build_oracle(args.oracle_landmarks)
        print(f"oracle: {len(report.landmarks)} landmarks, "
              f"{report.entries} label entries, {report.pages} pages, "
              f"built for {report.io} page I/Os")
    return db, backend


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reverse nearest neighbors in large graphs "
        "(Yiu, Papadias, Mamoulis, Tao; ICDE 2005)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a data set and save it to a file"
    )
    generate.add_argument("--kind", choices=KINDS, required=True)
    generate.add_argument("--nodes", type=int, default=2_000)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--density", type=float, default=0.02,
                          help="data density |P|/|V| (0 disables points)")
    generate.add_argument("--placement", choices=("node", "edge"),
                          default="node")
    generate.add_argument("--degree", type=float, default=4.0,
                          help="average degree for grid graphs")
    generate.add_argument("-o", "--output", required=True)

    info = commands.add_parser("info", help="summarize a saved data set")
    info.add_argument("graph")

    query = commands.add_parser("query", help="run an RkNN or qlang query")
    query.add_argument("graph")
    query.add_argument("--query",
                       help="node id, or 'u,v,offset' for edge locations")
    query.add_argument("-e", "--execute", metavar="STATEMENT",
                       help="qlang statement(s) to run, e.g. "
                       "\"SELECT * FROM rknn(query=17, k=2)\"; "
                       "';' separates a script")
    query.add_argument("--k", type=int, default=1)
    query.add_argument("--method", default="eager",
                       choices=("eager", "lazy", "eager-m", "lazy-ep"))
    query.add_argument("--materialize", type=int, default=0, metavar="K",
                       help="build K-NN lists before querying (for eager-m)")
    query.add_argument("--buffer-pages", type=int, default=256)
    _add_backend_arguments(query)

    recommend = commands.add_parser(
        "recommend", help="analyze a data set and suggest a method"
    )
    recommend.add_argument("graph")
    recommend.add_argument("--k", type=int, default=1)

    report = commands.add_parser(
        "report", help="paper-style characterization of a data set"
    )
    report.add_argument("graph")

    path = commands.add_parser(
        "path", help="shortest path between two nodes"
    )
    path.add_argument("graph")
    path.add_argument("--source", type=int, required=True)
    path.add_argument("--target", type=int, required=True)
    path.add_argument("--search", choices=SEARCHES, default="dijkstra")
    path.add_argument("--landmarks", type=int, default=4,
                      help="landmark count for --search alt")

    plan = commands.add_parser(
        "plan", help="calibrate methods on sampled queries and pick one"
    )
    plan.add_argument("graph")
    plan.add_argument("--k", type=int, default=1)
    plan.add_argument("--samples", type=int, default=4)
    plan.add_argument("--materialize", type=int, default=0, metavar="K",
                      help="build K-NN lists so eager-m competes")

    batch = commands.add_parser(
        "batch", help="execute a JSONL batch of queries through the engine"
    )
    batch.add_argument("graph")
    batch.add_argument("--specs", required=True,
                       help="JSONL file: one query spec object per line")
    batch.add_argument("--workers", type=int, default=1)
    batch.add_argument("--repeat", type=int, default=1,
                       help="replay the batch N times (exercises the cache)")
    batch.add_argument("--cache-size", type=int, default=1024,
                       help="result-cache entries (0 disables caching)")
    batch.add_argument("--materialize", type=int, default=0, metavar="K",
                       help="build K-NN lists before executing (for eager-m)")
    batch.add_argument("--buffer-pages", type=int, default=256)
    batch.add_argument("--no-plan", action="store_true",
                       help="execute in file order (no locality planning)")
    batch.add_argument("--no-batch-kernel", action="store_true",
                       help="disable the vectorized compact batch kernel "
                            "(scalar per-query execution)")
    batch.add_argument("--quiet", action="store_true",
                       help="print only the batch summary")
    _add_backend_arguments(batch)

    serve = commands.add_parser(
        "serve", help="serve queries and mutations over TCP "
        "(micro-batched asyncio server)"
    )
    serve.add_argument("graph")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8750,
                       help="listening port (0 picks an ephemeral port)")
    serve.add_argument("--window-ms", type=float, default=2.0,
                       help="micro-batch coalescing window in milliseconds")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="flush a batch once this many requests wait")
    serve.add_argument("--max-queue", type=int, default=1024,
                       help="admission bound before requests are shed "
                       "with an 'overloaded' response")
    serve.add_argument("--workers", type=int, default=1,
                       help="worker processes; > 1 boots a multi-process "
                       "fleet over a shared mmap'd CSR snapshot "
                       "(requires --compact)")
    serve.add_argument("--cache-size", type=int, default=4096,
                       help="result-cache entries (0 disables caching)")
    serve.add_argument("--materialize", type=int, default=0, metavar="K",
                       help="build K-NN lists before serving (for eager-m)")
    serve.add_argument("--buffer-pages", type=int, default=256)
    serve.add_argument("--ready-file", metavar="FILE",
                       help="write HOST:PORT to FILE once accepting "
                       "connections (lets scripts wait for readiness)")
    serve.add_argument("--log-level",
                       choices=("debug", "info", "warning", "error"),
                       default=None,
                       help="emit server events (sheds, reroutes, "
                       "compactions) through stdlib logging at this level")
    serve.add_argument("--slow-query-log", metavar="FILE",
                       help="append one JSON line per query slower than "
                       "--slow-query-ms to FILE (single-process server)")
    serve.add_argument("--slow-query-ms", type=float,
                       default=DEFAULT_THRESHOLD_MS, metavar="MS",
                       help="slow-query threshold in milliseconds "
                       f"(default {DEFAULT_THRESHOLD_MS:g})")
    _add_backend_arguments(serve)

    trace = commands.add_parser(
        "trace", help="pretty-print a captured trace JSON file "
        "as an indented span tree"
    )
    trace.add_argument("file",
                       help="trace JSON: a {'spans': [...]} payload, a bare "
                       "span list, or a serve response carrying 'trace'")

    shard = commands.add_parser(
        "shard", help="sharded-backend operations"
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)
    shard_build = shard_sub.add_parser(
        "build", help="cut a data set into K shards and report the layout"
    )
    shard_build.add_argument("graph")
    shard_build.add_argument("--shards", type=int, default=4, metavar="K")
    shard_build.add_argument("--order", choices=("bfs", "hilbert"),
                             default="bfs", help="cut heuristic")
    shard_build.add_argument("--buffer-pages", type=int, default=256,
                             help="LRU budget per shard (each shard models "
                             "an independent storage host)")
    shard_build.add_argument("--assignment", metavar="FILE",
                             help="write 'node shard' lines to FILE")

    compact = commands.add_parser(
        "compact", help="compact (CSR flat-array) backend operations"
    )
    compact_sub = compact.add_subparsers(dest="compact_command", required=True)
    compact_build = compact_sub.add_parser(
        "build", help="flatten a data set into CSR arrays and report the layout"
    )
    compact_build.add_argument("graph")
    compact_build.add_argument("--order", choices=("bfs", "hilbert"),
                               default="bfs", help="locality rank fed to the "
                               "batch planner (answers never depend on it)")
    compact_compact = compact_sub.add_parser(
        "compact", help="apply a mutation log through the delta overlay "
        "and fold it into a fresh CSR base generation"
    )
    compact_compact.add_argument("graph")
    compact_compact.add_argument(
        "--mutations", metavar="FILE",
        help="JSONL mutation log: one object per line with op one of "
        "insert (pid, node), delete (pid), insert-edge (u, v, weight), "
        "delete-edge (u, v)"
    )
    compact_compact.add_argument(
        "--threshold", type=int, default=None, metavar="N",
        help="auto-fold whenever N delta ops are pending (default: "
        "fold once, at the end)"
    )

    oracle = commands.add_parser(
        "oracle", help="landmark distance-oracle operations"
    )
    oracle_sub = oracle.add_subparsers(dest="oracle_command", required=True)
    oracle_build = oracle_sub.add_parser(
        "build", help="select landmarks, label every node and report "
        "the oracle's layout and build cost"
    )
    oracle_build.add_argument("graph")
    oracle_build.add_argument("--landmarks", type=int,
                              default=ORACLE_LANDMARKS, metavar="L")
    oracle_build.add_argument("--seed", type=int, default=0)
    oracle_build.add_argument("--strategy", choices=ORACLE_STRATEGIES,
                              default="farthest")
    oracle_build.add_argument("--backend",
                              choices=("disk", "sharded", "compact"),
                              default="disk",
                              help="which backend's build kernel to run "
                              "(labels are interchangeable)")
    oracle_build.add_argument("--shards", type=int, default=4, metavar="K",
                              help="shard count for --backend sharded")
    oracle_build.add_argument("--buffer-pages", type=int, default=256)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "generate":
            return _generate(args)
        if args.command == "info":
            return _info(args)
        if args.command == "query":
            return _query(args)
        if args.command == "recommend":
            return _recommend(args)
        if args.command == "report":
            return _report(args)
        if args.command == "path":
            return _path(args)
        if args.command == "plan":
            return _plan(args)
        if args.command == "batch":
            return _batch(args)
        if args.command == "serve":
            return _serve(args)
        if args.command == "trace":
            return _trace(args)
        if args.command == "shard":
            return _shard_build(args)
        if args.command == "compact":
            if args.compact_command == "compact":
                return _compact_compact(args)
            return _compact_build(args)
        if args.command == "oracle":
            return _oracle_build(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError("unreachable")  # pragma: no cover


def _generate(args: argparse.Namespace) -> int:
    if args.kind == "dblp":
        graph = generate_dblp(num_nodes=args.nodes, seed=args.seed).graph
    elif args.kind == "brite":
        graph = generate_brite(args.nodes, seed=args.seed)
    elif args.kind == "spatial":
        graph = generate_spatial(args.nodes, seed=args.seed)
    else:
        graph = generate_grid(args.nodes, average_degree=args.degree,
                              seed=args.seed)
    points = None
    if args.density > 0:
        if args.placement == "node":
            points = place_node_points(graph, args.density, seed=args.seed + 1)
        else:
            points = place_edge_points(graph, args.density, seed=args.seed + 1)
    save_graph(args.output, graph, points)
    point_count = len(points) if points is not None else 0
    print(f"wrote {args.output}: |V|={graph.num_nodes} "
          f"|E|={graph.num_edges} |P|={point_count}")
    return 0


def _info(args: argparse.Namespace) -> int:
    graph, points = load_graph(args.graph)
    print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges, "
          f"average degree {graph.average_degree():.2f}")
    print(f"connected: {graph.is_connected()}")
    if points is None:
        print("points: none")
    else:
        mode = "nodes" if points.restricted else "edges"
        print(f"points: {len(points)} on {mode} "
              f"(density {len(points) / graph.num_nodes:.4f})")
    db = GraphDatabase(graph, points)
    profile = expansion_profile(db)
    regime = "exponential" if profile.exponential else "local"
    print(f"expansion: {regime} (hop-ball growth {profile.growth_ratio:.2f})")
    return 0


def _parse_location(text: str):
    if "," in text:
        u, v, pos = text.split(",")
        return (int(u), int(v), float(pos))
    return int(text)


def _spec_label(spec) -> str:
    """A short printable handle for one compiled statement."""
    if spec.kind == "continuous":
        source: object = list(spec.route)
    elif spec.kind == "aggregate_nn":
        source = list(spec.group)
    elif spec.query is None:
        source = ""
    else:
        source = spec.query
    return f"{spec.kind}({source})"


def _query(args: argparse.Namespace) -> int:
    if (args.query is None) == (args.execute is None):
        raise QueryError("query takes exactly one of --query or -e/--execute")
    graph, points = load_graph(args.graph)
    db, backend = _open_backend(args, graph, points)
    if args.execute is not None:
        statements = compile_statements(args.execute)
        engine = db.engine()
        started = time.perf_counter()
        results: list = [None] * len(statements)
        plain = [(position, statement.spec)
                 for position, statement in enumerate(statements)
                 if not statement.explain]
        if plain:
            outcome = engine.run_batch([spec for _, spec in plain])
            for (position, _), result in zip(plain, outcome.results):
                results[position] = result
        for position, statement in enumerate(statements):
            if statement.explain:
                results[position] = explain_spec(engine, statement.spec)
        elapsed = time.perf_counter() - started
        io = 0
        for statement, result in zip(statements, results):
            explained = result.result if statement.explain else result
            io += explained.io
            answer = (list(explained.points) if hasattr(explained, "points")
                      else list(explained.neighbors))
            print(f"{_spec_label(statement.spec)} k={statement.spec.k} "
                  f"-> {answer}")
            if statement.explain:
                print(json.dumps(result.to_payload(), indent=2,
                                 sort_keys=True))
        print(f"cost: {len(statements)} statement(s) in "
              f"{elapsed:.4f} s, {io} page I/Os, {backend}")
        return 0
    location = _parse_location(args.query)
    result = db.rknn(location, args.k, method=args.method)
    print(f"R{args.k}NN({args.query}) = {list(result.points)}")
    print(f"cost: {result.io} page I/Os, {result.cpu_seconds * 1000:.2f} ms "
          f"CPU, {result.counters.nodes_visited} node visits, "
          f"total {result.total_seconds():.4f} s at 10 ms/I-O, {backend}")
    return 0


def _recommend(args: argparse.Namespace) -> int:
    graph, points = load_graph(args.graph)
    db = GraphDatabase(graph, points)
    recommendation = recommend_method(db, k=args.k)
    profile = recommendation.profile
    print(f"recommended method: {recommendation.method}")
    print(f"reason: {recommendation.rationale}")
    print(f"hop-ball growth ratio: {profile.growth_ratio:.2f} "
          f"({'exponential' if profile.exponential else 'local'} expansion)")
    return 0


def _report(args: argparse.Namespace) -> int:
    graph, points = load_graph(args.graph)
    db = GraphDatabase(graph, points)
    for line in network_report(db).summary_lines():
        print(line)
    return 0


def _path(args: argparse.Namespace) -> int:
    graph, _ = load_graph(args.graph)
    for node in (args.source, args.target):
        if not 0 <= node < graph.num_nodes:
            raise QueryError(f"node {node} out of range")
    if args.search == "dijkstra":
        result = shortest_path(graph, args.source, args.target)
    elif args.search == "bidirectional":
        result = bidirectional_search(graph, args.source, args.target)
    elif args.search == "astar":
        if graph.coords is None:
            raise QueryError(
                "--search astar needs coordinates; this graph has none "
                "(use --search alt, which derives bounds from the metric)"
            )
        heuristic = euclidean_heuristic(graph.coords, args.target)
        result = astar_path(graph, args.source, args.target, heuristic)
    else:
        index = LandmarkIndex.build(graph, graph.num_nodes,
                                    count=args.landmarks)
        result = astar_path(graph, args.source, args.target,
                            index.heuristic(args.target))
    if not result.found:
        print(f"no path from {args.source} to {args.target}")
        return 1
    print(f"distance: {result.distance:.4f} over {result.hops} edges "
          f"({result.nodes_settled} nodes settled by {args.search})")
    print("path:", " -> ".join(str(node) for node in result.nodes))
    return 0


def _batch(args: argparse.Namespace) -> int:
    try:
        with open(args.specs) as handle:
            specs = load_specs(handle)
    except OSError as exc:
        raise QueryError(f"cannot read {args.specs}: {exc}") from exc
    if not specs:
        raise QueryError(f"{args.specs} contains no query specs")
    if args.repeat < 1:
        raise QueryError(f"--repeat must be >= 1, got {args.repeat}")
    graph, points = load_graph(args.graph)
    db, backend = _open_backend(args, graph, points)
    engine = db.engine(cache_entries=args.cache_size, plan=not args.no_plan,
                       batch_kernel=not args.no_batch_kernel)
    for round_no in range(args.repeat):
        outcome = engine.run_batch(specs, workers=args.workers)
        if not args.quiet:
            for spec, result in zip(specs, outcome.results):
                answer = (list(result.points) if hasattr(result, "points")
                          else list(result.neighbors))
                print(f"{spec.kind}({spec.query}) k={spec.k} -> {answer} "
                      f"[{result.io} I/Os]")
        label = f"round {round_no + 1}/{args.repeat}: " if args.repeat > 1 else ""
        print(f"{label}{len(outcome)} queries in {outcome.elapsed_seconds:.4f} s "
              f"({outcome.queries_per_second:.0f} q/s), "
              f"{outcome.hits} cache hits / {outcome.misses} misses, "
              f"{outcome.io} page I/Os, {args.workers} worker(s), {backend}")
    if getattr(db, "num_shards", 0) and not args.quiet:
        for shard_id, counters in enumerate(db.shard_counters()):
            print(f"shard {shard_id}: {counters.page_reads} page reads, "
                  f"{counters.buffer_hits} buffer hits")
    return 0


def _serve(args: argparse.Namespace) -> int:
    import asyncio
    import contextlib
    import logging
    import tempfile

    if args.log_level is not None:
        logging.basicConfig(
            level=getattr(logging, args.log_level.upper()),
            format="%(asctime)s %(name)s %(levelname)s %(message)s",
        )
        logging.getLogger("repro.serve").setLevel(
            getattr(logging, args.log_level.upper())
        )
    if args.window_ms < 0:
        raise QueryError(f"--window-ms must be >= 0, got {args.window_ms}")
    if args.max_batch < 1:
        raise QueryError(f"--max-batch must be >= 1, got {args.max_batch}")
    if args.max_queue < 1:
        raise QueryError(f"--max-queue must be >= 1, got {args.max_queue}")
    if args.workers < 1:
        raise QueryError(f"--workers must be >= 1, got {args.workers}")
    if args.cache_size < 0:
        raise QueryError(f"--cache-size must be >= 0, got {args.cache_size}")
    if args.slow_query_ms < 0:
        raise QueryError(
            f"--slow-query-ms must be >= 0, got {args.slow_query_ms}"
        )
    slow_log = None
    if args.slow_query_log:
        if args.workers > 1:
            raise QueryError(
                "--slow-query-log records from the single-process server's "
                "engine; fleet workers run in separate processes (drop "
                "--workers or the slow-query flags)"
            )
        slow_log = SlowQueryLog(args.slow_query_log,
                                threshold_ms=args.slow_query_ms)
    backend_kind, _ = _resolve_backend(args)
    if args.workers > 1 and backend_kind != "compact":
        raise QueryError(
            "--workers > 1 runs a multi-process fleet over a shared CSR "
            "snapshot, which needs the compact backend: add --backend "
            "compact (or the deprecated --compact alias)"
        )
    graph, points = load_graph(args.graph)
    snapshot_dir: tempfile.TemporaryDirectory | None = None
    if args.workers > 1:
        from repro.serve.fleet import FleetServer

        # workers materialize and build their own oracles from the
        # snapshot, so skip that work on the parent's throwaway copy
        threshold = getattr(args, "compact_threshold", None)
        parent_db = CompactDatabase(graph, points, compact_threshold=threshold)
        snapshot_dir = tempfile.TemporaryDirectory(prefix="repro-serve-")
        parent_db.save_snapshot(snapshot_dir.name)
        backend = "compact"
        server = FleetServer(
            snapshot_dir.name,
            workers=args.workers,
            window=args.window_ms / 1000.0,
            max_batch=args.max_batch,
            max_queue=args.max_queue,
            materialize=args.materialize,
            oracle_landmarks=args.oracle_landmarks if args.oracle else None,
            cache_entries=args.cache_size,
        )
    else:
        from repro.serve.server import RknnServer

        db, backend = _open_backend(args, graph, points)
        server = RknnServer(
            db,
            window=args.window_ms / 1000.0,
            max_batch=args.max_batch,
            max_queue=args.max_queue,
            workers=args.workers,
            cache_entries=args.cache_size,
            slow_log=slow_log,
        )

    def ready(address: tuple[str, int]) -> None:
        host, port = address
        print(f"serving {args.graph} ({backend}) on {host}:{port} "
              f"[window {args.window_ms:g} ms, batch <= {args.max_batch}, "
              f"queue <= {args.max_queue}, {args.workers} worker(s)]",
              flush=True)
        if args.ready_file:
            with open(args.ready_file, "w") as handle:
                handle.write(f"{host}:{port}\n")

    try:
        asyncio.run(server.run(args.host, args.port, ready=ready))
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        # a stale ready file would make a supervisor believe a dead (or
        # restarting) server is already accepting connections
        if args.ready_file:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(args.ready_file)
        if snapshot_dir is not None:
            snapshot_dir.cleanup()
    return 0


def _trace(args: argparse.Namespace) -> int:
    """Pretty-print a captured trace file as an indented span tree."""
    try:
        with open(args.file) as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise QueryError(f"cannot read {args.file}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise QueryError(f"{args.file} is not JSON: {exc}") from exc
    if isinstance(payload, dict) and "trace" in payload:
        # a saved serve response or EXPLAIN payload: unwrap its trace
        payload = payload["trace"]
    try:
        lines = render_trace(payload)
    except (KeyError, TypeError, AttributeError) as exc:
        raise QueryError(
            f"{args.file} does not look like a trace payload "
            f"({{'spans': [...]}} or a span list): {exc!r}"
        ) from exc
    if not lines:
        print("(empty trace)")
        return 0
    for line in lines:
        print(line)
    return 0


def _shard_build(args: argparse.Namespace) -> int:
    graph, points = load_graph(args.graph)
    if points is not None and not isinstance(points, NodePointSet):
        raise QueryError(
            "the sharded backend serves restricted (node-placed) data sets"
        )
    point_nodes = (frozenset(node for _, node in points.items())
                   if points is not None else frozenset())
    store = ShardedGraphStore(
        graph,
        num_shards=args.shards,
        order=args.order,
        buffer_pages=args.buffer_pages,
        point_nodes=point_nodes,
    )
    print(f"cut {graph.num_nodes} nodes / {graph.num_edges} edges into "
          f"{store.num_shards} shard(s) ({args.order} order): "
          f"{store.num_cut_edges} cut edges "
          f"({store.num_cut_edges / max(1, graph.num_edges):.1%} of edges)")
    for shard in store.shards:
        print(f"shard {shard.shard_id}: {shard.num_nodes} nodes, "
              f"{shard.num_intra_edges} intra edges, "
              f"{shard.num_boundary_nodes} boundary nodes, "
              f"{shard.disk.num_pages} pages, "
              f"{shard.buffer.capacity_pages} buffer pages")
    if args.assignment:
        with open(args.assignment, "w") as handle:
            for node, shard_id in enumerate(store.plan.assignment):
                handle.write(f"{node} {shard_id}\n")
        print(f"wrote assignment to {args.assignment}")
    return 0


def _compact_build(args: argparse.Namespace) -> int:
    graph, points = load_graph(args.graph)
    if points is not None and not isinstance(points, NodePointSet):
        raise QueryError(
            "the compact backend serves restricted (node-placed) data sets"
        )
    start = time.perf_counter()
    db = CompactDatabase(graph, points, node_order=args.order)
    elapsed = time.perf_counter() - start
    # the page count the disk layout would need, without building it
    order = (bfs_order(graph) if args.order == "bfs" else hilbert_order(graph))
    sizes = [adjacency_record_size(graph.degree(v))
             for v in range(graph.num_nodes)]
    disk_pages = len(partition_nodes(order, sizes))
    csr = db.store.csr
    print(f"flattened {graph.num_nodes} nodes / {graph.num_edges} edges "
          f"into CSR arrays in {elapsed:.3f} s ({args.order} order)")
    print(f"arrays: {len(csr.offsets)} offsets + {len(csr.targets)} targets "
          f"+ {len(csr.weights)} weights = {csr.nbytes:,} bytes "
          f"(vs {disk_pages} disk pages)")
    print("adjacency reads are free: no pages, no buffer, no charged I/O")
    return 0


def _compact_compact(args: argparse.Namespace) -> int:
    graph, points = load_graph(args.graph)
    if points is not None and not isinstance(points, NodePointSet):
        raise QueryError(
            "the compact backend serves restricted (node-placed) data sets"
        )
    if args.threshold is not None and args.threshold < 1:
        raise QueryError(f"--threshold must be >= 1, got {args.threshold}")
    db = CompactDatabase(graph, points, compact_threshold=args.threshold)
    applied = 0
    if args.mutations:
        with open(args.mutations) as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    op = entry["op"]
                    if op in ("insert", "insert-point"):
                        db.insert_point(int(entry["pid"]), int(entry["node"]))
                    elif op in ("delete", "delete-point"):
                        db.delete_point(int(entry["pid"]))
                    elif op == "insert-edge":
                        db.insert_edge(int(entry["u"]), int(entry["v"]),
                                       float(entry["weight"]))
                    elif op == "delete-edge":
                        db.delete_edge(int(entry["u"]), int(entry["v"]))
                    else:
                        raise QueryError(f"unknown mutation op {op!r}")
                except (KeyError, TypeError, ValueError,
                        json.JSONDecodeError, ReproError) as exc:
                    raise QueryError(
                        f"{args.mutations}:{lineno}: bad mutation: {exc!r}"
                    ) from exc
                applied += 1
    pending = db.overlay.epoch
    print(f"applied {applied} mutation(s) through the delta overlay: "
          f"stamp {db.stamp}, {pending} pending delta op(s)")
    outcome = db.compact()
    print(f"folded {outcome.affected_nodes} delta op(s) into base "
          f"generation {db.base_generation} "
          f"({db.store.num_nodes} nodes / {db.store.num_edges} edges, "
          f"{sum(1 for _ in db.points.items())} points); "
          f"stamp {db.stamp}")
    print("readers pinned to older stamps keep their snapshot: "
          "compaction swaps the base, it never drains")
    return 0


def _oracle_build(args: argparse.Namespace) -> int:
    graph, points = load_graph(args.graph)
    if points is not None and not isinstance(points, NodePointSet):
        raise QueryError(
            "the distance oracle serves restricted (node-placed) data sets"
        )
    if args.backend == "sharded":
        db = ShardedDatabase(graph, points, num_shards=args.shards,
                             buffer_pages=args.buffer_pages)
    elif args.backend == "compact":
        db = CompactDatabase(graph, points)
    else:
        db = GraphDatabase(graph, points, buffer_pages=args.buffer_pages)
    report = db.build_oracle(args.landmarks, seed=args.seed,
                             strategy=args.strategy)
    print(f"selected {len(report.landmarks)} landmarks "
          f"({args.strategy}): {list(report.landmarks)}")
    print(f"labels: {report.entries} (landmark, node) distances over "
          f"{graph.num_nodes} nodes, {report.pages} pages on the "
          f"{args.backend} store")
    print(f"build cost: {report.io} page I/Os, "
          f"{report.cpu_seconds * 1000:.2f} ms CPU, "
          f"total {report.total_seconds():.4f} s at 10 ms/I-O")
    print("queries with the oracle attached return identical answers "
          "while expanding fewer edges")
    return 0


def _plan(args: argparse.Namespace) -> int:
    graph, points = load_graph(args.graph)
    if points is None or len(points) == 0:
        raise QueryError("planning needs a data set with points")
    db = GraphDatabase(graph, points)
    if args.materialize > 0:
        db.materialize(args.materialize)
    planner = CalibratingPlanner(db, samples=args.samples)
    print(planner.plan_for(args.k).explain())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
