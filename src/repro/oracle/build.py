"""Oracle preprocessing: landmark selection and per-backend labeling.

Selection uses the farthest-point heuristic (each new landmark is the
node farthest from the current set), which pushes landmarks to the
periphery where triangle-inequality bounds are tight; ``"random"`` is
the cheap baseline.  Labeling runs one single-source expansion per
landmark, with a kernel per storage backend:

* :func:`store_landmark_distances` -- Dijkstra over any object with
  the ``neighbors`` protocol.  Over a
  :class:`~repro.storage.disk.DiskGraph` every adjacency read is
  charged through the buffer; over a sharded store the same traversal
  decomposes into per-shard frontiers stitched at boundary vertices,
  each read charged to the owning shard.
* :func:`csr_landmark_distances` -- Dijkstra whose relaxation step is
  vectorized over the CSR flat arrays (NumPy slice arithmetic when
  available, plain slicing otherwise); no pages, no charging.

All kernels return the same dense table shape, so the oracle built by
any backend is interchangeable with the others (each backend's tables
are exact distances; bound soundness never depends on which kernel
produced them).
"""

from __future__ import annotations

import heapq
import math
import random
from typing import Callable, Sequence

from repro.errors import QueryError

try:  # pragma: no cover - exercised through whichever path is available
    import numpy as _np
except ImportError:  # pragma: no cover - the kernels degrade gracefully
    _np = None

#: Landmark-selection strategies accepted by :func:`select_landmarks`.
STRATEGIES = ("farthest", "random")

#: Default landmark count: enough for tight grid/spatial bounds while
#: keeping the label table at 8 doubles per node.
DEFAULT_LANDMARKS = 8

DistanceFn = Callable[[int], list[float]]


def store_landmark_distances(store, num_nodes: int, source: int) -> list[float]:
    """Single-source Dijkstra over a paged store's ``neighbors`` protocol.

    Reads are whatever the store charges them as: buffered logical
    reads for the single disk store, per-shard charged reads (crossing
    shard boundaries through the boundary tables) for a sharded store.

    Parameters
    ----------
    store:
        Any object exposing ``neighbors(node) -> ((nbr, weight), ...)``.
    num_nodes:
        Dense node-id range of the graph.
    source:
        The landmark whose table is being computed.

    Returns
    -------
    list of float
        ``table[v] = d(source, v)`` with ``inf`` for unreachable nodes.
    """
    dist = [math.inf] * num_nodes
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if d > dist[node]:
            continue
        for nbr, weight in store.neighbors(node):
            nd = d + weight
            if nd < dist[nbr]:
                dist[nbr] = nd
                heapq.heappush(heap, (nd, nbr))
    return dist


def csr_landmark_distances(csr, source: int) -> list[float]:
    """Single-source Dijkstra with CSR-sliced (vectorized) relaxation.

    Each settled node relaxes its whole adjacency range
    ``offsets[v]:offsets[v+1]`` at once -- as NumPy array arithmetic
    when NumPy is installed, as flat-array slices otherwise.  Free:
    the compact backend has no pages to charge.

    Parameters
    ----------
    csr:
        A :class:`~repro.compact.csr.CSRGraph` (``offsets`` /
        ``targets`` / ``weights`` flat arrays).
    source:
        The landmark whose table is being computed.

    Returns
    -------
    list of float
        ``table[v] = d(source, v)`` with ``inf`` for unreachable nodes.
    """
    num_nodes = csr.num_nodes
    offsets, targets, weights = csr.offsets, csr.targets, csr.weights
    if _np is not None:
        np_targets = _np.asarray(targets, dtype=_np.int64)
        np_weights = _np.asarray(weights, dtype=_np.float64)
        dist = _np.full(num_nodes, _np.inf, dtype=_np.float64)
        dist[source] = 0.0
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist[node]:
                continue
            lo, hi = offsets[node], offsets[node + 1]
            if lo == hi:
                continue
            span_targets = np_targets[lo:hi]
            candidate = d + np_weights[lo:hi]
            improved = candidate < dist[span_targets]
            if not improved.any():
                continue
            hits = span_targets[improved]
            values = candidate[improved]
            dist[hits] = values
            for nbr, nd in zip(hits.tolist(), values.tolist()):
                heapq.heappush(heap, (nd, nbr))
        return dist.tolist()
    dist_list = [math.inf] * num_nodes
    dist_list[source] = 0.0
    heap = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if d > dist_list[node]:
            continue
        lo, hi = offsets[node], offsets[node + 1]
        for nbr, weight in zip(targets[lo:hi], weights[lo:hi]):
            nd = d + weight
            if nd < dist_list[nbr]:
                dist_list[nbr] = nd
                heapq.heappush(heap, (nd, nbr))
    return dist_list


def select_landmarks(
    distance_fn: DistanceFn,
    num_nodes: int,
    count: int = DEFAULT_LANDMARKS,
    *,
    seed: int = 0,
    strategy: str = "farthest",
) -> tuple[list[int], list[list[float]]]:
    """Pick ``count`` landmarks and compute their distance tables.

    Parameters
    ----------
    distance_fn:
        Backend kernel mapping a source node to its dense distance
        table (one of the ``*_landmark_distances`` functions, bound to
        a store).
    num_nodes:
        Dense node-id range.
    count:
        Number of landmarks ``L``.
    seed:
        Seeds the first pick (and every pick under ``"random"``).
    strategy:
        ``"farthest"`` (default) or ``"random"``.

    Returns
    -------
    (landmarks, tables)
        Selection-ordered landmark ids and their distance tables.
    """
    if count < 1:
        raise QueryError(f"need at least one landmark, got {count}")
    if count > num_nodes:
        raise QueryError(f"cannot pick {count} landmarks from {num_nodes} nodes")
    if strategy not in STRATEGIES:
        raise QueryError(
            f"unknown landmark strategy {strategy!r}; choose one of {STRATEGIES}"
        )
    rng = random.Random(seed)
    landmarks = [rng.randrange(num_nodes)]
    tables = [distance_fn(landmarks[0])]
    while len(landmarks) < count:
        if strategy == "random":
            nxt = rng.choice([v for v in range(num_nodes) if v not in landmarks])
        else:
            nxt = _farthest_node(tables, num_nodes, landmarks)
        landmarks.append(nxt)
        tables.append(distance_fn(nxt))
    return landmarks, tables


def _farthest_node(
    tables: Sequence[Sequence[float]], num_nodes: int, chosen: Sequence[int]
) -> int:
    """The node maximizing the distance to its nearest chosen landmark.

    Nodes unreachable from every current landmark sit in an uncovered
    component; the lowest-id one is preferred outright, so disconnected
    graphs get at least one landmark per component (bounds of ``inf``
    then correctly separate components).
    """
    chosen_set = set(chosen)
    best_node = -1
    best_dist = -1.0
    for node in range(num_nodes):
        if node in chosen_set:
            continue
        nearest = min(table[node] for table in tables)
        if math.isinf(nearest):
            return node  # uncovered component: claim it immediately
        if nearest > best_dist:
            best_dist = nearest
            best_node = node
    if best_node < 0:
        raise QueryError("no candidate nodes left for landmarks")
    return best_node
