"""The bound-provider protocol consumed by the expansion loops.

The paper's algorithms decline Euclidean lower bounds because they may
be absent (P2P graphs) or invalid (travel-time weights); the landmark
oracle (:mod:`repro.oracle.oracle`) derives bounds from the network
metric itself, so it applies to every graph the paper considers.  Both
kinds of bound -- and their combination -- share one tiny protocol:

* ``lower_bound(u, v)`` never exceeds the true network distance
  ``d(u, v)`` (``0.0`` when nothing is known);
* ``upper_bound(u, v)`` never undercuts it (``inf`` when nothing is
  known).

Anything honoring the protocol can be attached to a network view
(``view.bounds``) and the kNN/range/RkNN expansion loops will consult
it; answers are unaffected by construction (the pruning rules in
:mod:`repro.oracle.prune` only skip provably irrelevant work).
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence, runtime_checkable


@runtime_checkable
class LowerBoundProvider(Protocol):
    """Admissible distance bounds between two graph nodes."""

    def lower_bound(self, u: int, v: int) -> float:
        """A value never exceeding the network distance ``d(u, v)``."""

    def upper_bound(self, u: int, v: int) -> float:
        """A value never undercutting the network distance ``d(u, v)``."""


class EuclideanBounds:
    """Euclidean lower bounds over node coordinates (no upper bounds).

    Valid exactly when every edge weight is at least the Euclidean
    length of the edge (e.g. the SF-style spatial generator, where
    weights *are* Euclidean lengths) -- the same admissibility
    condition as :func:`repro.paths.astar.euclidean_heuristic`.
    """

    def __init__(self, coords: Sequence[tuple[float, float]]):
        self._coords = coords

    def lower_bound(self, u: int, v: int) -> float:
        """Straight-line distance between the two node coordinates."""
        ux, uy = self._coords[u]
        vx, vy = self._coords[v]
        return math.hypot(ux - vx, uy - vy)

    def upper_bound(self, u: int, v: int) -> float:
        """Always ``inf``: coordinates say nothing about path existence."""
        return math.inf


class CombinedBounds:
    """Max-combine lower bounds (and min-combine upper bounds) of two
    providers.

    The combination is admissible whenever both inputs are: the larger
    of two lower bounds and the smaller of two upper bounds are still
    bounds.  This is the paper-era "Euclidean restriction" combined
    with the landmark oracle: attach
    ``CombinedBounds(EuclideanBounds(coords), oracle)`` to a view and
    every probe uses the tighter of the two on each pair.
    """

    def __init__(self, first: LowerBoundProvider, second: LowerBoundProvider):
        self._first = first
        self._second = second

    def lower_bound(self, u: int, v: int) -> float:
        """The larger (tighter) of the two lower bounds."""
        return max(self._first.lower_bound(u, v), self._second.lower_bound(u, v))

    def upper_bound(self, u: int, v: int) -> float:
        """The smaller (tighter) of the two upper bounds."""
        return min(self._first.upper_bound(u, v), self._second.upper_bound(u, v))


class LowerOnlyBounds:
    """A provider degraded to its lower bounds (``upper_bound`` is inf).

    Edge *deletions* only grow shortest-path distances, so lower
    bounds computed on the pre-deletion network stay admissible --
    each is at most the old distance, which is at most the new one.
    Upper bounds break the other way (an old ``d(u,l) + d(l,v)`` path
    may no longer exist), so a landmark oracle survives a deletion
    only in degraded form.  The delta overlay
    (:meth:`repro.compact.db.CompactDatabase.delete_edge`) wraps the
    attached oracle in this class instead of discarding it.

    Every other attribute delegates to the wrapped provider, so the
    vectorized batch kernel's row filter -- which reads the landmark
    label matrix but only ever derives *lower* bounds from it -- keeps
    working on a degraded oracle.
    """

    def __init__(self, inner: LowerBoundProvider):
        self._inner = inner

    def lower_bound(self, u: int, v: int) -> float:
        """The wrapped provider's (still admissible) lower bound."""
        return self._inner.lower_bound(u, v)

    def upper_bound(self, u: int, v: int) -> float:
        """Always ``inf``: old upper bounds may undercut new distances."""
        return math.inf

    def __getattr__(self, name: str):
        """Delegate everything else (labels, landmark counts) inward."""
        return getattr(self._inner, name)
