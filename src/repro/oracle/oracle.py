"""The ALT landmark distance oracle (triangle-inequality bounds).

Pick ``L`` landmark nodes, precompute the exact network distance from
every landmark to every node (one Dijkstra per landmark), and bound
any remaining distance both ways with the triangle inequality::

    d(u, v) >= |d(K, u) - d(K, v)|     (lower bound)
    d(u, v) <=  d(u, K) + d(K, v)      (upper bound)

for every landmark ``K``.  Both bounds hold *by construction of the
network metric*, so -- unlike Euclidean bounds -- they are valid on
P2P graphs, travel-time weights, and every other network the paper
considers.  Preprocessing costs one single-source expansion per
landmark and ``O(L * |V|)`` storage: the same partial-materialization
trade-off as the paper's Section 4.1 K-NN lists, applied to distance
bounding instead of RkNN search.

:class:`DistanceOracle` is the query-time object: an immutable label
table held in flat arrays (free look-ups, exactly like the in-memory
node-point index of the paper's storage scheme), honoring the
:class:`~repro.oracle.bounds.LowerBoundProvider` protocol the
expansion loops consult.  The persistent form is the paged
:class:`~repro.oracle.store.LandmarkStore`.
"""

from __future__ import annotations

import math
from array import array
from typing import Iterable, Sequence

from repro.errors import QueryError

_INF = math.inf


class DistanceOracle:
    """Landmark label table answering two-sided network-distance bounds.

    Parameters
    ----------
    landmarks:
        The selected landmark node ids, in selection order.
    tables:
        One dense distance table per landmark: ``tables[i][v]`` is the
        exact network distance between landmark ``i`` and node ``v``
        (``inf`` when unreachable).  All tables must cover the same
        node count.
    """

    def __init__(self, landmarks: Sequence[int], tables: Sequence[Sequence[float]]):
        if not landmarks:
            raise QueryError("at least one landmark is required")
        if len(landmarks) != len(tables):
            raise QueryError("one distance table per landmark is required")
        sizes = {len(table) for table in tables}
        if len(sizes) != 1:
            raise QueryError("landmark tables must cover the same node count")
        self.landmarks = tuple(int(node) for node in landmarks)
        self.num_nodes = sizes.pop()
        self.num_landmarks = len(self.landmarks)
        # node-major flat layout: label(v) is one contiguous slice
        labels = array("d", bytes(8 * self.num_nodes * self.num_landmarks))
        for i, table in enumerate(tables):
            stride = self.num_landmarks
            for v, dist in enumerate(table):
                labels[v * stride + i] = dist
        self._labels = labels
        self._matrix = None

    @classmethod
    def from_labels(
        cls, landmarks: Sequence[int], labels: Iterable[Sequence[float]]
    ) -> "DistanceOracle":
        """Build from node-major labels (one ``L``-tuple per node)."""
        rows = list(labels)
        tables = [[row[i] for row in rows] for i in range(len(landmarks))]
        return cls(landmarks, tables)

    def label(self, node: int) -> tuple[float, ...]:
        """The ``L`` landmark distances of ``node`` (free look-up)."""
        if not 0 <= node < self.num_nodes:
            raise QueryError(f"node {node} out of range")
        stride = self.num_landmarks
        return tuple(self._labels[node * stride: (node + 1) * stride])

    def lower_bound(self, u: int, v: int) -> float:
        """``max_K |d(K, u) - d(K, v)|``: admissible on any graph.

        A landmark reaching exactly one of the two nodes proves them
        disconnected (``inf``); a landmark reaching neither
        contributes nothing.
        """
        if u == v:
            return 0.0
        stride = self.num_landmarks
        labels = self._labels
        uoff = u * stride
        voff = v * stride
        best = 0.0
        for i in range(stride):
            du = labels[uoff + i]
            dv = labels[voff + i]
            gap = abs(du - dv)
            if gap != gap:  # inf - inf: both unreachable, no information
                continue
            if gap > best:
                best = gap
        return best

    def upper_bound(self, u: int, v: int) -> float:
        """``min_K d(u, K) + d(K, v)``: a real path through a landmark."""
        if u == v:
            return 0.0
        stride = self.num_landmarks
        labels = self._labels
        uoff = u * stride
        voff = v * stride
        best = _INF
        for i in range(stride):
            total = labels[uoff + i] + labels[voff + i]
            if total < best:
                best = total
        return best

    def labels_matrix(self):
        """Node-major ``(num_nodes, num_landmarks)`` numpy label view.

        Zero-copy over the flat label array (buffer protocol) and
        memoized, so the vectorized batch kernel
        (:mod:`repro.compact.batch`) can evaluate whole candidate sets
        of ALT bounds in one broadcast.  The view is read-only; the
        flat array stays the single source of truth.  Raises
        :class:`~repro.errors.QueryError` when numpy is unavailable.
        """
        if self._matrix is None:
            try:
                import numpy as np
            except ImportError as exc:  # pragma: no cover - numpy in CI
                raise QueryError(
                    "numpy is required for the vectorized label view"
                ) from exc
            matrix = np.frombuffer(self._labels, dtype=np.float64)
            matrix = matrix.reshape(self.num_nodes, self.num_landmarks)
            matrix.flags.writeable = False
            self._matrix = matrix
        return self._matrix

    @property
    def storage_entries(self) -> int:
        """Materialized ``(landmark, node)`` distance pairs."""
        return self.num_nodes * self.num_landmarks


def resolve_oracle_source(source, num_nodes: int):
    """Normalize an ``open_oracle()`` argument (shared by every facade).

    Accepts a persisted :class:`~repro.oracle.store.LandmarkStore`
    (decoded uncharged into a fresh oracle) or a ready
    :class:`DistanceOracle`; anything else -- or a node-count mismatch
    with the target graph -- raises :class:`~repro.errors.QueryError`.

    Returns
    -------
    (oracle, store, pages)
        The attached oracle, its backing store (``None`` for
        memory-only oracles) and the store's page count (0 without
        one).
    """
    from repro.oracle.store import LandmarkStore

    if isinstance(source, LandmarkStore):
        oracle = DistanceOracle.from_labels(
            source.landmarks, source.labels_snapshot()
        )
        store, pages = source, source.num_pages
    elif isinstance(source, DistanceOracle):
        oracle, store, pages = source, None, 0
    else:
        raise QueryError(
            "open_oracle() takes a LandmarkStore or a DistanceOracle, "
            f"got {type(source).__name__}"
        )
    if oracle.num_nodes != num_nodes:
        raise QueryError(
            f"oracle covers {oracle.num_nodes} nodes, "
            f"graph has {num_nodes}"
        )
    return oracle, store, pages
