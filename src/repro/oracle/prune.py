"""Answer-preserving pruning rules driven by a bound provider.

Every rule here skips work only when the oracle's bounds *prove* the
skipped work could not have affected the answer, with margins wider
than floating-point path-sum noise (the ``EPS`` guard band of
:mod:`repro.core.numeric` sits at 1e-9 relative, while accumulated
path noise is ~1e-13 relative), so query answers with a bound provider
attached are bitwise identical to answers without one -- only I/O,
node visits and expanded-edge counts shrink.

Three rules, consumed by :mod:`repro.core.nn`:

* **empty-probe skip** -- a ``range-NN(n, k, e)`` probe returns ``[]``
  without expanding anything when every candidate point ``p`` has
  ``lower_bound(n, p) >= e`` (its true distance can then never pass
  the probe's *strict* radius test);
* **probe horizon** -- when the k-th smallest ``upper_bound(n, p)``
  lands strictly inside the radius (beyond the tie guard band), the
  probe is guaranteed to fill all ``k`` slots within that horizon, so
  its expansion can stop there instead of at the radius;
* **verification short-circuit** -- ``verify(p, k, q)`` is decided
  without expansion when the oracle proves at least ``k`` points
  strictly closer to ``p`` than the query (upper bounds below the
  query's lower bound: *fail*), or proves fewer than ``k`` points
  could possibly be strictly closer (lower bounds above the query's
  upper bound: *pass*).  Inconclusive cases fall back to the exact
  expansion, with the query's oracle upper bound tightening the
  expansion's termination bound.

Soundness of the tie-band margins: a skipped point must differ from
the decision threshold by more than ``EPS`` relative, which dominates
cross-expansion path-sum noise by four orders of magnitude, so no
floating-point tie can be classified differently by the oracle and by
the expansion it replaces.

Every rule scans the view's point set (``O(P * L)`` bound look-ups
per probe/verification), which only pays off when the points are
sparse relative to the graph -- exactly the regime where expansions
are deep.  :func:`scan_is_profitable` gates the consultation: on
dense point sets the rules step aside (answers are identical either
way; only who does the work changes), so attaching an oracle can
never make a query's CPU cost blow past its expansion cost.
"""

from __future__ import annotations

import math
from typing import AbstractSet

from repro.core.numeric import inflate_bound, strictly_less, tie_threshold

#: Horizon value meaning "no tightening applies" (expand as usual).
NO_HORIZON = math.inf

#: Minimum per-scan budget: below this many bound look-ups the scan is
#: always cheap enough to try.
MIN_SCAN_BUDGET = 64


def scan_is_profitable(num_points: int, num_landmarks: int,
                       num_nodes: int) -> bool:
    """Whether an ``O(P * L)`` candidate scan is worth attempting.

    A probe's scan costs ``P * L`` comparisons while the expansion it
    can save visits at most the whole graph; bounding the scan by the
    node count keeps the oracle's CPU overhead within the work it
    displaces.  Dense point sets (``P * L > |V|``) answer probes after
    a few expansion steps anyway, so the rules stand down there.
    """
    return num_points * num_landmarks <= max(MIN_SCAN_BUDGET, num_nodes)


def _scan_gate(view, bounds) -> bool:
    """Apply :func:`scan_is_profitable` to a view/provider pair."""
    num_landmarks = getattr(bounds, "num_landmarks", 1)
    return scan_is_profitable(view.num_points, num_landmarks, view.num_nodes)


def probe_plan(
    view, node: int, k: int, radius: float, exclude: AbstractSet[int]
) -> tuple[bool, float]:
    """Plan a range-NN probe at ``node`` under the view's bounds.

    Parameters
    ----------
    view:
        A restricted network view; consulted for its ``bounds``
        provider and its point index.
    node / k / radius / exclude:
        The probe's arguments (see :func:`repro.core.nn.range_nn`).

    Returns
    -------
    (skip, horizon)
        ``skip=True`` proves the probe returns ``[]``; otherwise
        ``horizon`` is a distance at which the probe's expansion may
        stop early (``inf`` when no tightening applies).
    """
    bounds = getattr(view, "bounds", None)
    if bounds is None or not _scan_gate(view, bounds):
        return False, NO_HORIZON
    possible_ubs: list[float] = []
    all_ubs: list[float] = []
    for pid in view.point_ids():
        if pid in exclude:
            continue
        pnode = view.node_of(pid)
        if pnode == node:
            lb, ub = 0.0, 0.0
        else:
            lb = bounds.lower_bound(node, pnode)
            ub = bounds.upper_bound(node, pnode)
        all_ubs.append(ub)
        if lb < radius:
            possible_ubs.append(ub)
    if not possible_ubs:
        # No candidate can be strictly inside the radius: the probe is
        # provably empty.
        view.tracker.oracle_prunes += 1
        return True, NO_HORIZON
    if len(all_ubs) >= k:
        all_ubs.sort()
        horizon = inflate_bound(all_ubs[k - 1])
        if horizon < tie_threshold(radius):
            # k candidates provably sit strictly inside the radius and
            # within the horizon: the probe fills all k slots there.
            view.tracker.oracle_prunes += 1
            return False, horizon
        return False, inflate_bound(radius)
    # Fewer than k candidates exist at all: the probe returns every
    # qualifying candidate, and all of them lie within the largest
    # upper bound among the possible ones.
    horizon = inflate_bound(max(possible_ubs))
    if math.isfinite(horizon):
        view.tracker.oracle_prunes += 1
    return False, horizon


def verify_plan(
    view,
    pid: int,
    k: int,
    targets: AbstractSet[int],
    bound: float,
    exclude: AbstractSet[int],
) -> tuple[bool | None, float]:
    """Decide (or tighten) a verification under the view's bounds.

    Parameters
    ----------
    view:
        A restricted network view; consulted for its ``bounds``
        provider and its point index.
    pid / k / targets / bound / exclude:
        The verification's arguments (see
        :func:`repro.core.nn.verify`); ``bound`` upper-bounds the
        point-to-query distance.

    Returns
    -------
    (decision, bound)
        ``decision`` is ``True``/``False`` when the oracle settles the
        verification outright, ``None`` when the exact expansion must
        run; ``bound`` is the (possibly tightened) upper bound to run
        it with.
    """
    bounds = getattr(view, "bounds", None)
    if bounds is None or not _scan_gate(view, bounds):
        return None, bound
    pnode = view.node_of(pid)
    lb_query = math.inf
    ub_query = bound
    for target in targets:
        if target == pnode:
            lb_query = 0.0
            ub_query = 0.0
            break
        lb_query = min(lb_query, bounds.lower_bound(pnode, target))
        ub_query = min(ub_query, bounds.upper_bound(pnode, target))
    certainly_closer = 0
    possibly_closer = 0
    for other in view.point_ids():
        if other == pid or other in exclude:
            continue
        onode = view.node_of(other)
        if onode == pnode:
            other_lb, other_ub = 0.0, 0.0
        else:
            other_lb = bounds.lower_bound(pnode, onode)
            other_ub = bounds.upper_bound(pnode, onode)
        if strictly_less(other_ub, lb_query):
            certainly_closer += 1
            if certainly_closer >= k:
                view.tracker.oracle_prunes += 1
                return False, ub_query
        if not strictly_less(ub_query, other_lb):
            possibly_closer += 1
    if possibly_closer < k and math.isfinite(ub_query):
        # Fewer than k points can be strictly closer to p than the
        # query, and the finite upper bound proves the query reachable:
        # the verification passes without expanding.
        view.tracker.oracle_prunes += 1
        return True, ub_query
    return None, ub_query
