"""Disk-paged persistence for the oracle's landmark label table.

The label table is ``O(L * |V|)`` doubles -- the same shape and
storage treatment as the materialized K-NN file of Section 4.1: one
fixed-size record per node, grouped into pages by the packing order
of the adjacency file, behind an in-memory node index.  ``get`` is a
charged logical read through the shared buffer; ``labels_snapshot``
decodes every page once *outside* the charged path, which is how
:meth:`open_oracle` rebuilds the free in-memory
:class:`~repro.oracle.oracle.DistanceOracle` from a persisted table
(exactly like the compact backend decodes adjacency pages uncharged).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import StorageError
from repro.storage.buffer import BufferManager
from repro.storage.page import (
    DEFAULT_PAGE_SIZE,
    LandmarkRecord,
    decode_landmark_page,
    encode_landmark_page,
    landmark_record_size,
)
from repro.graph.partition import partition_nodes


class LandmarkStore:
    """Paged landmark-label file: per-node distances to each landmark.

    Parameters
    ----------
    num_nodes:
        Node count of the graph the labels cover.
    landmarks:
        The landmark node ids, in label-slot order.
    tables:
        One dense distance table per landmark (``tables[i][v]`` is the
        distance between landmark ``i`` and node ``v``).
    buffer:
        Buffer manager charging logical reads of label records.
    page_size / order:
        Page layout parameters; ``order`` defaults to node-id order
        and should be the adjacency file's packing order so label
        locality follows expansion locality.
    """

    _instances = 0

    def __init__(
        self,
        num_nodes: int,
        landmarks: Sequence[int],
        tables: Sequence[Sequence[float]],
        buffer: BufferManager,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        order: Sequence[int] | None = None,
    ):
        if not landmarks:
            raise StorageError("at least one landmark is required")
        if len(landmarks) != len(tables):
            raise StorageError("one distance table per landmark is required")
        for table in tables:
            if len(table) != num_nodes:
                raise StorageError("landmark tables must cover every node")
        LandmarkStore._instances += 1
        self.FILE_TAG = f"lm{LandmarkStore._instances}"
        self.num_nodes = num_nodes
        self.landmarks = tuple(int(node) for node in landmarks)
        self.num_landmarks = len(self.landmarks)
        self.page_size = page_size
        self.buffer = buffer
        record = landmark_record_size(self.num_landmarks)
        if order is None:
            order = range(num_nodes)
        node_pages = partition_nodes(list(order), [record] * num_nodes,
                                     page_size=page_size)
        self._pages: list[bytes] = []
        self._spans: list[int] = []
        self._page_of: list[int] = [-1] * num_nodes
        for page_no, nodes in enumerate(node_pages):
            records = [
                LandmarkRecord(v, tuple(float(table[v]) for table in tables))
                for v in nodes
            ]
            payload = encode_landmark_page(records)
            self._pages.append(payload)
            self._spans.append(max(1, -(-len(payload) // page_size)))
            for v in nodes:
                self._page_of[v] = page_no
        if any(p < 0 for p in self._page_of):
            raise StorageError("page order does not cover every node")

    @property
    def num_pages(self) -> int:
        """Number of label pages in the file."""
        return len(self._pages)

    def get(self, node: int) -> tuple[float, ...]:
        """Label of ``node``: a charged logical read through the buffer."""
        if not 0 <= node < self.num_nodes:
            raise StorageError(f"node {node} out of range")
        page_no = self._page_of[node]
        page = self.buffer.get(
            (self.FILE_TAG, page_no),
            lambda: self._load_page(page_no),
            span=self._spans[page_no],
        )
        return page[node]

    def labels_snapshot(self) -> list[tuple[float, ...]]:
        """Every node's label, decoded uncharged (bulk oracle load)."""
        labels: list[tuple[float, ...]] = [()] * self.num_nodes
        for payload in self._pages:
            for rec in decode_landmark_page(payload, self.num_landmarks):
                labels[rec.node] = rec.distances
        return labels

    def _load_page(self, page_no: int) -> dict[int, tuple[float, ...]]:
        records = decode_landmark_page(self._pages[page_no], self.num_landmarks)
        return {rec.node: rec.distances for rec in records}
