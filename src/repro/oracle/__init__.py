"""Landmark distance oracle: ALT-style bounds for the query loops.

Build once per database (``db.build_oracle()``), persist as a paged
label file (:class:`~repro.oracle.store.LandmarkStore`), consult for
free at query time (:class:`~repro.oracle.oracle.DistanceOracle`
through the :class:`~repro.oracle.bounds.LowerBoundProvider`
protocol).  The pruning rules (:mod:`repro.oracle.prune`) are
answer-preserving: queries with the oracle attached return bitwise
identical results while expanding fewer edges and reading fewer
pages.
"""

from repro.oracle.bounds import (
    CombinedBounds,
    EuclideanBounds,
    LowerBoundProvider,
    LowerOnlyBounds,
)
from repro.oracle.build import (
    DEFAULT_LANDMARKS,
    STRATEGIES,
    csr_landmark_distances,
    select_landmarks,
    store_landmark_distances,
)
from repro.oracle.oracle import DistanceOracle, resolve_oracle_source
from repro.oracle.store import LandmarkStore

__all__ = [
    "CombinedBounds",
    "DEFAULT_LANDMARKS",
    "DistanceOracle",
    "EuclideanBounds",
    "LandmarkStore",
    "LowerBoundProvider",
    "LowerOnlyBounds",
    "STRATEGIES",
    "csr_landmark_distances",
    "resolve_oracle_source",
    "select_landmarks",
    "store_landmark_distances",
]
