"""RNN aggregates over update streams (paper Section 2.1, ref. [10]).

Korn et al. maintain aggregate results over the RNNs of a set of
standing query points while the data arrive as a stream.  This package
provides the graph analogue: :class:`~repro.streams.monitor.RnnMonitor`
keeps the exact ``RkNN`` result (and its aggregates) of every standing
query up to date under point insertions and deletions.

The monitor is built from parts the paper already supplies: the
materialized K-NN lists of Section 4.1 give each point's k-th-neighbor
radius and are maintained incrementally by the all-NN insert/delete
algorithms (Fig. 10); one distance field per standing query (the graph
is static, so it never changes) turns membership into a constant-time
comparison ``d(p, q) <= d(p, p_k(p))``.
"""

from repro.streams.monitor import (
    BichromaticRnnMonitor,
    MembershipEvent,
    RnnMonitor,
)

__all__ = ["BichromaticRnnMonitor", "MembershipEvent", "RnnMonitor"]
