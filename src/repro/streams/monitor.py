"""Continuous RkNN monitoring under point insertions and deletions.

:class:`RnnMonitor` registers a set of standing queries (nodes of the
graph) and maintains, for each, the exact monochromatic ``RkNN``
result while data points come and go.  Design:

* **Distance fields.**  The graph is static, so ``d(q, n)`` for a
  standing query ``q`` and any node ``n`` never changes.  One
  single-source Dijkstra per query at registration time materializes
  the field (an in-memory planning structure, like the paper's node-id
  index).
* **Neighbor radii.**  A point ``p`` on node ``n`` belongs to
  ``RkNN(q)`` iff fewer than ``k`` other points are strictly closer to
  ``p`` than ``q`` -- equivalently ``d(p, q)`` is within ``p``'s
  k-th-other-point radius.  The radius comes straight from the
  materialized K-NN list of ``n`` (capacity ``k + 1``: the list also
  holds ``p`` itself at distance 0), which the Section 4.1 insert and
  delete algorithms keep up to date.

Each update therefore costs one materialized-list maintenance pass
(local network expansion) plus a constant-time membership check per
(point, query) pair -- no query is ever re-run from scratch.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

from repro.api import GraphDatabase, Location
from repro.core.numeric import tie_threshold
from repro.errors import QueryError
from repro.paths.dijkstra import single_source_distances


@dataclass(frozen=True)
class MembershipEvent:
    """One result-set change produced by a stream update."""

    query_id: int
    point_id: int
    kind: str  # "join" or "leave"


class BichromaticRnnMonitor:
    """Continuous *bichromatic* RkNN results for standing queries.

    The standing queries double as the reference set Q (the paper's
    Fig. 1b: restaurants compete with rival restaurants): a data point
    belongs to ``bRkNN(q)`` when fewer than ``k`` *other standing
    queries* are strictly closer to it than ``q``.  Because queries are
    fixed and the graph is static, membership depends only on the
    precomputed distance fields -- each stream update costs one field
    lookup per (point, query) pair and no network traversal at all.
    """

    def __init__(self, db: GraphDatabase, queries: dict[int, int], k: int = 1):
        if not db.restricted:
            raise QueryError("BichromaticRnnMonitor requires a restricted network")
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        if len(queries) < 2:
            raise QueryError(
                "bichromatic monitoring needs at least two standing queries "
                "(each competes with the others)"
            )
        for qid, node in queries.items():
            if not 0 <= node < db.graph.num_nodes:
                raise QueryError(f"query {qid} node {node} out of range")
        self.db = db
        self.k = k
        self._queries = dict(queries)
        self._fields = {
            qid: single_source_distances(db.graph, node)
            for qid, node in queries.items()
        }
        self._results: dict[int, set[int]] = {qid: set() for qid in queries}
        self._refresh()

    def insert(self, pid: int, location: Location) -> list[MembershipEvent]:
        """Feed a point insertion; returns the membership changes."""
        self.db.insert_point(pid, location)
        return self._refresh()

    def delete(self, pid: int) -> list[MembershipEvent]:
        """Feed a point deletion; returns the membership changes."""
        self.db.delete_point(pid)
        return self._refresh()

    def refresh(self) -> list[MembershipEvent]:
        """Re-evaluate after an out-of-band database update.

        For callers that apply ``insert_point`` / ``delete_point``
        directly on the database (the serving tier routes one mutation
        to many monitors): recomputes every membership and returns the
        changes since the last evaluation.
        """
        return self._refresh()

    def result(self, qid: int) -> list[int]:
        """Current ``bRkNN`` members of a standing query (sorted)."""
        try:
            return sorted(self._results[qid])
        except KeyError:
            raise QueryError(f"unknown standing query {qid}") from None

    def counts(self) -> dict[int, int]:
        """``query id -> |bRkNN(q)|`` for every standing query."""
        return {qid: len(members) for qid, members in self._results.items()}

    def total_influence(self) -> int:
        """Sum of result sizes over all standing queries."""
        return sum(len(members) for members in self._results.values())

    def most_influential(self) -> tuple[int, int]:
        """``(query id, result size)`` of the largest current result."""
        qid = max(self._results, key=lambda q: (len(self._results[q]), -q))
        return qid, len(self._results[qid])

    def _refresh(self) -> list[MembershipEvent]:
        events: list[MembershipEvent] = []
        fresh: dict[int, set[int]] = {qid: set() for qid in self._queries}
        for pid in self.db.points.ids():
            node = self.db.points.node_of(pid)
            for qid, field in self._fields.items():
                dq = field.get(node)
                if dq is None:
                    continue
                threshold = tie_threshold(dq)
                closer = sum(
                    1
                    for other, other_field in self._fields.items()
                    if other != qid and other_field.get(node, _INF) < threshold
                )
                if closer < self.k:
                    fresh[qid].add(pid)
        for qid, members in fresh.items():
            for pid in sorted(members - self._results[qid]):
                events.append(MembershipEvent(qid, pid, "join"))
            for pid in sorted(self._results[qid] - members):
                events.append(MembershipEvent(qid, pid, "leave"))
        self._results = fresh
        return events


_INF = float("inf")


class RnnMonitor:
    """Exact continuous RkNN results for a set of standing queries."""

    def __init__(self, db: GraphDatabase, queries: dict[int, int], k: int = 1):
        """Register ``queries`` (query id -> node id) over ``db``.

        The database must be restricted (points on nodes).  The monitor
        materializes K-NN lists of capacity ``k + 1`` if the database
        has none; an existing materialization must already satisfy that
        capacity.
        """
        if not db.restricted:
            raise QueryError("RnnMonitor requires a restricted network")
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        if not queries:
            raise QueryError("at least one standing query is required")
        for qid, node in queries.items():
            if not 0 <= node < db.graph.num_nodes:
                raise QueryError(f"query {qid} node {node} out of range")
        self.db = db
        self.k = k
        if db.materialized is None:
            db.materialize(k + 1)
        elif db.materialized.capacity < k + 1:
            raise QueryError(
                f"existing materialization capacity {db.materialized.capacity} "
                f"< k + 1 = {k + 1}"
            )
        self._fields = {
            qid: single_source_distances(db.graph, node)
            for qid, node in queries.items()
        }
        self._queries = dict(queries)
        self._results: dict[int, set[int]] = {qid: set() for qid in queries}
        self._refresh()

    # -- stream updates ---------------------------------------------------------

    def insert(self, pid: int, location: Location) -> list[MembershipEvent]:
        """Feed a point insertion; returns the membership changes."""
        self.db.insert_point(pid, location)
        return self._refresh()

    def delete(self, pid: int) -> list[MembershipEvent]:
        """Feed a point deletion; returns the membership changes."""
        self.db.delete_point(pid)
        return self._refresh()

    def refresh(self) -> list[MembershipEvent]:
        """Re-evaluate after an out-of-band database update.

        For callers that apply ``insert_point`` / ``delete_point``
        directly on the database (the serving tier applies one mutation
        and refreshes every subscribed monitor): recomputes every
        membership and returns the changes since the last evaluation.
        """
        return self._refresh()

    # -- results and aggregates ---------------------------------------------------

    def result(self, qid: int) -> list[int]:
        """Current ``RkNN`` members of a standing query (sorted)."""
        try:
            return sorted(self._results[qid])
        except KeyError:
            raise QueryError(f"unknown standing query {qid}") from None

    def counts(self) -> dict[int, int]:
        """``query id -> |RkNN(q)|`` for every standing query."""
        return {qid: len(members) for qid, members in self._results.items()}

    def total_influence(self) -> int:
        """Sum of result sizes over all standing queries ([10]'s aggregate)."""
        return sum(len(members) for members in self._results.values())

    def most_influential(self) -> tuple[int, int]:
        """``(query id, result size)`` of the largest current result."""
        qid = max(self._results, key=lambda q: (len(self._results[q]), -q))
        return qid, len(self._results[qid])

    # -- membership evaluation ------------------------------------------------------

    def _refresh(self) -> list[MembershipEvent]:
        """Re-evaluate all (point, query) memberships; emit the diffs."""
        events: list[MembershipEvent] = []
        fresh: dict[int, set[int]] = {qid: set() for qid in self._queries}
        for pid in self.db.points.ids():
            node = self.db.points.node_of(pid)
            others = self._other_distances(pid, node)
            for qid, field in self._fields.items():
                dq = field.get(node)
                if dq is None:
                    continue  # query cannot reach the point
                closer = bisect_left(others, tie_threshold(dq))
                if closer < self.k:
                    fresh[qid].add(pid)
        for qid, members in fresh.items():
            for pid in sorted(members - self._results[qid]):
                events.append(MembershipEvent(qid, pid, "join"))
            for pid in sorted(self._results[qid] - members):
                events.append(MembershipEvent(qid, pid, "leave"))
        self._results = fresh
        return events

    def _other_distances(self, pid: int, node: int) -> list[float]:
        """Ascending distances from ``pid`` to its nearest other points.

        Read from the materialized list of the point's node, which
        contains the point itself at distance 0 plus its ``k`` nearest
        other points (capacity ``k + 1``).
        """
        assert self.db.materialized is not None
        return sorted(
            dist for other, dist in self.db.materialized.get(node) if other != pid
        )
