"""RkNN search through a metric index (the paper's rejected alternative).

Korn & Muthukrishnan [9] answer Euclidean RNN queries by precomputing
each point's *vicinity circle* (radius = distance to its nearest
neighbor) and running a point-enclosure query: the RNNs of ``q`` are
the points whose circle contains ``q``.  Because the network distance
is a metric, the same construction works on graphs with a metric index
in place of the R-tree:

1. index the data points' nodes in a VP-tree over the network metric;
2. compute each point's k-th-neighbor radius with a (k+1)-NN tree
   query (k = 1 gives [9]'s original vicinity circles);
3. answer ``RkNN(q)`` with the tree's enclosure search -- by the RkNN
   definition ``d(p, q) <= d(p, p_k(p))``, enclosure hits are exactly
   the result, no verification step needed.

Every tree decision costs a point-to-point Dijkstra, so the approach
carries exactly the weakness the paper identifies in Section 2 --
triangle-inequality pruning cannot exploit connectivity.  The ablation
benchmark reports the Dijkstra count next to eager's single pruned
expansion.
"""

from __future__ import annotations

import math
from typing import AbstractSet

from repro.core.network import NetworkView
from repro.core.numeric import inflate_bound
from repro.errors import QueryError
from repro.metric.distance import NetworkMetric
from repro.metric.vptree import SearchStats, VPTree

_EMPTY: frozenset[int] = frozenset()


class MetricRnnIndex:
    """A vicinity-radius VP-tree over the view's data points.

    ``k`` fixes the order of the reverse queries the index answers
    (the radii are k-th-neighbor distances, like the paper's
    materialization capacity fixes its maximum query order).
    """

    def __init__(
        self,
        view: NetworkView,
        exclude: AbstractSet[int] = _EMPTY,
        k: int = 1,
    ):
        if not view.restricted:
            raise QueryError("metric RNN indexes require restricted networks")
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        self._view = view
        self.k = k
        self.metric = NetworkMetric(view)
        self._pid_of: dict[int, int] = {}
        for pid in view.point_ids():
            if pid not in exclude:
                self._pid_of[view.node_of(pid)] = pid
        if not self._pid_of:
            raise QueryError("cannot index an empty point set")
        nodes = sorted(self._pid_of)
        self._tree = VPTree(nodes, self.metric.distance)
        self._tree.set_vicinity_radii({node: self._nn_radius(node) for node in nodes})

    def _nn_radius(self, node: int) -> float:
        """Distance from a point's node to its k-th nearest other point.

        Infinite when fewer than ``k`` other points exist (the vicinity
        ball covers everything the point can reach, as in [9]).  The
        radius is inflated by the floating-point guard band so exact
        ties across different path sums stay enclosed (the paper's tie
        rule favors the query).
        """
        neighbors = self._tree.knn(node, self.k + 1)
        others = [dist for item, dist in neighbors if item != node]
        if len(others) < self.k:
            return math.inf
        return inflate_bound(others[self.k - 1])

    @property
    def size(self) -> int:
        return len(self._tree)

    def rknn(
        self, query_node: int, stats: SearchStats | None = None
    ) -> list[int]:
        """``RkNN(query_node)`` via point enclosure.

        Unreachable points are never results: an infinite query
        distance falls outside every meaningful vicinity ball.
        """
        hits = self._tree.enclosing(query_node, stats)
        return sorted(
            self._pid_of[node] for node, dist in hits if math.isfinite(dist)
        )

    # backwards-compatible alias (k is fixed at construction)
    rnn = rknn


def metric_rnn(
    view: NetworkView,
    query_node: int,
    exclude: AbstractSet[int] = _EMPTY,
    stats: SearchStats | None = None,
) -> list[int]:
    """One-shot metric-index RNN (build + query, k = 1)."""
    return metric_rknn(view, query_node, 1, exclude, stats)


def metric_rknn(
    view: NetworkView,
    query_node: int,
    k: int = 1,
    exclude: AbstractSet[int] = _EMPTY,
    stats: SearchStats | None = None,
) -> list[int]:
    """One-shot metric-index RkNN (build + query).

    Returns the same set as ``eager_rknn(view, query_node, k, exclude)``;
    exists as the Section 2 comparator, not as a recommended method.
    """
    if view.num_points == 0 or all(pid in exclude for pid in view.point_ids()):
        return []
    return MetricRnnIndex(view, exclude, k=k).rknn(query_node, stats)
