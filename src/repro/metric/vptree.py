"""Vantage-point tree over an abstract metric.

A VP-tree (Yianilos; the paper's refs [19], [3] survey the family)
recursively picks a *vantage point*, computes the distances of all
remaining items to it, and splits them at the median ``mu`` into an
inner (``d <= mu``) and an outer (``d > mu``) subtree.  Search prunes
subtrees with the triangle inequality alone: for a query at distance
``d`` from the vantage point, every inner item is at least ``d - mu``
away and every outer item at least ``mu - d``.  No connectivity
information is used -- which is precisely what the paper holds against
metric indexes for network data.

Items are identified by integer ids; the metric is any callable
``(id, id) -> float``.  The tree additionally stores, per subtree, the
maximum *vicinity radius* of its items (set by the RNN layer), so
point-enclosure queries ("which vicinity balls contain q?") prune with
``lower_bound(d(q, x)) > max_radius``.
"""

from __future__ import annotations

import heapq
import math
import statistics
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import QueryError

Metric = Callable[[int, int], float]


@dataclass
class _Node:
    vantage: int
    radius: float                      # median split distance (mu)
    inner: "_Node | None"
    outer: "_Node | None"
    size: int
    max_vicinity: float = 0.0          # max vicinity radius in this subtree
    vantage_vicinity: float = 0.0


@dataclass
class SearchStats:
    """Work performed by one tree traversal."""

    distance_calls: int = 0
    nodes_visited: int = 0
    nodes_pruned: int = 0


class VPTree:
    """Vantage-point tree over integer item ids and a pluggable metric."""

    def __init__(self, items: Sequence[int], metric: Metric):
        if not items:
            raise QueryError("cannot build a VP-tree over zero items")
        if len(set(items)) != len(items):
            raise QueryError("item ids must be unique")
        self._metric = metric
        self._root = self._build(sorted(items))

    def _build(self, items: list[int]) -> _Node | None:
        if not items:
            return None
        # Deterministic vantage choice: the smallest id.  Randomized
        # choices balance better on adversarial data, but determinism
        # keeps experiments reproducible and the difference is noise at
        # the data sizes the benchmarks use.
        vantage = items[0]
        rest = items[1:]
        if not rest:
            return _Node(vantage, 0.0, None, None, size=1)
        dists = [(self._metric(vantage, item), item) for item in rest]
        mu = statistics.median(d for d, _ in dists)
        inner_items = sorted(item for d, item in dists if d <= mu)
        outer_items = sorted(item for d, item in dists if d > mu)
        return _Node(
            vantage,
            mu,
            self._build(inner_items),
            self._build(outer_items),
            size=len(items),
        )

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return self._root.size

    def depth(self) -> int:
        """Longest root-to-leaf chain (1 for a single item)."""
        def walk(node: _Node | None) -> int:
            if node is None:
                return 0
            return 1 + max(walk(node.inner), walk(node.outer))

        return walk(self._root)

    def items(self) -> list[int]:
        """All item ids in the tree (sorted)."""
        result: list[int] = []

        def walk(node: _Node | None) -> None:
            if node is None:
                return
            result.append(node.vantage)
            walk(node.inner)
            walk(node.outer)

        walk(self._root)
        return sorted(result)

    # -- queries ---------------------------------------------------------------

    def knn(
        self, query: int, k: int, stats: SearchStats | None = None
    ) -> list[tuple[int, float]]:
        """The ``k`` items nearest to ``query`` (ascending distance).

        ``query`` is any id the metric accepts (typically a node id when
        the metric is :class:`~repro.metric.distance.NetworkMetric`).
        Returns fewer than ``k`` pairs only when the tree is smaller.
        """
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        stats = stats if stats is not None else SearchStats()
        best: list[tuple[float, int]] = []  # max-heap via negated distance

        def tau() -> float:
            return -best[0][0] if len(best) == k else math.inf

        def visit(node: _Node | None) -> None:
            if node is None:
                return
            stats.nodes_visited += 1
            stats.distance_calls += 1
            d = self._metric(node.vantage, query)
            if d < tau():
                if len(best) < k:
                    heapq.heappush(best, (-d, node.vantage))
                else:
                    heapq.heappushpop(best, (-d, node.vantage))
            inner_bound = max(0.0, d - node.radius)
            outer_bound = max(0.0, node.radius - d)
            order = (
                ((node.inner, inner_bound), (node.outer, outer_bound))
                if d <= node.radius
                else ((node.outer, outer_bound), (node.inner, inner_bound))
            )
            for child, bound in order:
                if child is None:
                    continue
                if bound <= tau():
                    visit(child)
                else:
                    stats.nodes_pruned += 1

        visit(self._root)
        return sorted(((item, -neg) for neg, item in best),
                      key=lambda pair: (pair[1], pair[0]))

    def range_query(
        self, query: int, radius: float, stats: SearchStats | None = None
    ) -> list[tuple[int, float]]:
        """All items within ``radius`` of ``query`` (ascending distance)."""
        if radius < 0:
            raise QueryError(f"radius must be >= 0, got {radius}")
        stats = stats if stats is not None else SearchStats()
        result: list[tuple[int, float]] = []

        def visit(node: _Node | None) -> None:
            if node is None:
                return
            stats.nodes_visited += 1
            stats.distance_calls += 1
            d = self._metric(node.vantage, query)
            if d <= radius:
                result.append((node.vantage, d))
            if node.inner is not None:
                if max(0.0, d - node.radius) <= radius:
                    visit(node.inner)
                else:
                    stats.nodes_pruned += 1
            if node.outer is not None:
                if max(0.0, node.radius - d) <= radius:
                    visit(node.outer)
                else:
                    stats.nodes_pruned += 1

        visit(self._root)
        return sorted(result, key=lambda pair: (pair[1], pair[0]))

    # -- vicinity radii (for the RNN layer) -------------------------------------

    def set_vicinity_radii(self, radii: dict[int, float]) -> None:
        """Attach a vicinity radius to every item and fold subtree maxima."""
        missing = set(self.items()) - set(radii)
        if missing:
            raise QueryError(f"missing vicinity radii for items {sorted(missing)}")

        def walk(node: _Node | None) -> float:
            if node is None:
                return 0.0
            node.vantage_vicinity = radii[node.vantage]
            node.max_vicinity = max(
                node.vantage_vicinity, walk(node.inner), walk(node.outer)
            )
            return node.max_vicinity

        walk(self._root)

    def enclosing(
        self, query: int, stats: SearchStats | None = None
    ) -> list[tuple[int, float]]:
        """Items whose vicinity ball contains ``query``.

        Requires :meth:`set_vicinity_radii` first.  Returns ``(item,
        d(item, query))`` pairs with ``d <= radius(item)`` -- ties
        included, matching the paper's tie rule for RNN membership.
        """
        stats = stats if stats is not None else SearchStats()
        result: list[tuple[int, float]] = []

        def visit(node: _Node | None) -> None:
            if node is None:
                return
            stats.nodes_visited += 1
            stats.distance_calls += 1
            d = self._metric(node.vantage, query)
            if d <= node.vantage_vicinity:
                result.append((node.vantage, d))
            if node.inner is not None:
                if max(0.0, d - node.radius) <= node.inner.max_vicinity:
                    visit(node.inner)
                else:
                    stats.nodes_pruned += 1
            if node.outer is not None:
                if max(0.0, node.radius - d) <= node.outer.max_vicinity:
                    visit(node.outer)
                else:
                    stats.nodes_pruned += 1

        visit(self._root)
        return sorted(result, key=lambda pair: (pair[1], pair[0]))
