"""Metric-space indexing over the network distance (paper Section 2).

The paper observes that, the network distance being a metric, "an
alternative solution could rely on indexes for general metric spaces
(e.g., [19], [3])" -- and then argues against it: "such indexes do not
capture the connectivity of nodes, which can be utilized to speed-up
search compared to simply using the triangular inequality."  This
package makes the rejected alternative concrete so the claim can be
measured:

* :class:`~repro.metric.distance.NetworkMetric` -- a distance oracle
  over node pairs, each evaluation one point-to-point Dijkstra,
  counted and cached;
* :class:`~repro.metric.vptree.VPTree` -- a vantage-point tree over
  data points, supporting kNN and range queries with
  triangle-inequality pruning only;
* :func:`~repro.metric.rnn.metric_rnn` -- RNN search in the style of
  Korn & Muthukrishnan [9]: precomputed vicinity radii (distance to
  the NN) stored in the tree, query answered by a point-enclosure
  descent.

The ablation benchmark shows the paper's point: every pruning decision
costs a Dijkstra, so the metric route loses badly to connectivity-aware
expansion.
"""

from repro.metric.distance import NetworkMetric
from repro.metric.rnn import MetricRnnIndex, metric_rknn, metric_rnn
from repro.metric.vptree import VPTree

__all__ = [
    "MetricRnnIndex",
    "NetworkMetric",
    "VPTree",
    "metric_rknn",
    "metric_rnn",
]
