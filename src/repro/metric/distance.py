"""A counted, cached network-distance oracle.

Metric indexes see the network only through a black-box distance
function.  :class:`NetworkMetric` is that black box: every evaluation
runs a point-to-point Dijkstra over the charged
:class:`~repro.core.network.NetworkView` (so page faults surface in
the shared cost tracker) and bumps ``evaluations``; a cache keeps
repeated pairs free, mirroring how a practical metric index would
memoize during construction.
"""

from __future__ import annotations

import math

from repro.core.network import NetworkView
from repro.errors import QueryError
from repro.paths.dijkstra import shortest_path


class NetworkMetric:
    """Node-to-node network distance as a metric-space oracle."""

    def __init__(self, view: NetworkView):
        self._view = view
        self._cache: dict[tuple[int, int], float] = {}
        self.evaluations = 0       # Dijkstra runs actually performed
        self.requests = 0          # distance() calls including cache hits

    def distance(self, u: int, v: int) -> float:
        """Network distance between nodes ``u`` and ``v`` (inf if apart)."""
        if not (0 <= u < self._view.num_nodes and 0 <= v < self._view.num_nodes):
            raise QueryError(f"nodes ({u}, {v}) out of range")
        self.requests += 1
        key = (u, v) if u <= v else (v, u)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        self.evaluations += 1
        result = shortest_path(self._view, u, v)
        self._cache[key] = result.distance
        return result.distance

    def point_distance(self, pid: int, node: int) -> float:
        """Distance between data point ``pid``'s node and ``node``."""
        return self.distance(self._view.node_of(pid), node)

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def reset_counters(self) -> None:
        """Zero the evaluation counters (the cache is kept)."""
        self.evaluations = 0
        self.requests = 0


def is_finite_metric(value: float) -> bool:
    """Guard helper: whether a distance is usable for pruning."""
    return math.isfinite(value)
