"""Page formats for the simulated disk.

Three record types live in fixed-size pages (default 4 KB, as in the
paper's evaluation):

* *adjacency records* -- one per graph node: the node id, a data-point
  flag and the node's neighbor/weight list (paper Fig. 3b);
* *edge-point records* -- one per edge that carries data points in an
  unrestricted network: the edge and its ``(point id, offset)`` pairs
  (paper Fig. 14b);
* *K-NN records* -- one per node: the node's materialized list of the K
  nearest data points (paper Section 4.1);
* *landmark records* -- one per node: the node's exact network
  distances to each of the L landmarks of the ALT distance oracle
  (:mod:`repro.oracle`), the same partial-materialization shape as the
  K-NN lists with landmark distances in the slots.

Records are serialized with :mod:`struct`; a page is simply the
concatenation of its records behind a record-count header.  Pages are
the unit of I/O accounting: reading a page whose payload spans ``s``
physical page slots costs ``s`` I/Os (this only happens for nodes whose
adjacency list alone exceeds the page size).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import StorageError

#: Default page size used throughout the paper's evaluation (4 KB).
DEFAULT_PAGE_SIZE = 4096

_HEADER = struct.Struct("<H")            # record count
_ADJ_RECORD_HEADER = struct.Struct("<IBH")   # node id, point flag, degree
_ADJ_ENTRY = struct.Struct("<Id")            # neighbor id, weight
_EDGE_RECORD_HEADER = struct.Struct("<IIH")  # u, v, point count
_EDGE_ENTRY = struct.Struct("<Id")           # point id, offset from min(u,v)
_KNN_RECORD_HEADER = struct.Struct("<IH")    # node id, entry count
_KNN_ENTRY = struct.Struct("<Id")            # point id, distance
_LANDMARK_RECORD_HEADER = struct.Struct("<I")  # node id
_LANDMARK_ENTRY = struct.Struct("<d")          # distance to one landmark


def adjacency_record_size(degree: int) -> int:
    """Bytes occupied by the adjacency record of a node with ``degree``."""
    return _ADJ_RECORD_HEADER.size + degree * _ADJ_ENTRY.size


def edge_record_size(point_count: int) -> int:
    """Bytes occupied by an edge-point record holding ``point_count`` points."""
    return _EDGE_RECORD_HEADER.size + point_count * _EDGE_ENTRY.size


def knn_record_size(capacity: int) -> int:
    """Bytes reserved for a materialized K-NN record with ``capacity`` slots.

    K-NN records are fixed-size (always ``capacity`` slots) so that list
    maintenance can rewrite a record in place without repacking pages.
    """
    return _KNN_RECORD_HEADER.size + capacity * _KNN_ENTRY.size


@dataclass(frozen=True)
class AdjacencyRecord:
    """Adjacency list of one node plus its data-point flag."""

    node: int
    has_point: bool
    neighbors: tuple[tuple[int, float], ...]


@dataclass(frozen=True)
class EdgePointRecord:
    """Data points lying on one edge of an unrestricted network.

    Offsets are measured from the lexicographically smaller endpoint,
    matching the paper's ``<n_i, n_j, pos>`` convention (Section 5.2).
    """

    u: int
    v: int
    points: tuple[tuple[int, float], ...]


@dataclass(frozen=True)
class KnnRecord:
    """Materialized list of the K nearest data points of one node."""

    node: int
    entries: tuple[tuple[int, float], ...]
    capacity: int


def encode_adjacency_page(records: Sequence[AdjacencyRecord]) -> bytes:
    """Serialize adjacency records into one page payload."""
    parts = [_HEADER.pack(len(records))]
    for rec in records:
        parts.append(
            _ADJ_RECORD_HEADER.pack(rec.node, int(rec.has_point), len(rec.neighbors))
        )
        for nbr, weight in rec.neighbors:
            parts.append(_ADJ_ENTRY.pack(nbr, weight))
    return b"".join(parts)


def decode_adjacency_page(payload: bytes) -> list[AdjacencyRecord]:
    """Parse one adjacency page payload back into records."""
    (count,) = _HEADER.unpack_from(payload, 0)
    offset = _HEADER.size
    records = []
    for _ in range(count):
        node, flag, degree = _ADJ_RECORD_HEADER.unpack_from(payload, offset)
        offset += _ADJ_RECORD_HEADER.size
        neighbors = []
        for _ in range(degree):
            nbr, weight = _ADJ_ENTRY.unpack_from(payload, offset)
            offset += _ADJ_ENTRY.size
            neighbors.append((nbr, weight))
        records.append(AdjacencyRecord(node, bool(flag), tuple(neighbors)))
    return records


def encode_edge_point_page(records: Sequence[EdgePointRecord]) -> bytes:
    """Serialize edge-point records into one page payload."""
    parts = [_HEADER.pack(len(records))]
    for rec in records:
        parts.append(_EDGE_RECORD_HEADER.pack(rec.u, rec.v, len(rec.points)))
        for pid, pos in rec.points:
            parts.append(_EDGE_ENTRY.pack(pid, pos))
    return b"".join(parts)


def decode_edge_point_page(payload: bytes) -> list[EdgePointRecord]:
    """Parse one edge-point page payload back into records."""
    (count,) = _HEADER.unpack_from(payload, 0)
    offset = _HEADER.size
    records = []
    for _ in range(count):
        u, v, npoints = _EDGE_RECORD_HEADER.unpack_from(payload, offset)
        offset += _EDGE_RECORD_HEADER.size
        points = []
        for _ in range(npoints):
            pid, pos = _EDGE_ENTRY.unpack_from(payload, offset)
            offset += _EDGE_ENTRY.size
            points.append((pid, pos))
        records.append(EdgePointRecord(u, v, tuple(points)))
    return records


def encode_knn_page(records: Sequence[KnnRecord]) -> bytes:
    """Serialize K-NN records, padding each to its fixed capacity."""
    parts = [_HEADER.pack(len(records))]
    for rec in records:
        if len(rec.entries) > rec.capacity:
            raise StorageError(
                f"K-NN record for node {rec.node} holds {len(rec.entries)} "
                f"entries but capacity is {rec.capacity}"
            )
        parts.append(_KNN_RECORD_HEADER.pack(rec.node, len(rec.entries)))
        for pid, dist in rec.entries:
            parts.append(_KNN_ENTRY.pack(pid, dist))
        padding = rec.capacity - len(rec.entries)
        parts.append(b"\x00" * (padding * _KNN_ENTRY.size))
    return b"".join(parts)


def decode_knn_page(payload: bytes, capacity: int) -> list[KnnRecord]:
    """Parse one K-NN page payload (records have fixed ``capacity``)."""
    (count,) = _HEADER.unpack_from(payload, 0)
    offset = _HEADER.size
    records = []
    for _ in range(count):
        node, used = _KNN_RECORD_HEADER.unpack_from(payload, offset)
        offset += _KNN_RECORD_HEADER.size
        entries = []
        for i in range(capacity):
            pid, dist = _KNN_ENTRY.unpack_from(payload, offset)
            offset += _KNN_ENTRY.size
            if i < used:
                entries.append((pid, dist))
        records.append(KnnRecord(node, tuple(entries), capacity))
    return records


def landmark_record_size(num_landmarks: int) -> int:
    """Bytes reserved for one node's landmark-label record.

    Records are fixed-size (always ``num_landmarks`` slots) so the
    whole label table pages out like the materialized K-NN file.
    """
    return _LANDMARK_RECORD_HEADER.size + num_landmarks * _LANDMARK_ENTRY.size


@dataclass(frozen=True)
class LandmarkRecord:
    """Exact network distances of one node to every oracle landmark.

    ``distances`` holds one entry per landmark, in landmark order;
    unreachable landmarks store ``inf`` (IEEE doubles round-trip it).
    """

    node: int
    distances: tuple[float, ...]


def encode_landmark_page(records: Sequence[LandmarkRecord]) -> bytes:
    """Serialize landmark-label records into one page payload."""
    parts = [_HEADER.pack(len(records))]
    for rec in records:
        parts.append(_LANDMARK_RECORD_HEADER.pack(rec.node))
        for dist in rec.distances:
            parts.append(_LANDMARK_ENTRY.pack(dist))
    return b"".join(parts)


def decode_landmark_page(payload: bytes, num_landmarks: int) -> list[LandmarkRecord]:
    """Parse one landmark page (records have ``num_landmarks`` slots)."""
    (count,) = _HEADER.unpack_from(payload, 0)
    offset = _HEADER.size
    records = []
    for _ in range(count):
        (node,) = _LANDMARK_RECORD_HEADER.unpack_from(payload, offset)
        offset += _LANDMARK_RECORD_HEADER.size
        distances = []
        for _ in range(num_landmarks):
            (dist,) = _LANDMARK_ENTRY.unpack_from(payload, offset)
            offset += _LANDMARK_ENTRY.size
            distances.append(dist)
        records.append(LandmarkRecord(node, tuple(distances)))
    return records


def pack_records(
    sizes: Iterable[int], page_size: int = DEFAULT_PAGE_SIZE
) -> list[list[int]]:
    """Greedily group record indices into pages of at most ``page_size`` bytes.

    ``sizes`` gives the byte size of each record, in storage order (the
    caller is expected to pass records already arranged for locality,
    e.g. in BFS order -- see :mod:`repro.graph.partition`).  A record
    larger than a page gets a page of its own; its page then *spans*
    multiple physical slots, which the page store charges accordingly.
    """
    pages: list[list[int]] = []
    current: list[int] = []
    used = _HEADER.size
    for index, size in enumerate(sizes):
        if size <= 0:
            raise StorageError(f"record {index} has non-positive size {size}")
        if current and used + size > page_size:
            pages.append(current)
            current = []
            used = _HEADER.size
        current.append(index)
        used += size
    if current:
        pages.append(current)
    return pages
