"""Disk-resident storage for directed networks.

A directed network needs *two* adjacency files: the query algorithms
expand backwards from the query over incoming arcs (ordering nodes by
their distance **to** the query) and probe forwards over outgoing arcs
(distances **from** a node).  Both files use the same page format and
topology-aware packing as the undirected store and share the database's
LRU buffer; reads from either are charged I/O.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.errors import StorageError
from repro.graph.digraph import DiGraph
from repro.storage.buffer import BufferManager
from repro.storage.disk import _span
from repro.storage.page import (
    DEFAULT_PAGE_SIZE,
    AdjacencyRecord,
    adjacency_record_size,
    decode_adjacency_page,
    encode_adjacency_page,
    pack_records,
)


def weak_bfs_order(graph: DiGraph, seed: int = 0) -> list[int]:
    """BFS order over the *weak* (direction-blind) adjacency.

    Packing by weak connectivity keeps both expansion directions local,
    since forward and backward traversals cross the same regions.
    """
    n = graph.num_nodes
    order: list[int] = []
    seen = [False] * n
    starts = [seed] + [v for v in range(n) if v != seed]
    for start in starts:
        if seen[start]:
            continue
        seen[start] = True
        queue = deque([start])
        while queue:
            node = queue.popleft()
            order.append(node)
            for nbr, _ in graph.out_neighbors(node):
                if not seen[nbr]:
                    seen[nbr] = True
                    queue.append(nbr)
            for nbr, _ in graph.in_neighbors(node):
                if not seen[nbr]:
                    seen[nbr] = True
                    queue.append(nbr)
    return order


class _DirectionFile:
    """One paged adjacency file (forward or backward lists)."""

    def __init__(
        self,
        tag: str,
        lists: list[tuple[tuple[int, float], ...]],
        order: Sequence[int],
        buffer: BufferManager,
        page_size: int,
        point_nodes: frozenset[int],
    ):
        self.tag = tag
        self.buffer = buffer
        self.page_size = page_size
        sizes = [adjacency_record_size(len(lst)) for lst in lists]
        node_pages = pack_records(
            [sizes[node] for node in order], page_size=page_size
        )
        self._pages: list[bytes] = []
        self._spans: list[int] = []
        self._page_of: list[int] = [-1] * len(lists)
        for page_no, indices in enumerate(node_pages):
            records = []
            for index in indices:
                node = order[index]
                records.append(
                    AdjacencyRecord(node, node in point_nodes, lists[node])
                )
                self._page_of[node] = page_no
            payload = encode_adjacency_page(records)
            self._pages.append(payload)
            self._spans.append(_span(payload, page_size))

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        page_no = self._page_of[node]
        page = self.buffer.get(
            (self.tag, page_no),
            lambda: self._load(page_no),
            span=self._spans[page_no],
        )
        return page[node].neighbors

    def _load(self, page_no: int) -> dict[int, AdjacencyRecord]:
        records = decode_adjacency_page(self._pages[page_no])
        return {record.node: record for record in records}


class DiskDiGraph:
    """Paged forward + backward adjacency files of a directed network."""

    _instances = 0

    def __init__(
        self,
        graph: DiGraph,
        buffer: BufferManager,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        order: Sequence[int] | None = None,
        point_nodes: frozenset[int] = frozenset(),
    ):
        DiskDiGraph._instances += 1
        tag = f"dg{DiskDiGraph._instances}"
        self.num_nodes = graph.num_nodes
        self.num_arcs = graph.num_arcs
        if order is None:
            order = weak_bfs_order(graph)
        if sorted(order) != list(range(graph.num_nodes)):
            raise StorageError("page order must cover every node exactly once")
        out_lists = [tuple(graph.out_neighbors(v)) for v in range(graph.num_nodes)]
        in_lists = [tuple(graph.in_neighbors(v)) for v in range(graph.num_nodes)]
        self._forward = _DirectionFile(
            f"{tag}:fwd", out_lists, order, buffer, page_size, point_nodes
        )
        self._backward = _DirectionFile(
            f"{tag}:rev", in_lists, order, buffer, page_size, point_nodes
        )

    @property
    def num_pages(self) -> int:
        return self._forward.num_pages + self._backward.num_pages

    def page_of(self, node: int) -> int:
        """Forward-file page holding ``node`` (free index look-up).

        Exposed for locality-aware batch planning: queries whose nodes
        share a forward page hit the same buffer frame.
        """
        self._check(node)
        return self._forward._page_of[node]

    def out_neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        """Outgoing arcs of ``node`` (charged read of the forward file)."""
        self._check(node)
        return self._forward.neighbors(node)

    def in_neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        """Incoming arcs of ``node`` (charged read of the backward file)."""
        self._check(node)
        return self._backward.neighbors(node)

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise StorageError(f"node {node} out of range")
