"""LRU buffer manager shared by every page store of a database.

The paper's experiments use an LRU buffer of 1 MB (256 pages of 4 KB)
in front of the disk-resident graph (Section 6).  Figure 21 studies the
effect of the buffer size; :class:`BufferManager` therefore exposes the
capacity as a constructor argument and counts hits and misses through
the shared :class:`~repro.storage.stats.CostTracker`.

Frames cache *deserialized* page objects (the parsed record lists), so
a buffer hit costs neither I/O nor re-parsing, mirroring a real buffer
pool where a pinned frame is used directly.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro.errors import StorageError
from repro.storage.stats import CostTracker

PageKey = Hashable


class BufferManager:
    """A capacity-bounded LRU cache of deserialized pages.

    Parameters
    ----------
    capacity_pages:
        Number of page slots.  ``0`` disables caching entirely (every
        access is a fault, the Fig. 21 ``buffer size = 0`` setting).
    tracker:
        Shared cost tracker; misses bump ``page_reads`` and hits bump
        ``buffer_hits``.
    """

    def __init__(self, capacity_pages: int, tracker: CostTracker | None = None):
        if capacity_pages < 0:
            raise StorageError(f"buffer capacity must be >= 0, got {capacity_pages}")
        self.capacity_pages = capacity_pages
        self.tracker = tracker if tracker is not None else CostTracker()
        # key -> (parsed page object, span in physical page slots)
        self._frames: "OrderedDict[PageKey, tuple[Any, int]]" = OrderedDict()
        self._used_slots = 0

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def used_slots(self) -> int:
        """Physical page slots currently occupied (oversized pages count > 1)."""
        return self._used_slots

    def get(
        self,
        key: PageKey,
        load: Callable[[], Any],
        span: int = 1,
    ) -> Any:
        """Return the page for ``key``, loading (and charging) on a miss.

        ``load`` performs the physical read + deserialization.  ``span``
        is the number of physical page slots the page occupies; a miss
        charges ``span`` reads and the frame occupies ``span`` slots.
        """
        if span < 1:
            raise StorageError(f"page span must be >= 1, got {span}")
        frame = self._frames.get(key)
        if frame is not None:
            self._frames.move_to_end(key)
            self.tracker.buffer_hits += 1
            return frame[0]
        self.tracker.page_reads += span
        page = load()
        if self.capacity_pages > 0:
            self._admit(key, page, span)
        return page

    def invalidate(self, key: PageKey) -> None:
        """Drop ``key`` from the buffer (after an in-place page rewrite)."""
        frame = self._frames.pop(key, None)
        if frame is not None:
            self._used_slots -= frame[1]

    def put(self, key: PageKey, page: Any, span: int = 1) -> None:
        """Install a freshly written page without charging a read."""
        self.invalidate(key)
        if self.capacity_pages > 0:
            self._admit(key, page, span)

    def clear(self) -> None:
        """Empty the buffer (used between experiment runs)."""
        self._frames.clear()
        self._used_slots = 0

    def _admit(self, key: PageKey, page: Any, span: int) -> None:
        while self._frames and self._used_slots + span > self.capacity_pages:
            _, (_, old_span) = self._frames.popitem(last=False)
            self._used_slots -= old_span
        if self._used_slots + span <= self.capacity_pages:
            self._frames[key] = (page, span)
            self._used_slots += span
