"""Cost accounting for the simulated disk-based graph store.

The paper (Section 6) reports three figures per workload:

* the number of page faults (I/O),
* the CPU time, and
* a combined cost where every random I/O is charged 10 ms.

:class:`CostTracker` is a plain counter object shared by the buffer
manager, the page stores and the query algorithms.  :class:`CostModel`
turns a tracker snapshot into the combined cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Iterable

#: Charge per random I/O used throughout the paper's evaluation (10 ms).
DEFAULT_IO_PENALTY_S = 0.010


@dataclass
class CostTracker:
    """Mutable counters describing the work performed by the engine.

    One tracker is shared by the whole storage stack of a
    :class:`~repro.api.GraphDatabase`, so a query's cost is obtained by
    snapshotting the tracker before and after the query and diffing.
    """

    page_reads: int = 0        # physical reads (buffer misses)
    page_writes: int = 0       # physical writes
    buffer_hits: int = 0       # logical reads served from the buffer
    nodes_visited: int = 0     # nodes de-heaped by any expansion
    edges_expanded: int = 0    # adjacency entries relaxed by expansions
    heap_pushes: int = 0
    heap_pops: int = 0
    range_nn_calls: int = 0
    verifications: int = 0
    oracle_prunes: int = 0     # probes/verifications resolved by the oracle
    cpu_seconds: float = 0.0   # accumulated via time_block()

    def snapshot(self) -> "CostTracker":
        """Return an immutable copy of the current counter values."""
        return replace(self)

    def diff(self, before: "CostTracker") -> "CostTracker":
        """Return a tracker holding ``self - before`` for every counter."""
        return CostTracker(
            page_reads=self.page_reads - before.page_reads,
            page_writes=self.page_writes - before.page_writes,
            buffer_hits=self.buffer_hits - before.buffer_hits,
            nodes_visited=self.nodes_visited - before.nodes_visited,
            edges_expanded=self.edges_expanded - before.edges_expanded,
            heap_pushes=self.heap_pushes - before.heap_pushes,
            heap_pops=self.heap_pops - before.heap_pops,
            range_nn_calls=self.range_nn_calls - before.range_nn_calls,
            verifications=self.verifications - before.verifications,
            oracle_prunes=self.oracle_prunes - before.oracle_prunes,
            cpu_seconds=self.cpu_seconds - before.cpu_seconds,
        )

    def merge(self, other: "CostTracker") -> None:
        """Add another tracker's counters into this one in place.

        Used by the batch engine to fold the per-worker trackers of a
        parallel batch back into the database's global accounting, and
        generally to aggregate per-query diffs::

            total = CostTracker()
            for result in results:
                total.merge(result.counters)
        """
        self.page_reads += other.page_reads
        self.page_writes += other.page_writes
        self.buffer_hits += other.buffer_hits
        self.nodes_visited += other.nodes_visited
        self.edges_expanded += other.edges_expanded
        self.heap_pushes += other.heap_pushes
        self.heap_pops += other.heap_pops
        self.range_nn_calls += other.range_nn_calls
        self.verifications += other.verifications
        self.oracle_prunes += other.oracle_prunes
        self.cpu_seconds += other.cpu_seconds

    @classmethod
    def merged(cls, diffs: "Iterable[CostTracker]") -> "CostTracker":
        """A fresh tracker holding the sum of the given counter diffs."""
        total = cls()
        for diff in diffs:
            total.merge(diff)
        return total

    @property
    def io_operations(self) -> int:
        """Total physical page transfers (reads + writes)."""
        return self.page_reads + self.page_writes

    @property
    def logical_reads(self) -> int:
        """Page requests including those served by the buffer."""
        return self.page_reads + self.buffer_hits

    def time_block(self) -> "_CpuTimer":
        """Context manager accumulating wall CPU time into the tracker.

        Example::

            with tracker.time_block():
                run_query()
        """
        return _CpuTimer(self)

    def reset(self) -> None:
        """Zero every counter."""
        self.page_reads = 0
        self.page_writes = 0
        self.buffer_hits = 0
        self.nodes_visited = 0
        self.edges_expanded = 0
        self.heap_pushes = 0
        self.heap_pops = 0
        self.range_nn_calls = 0
        self.verifications = 0
        self.oracle_prunes = 0
        self.cpu_seconds = 0.0


class _CpuTimer:
    """Context manager that adds the elapsed time to a tracker."""

    def __init__(self, tracker: CostTracker):
        self._tracker = tracker
        self._start = 0.0

    def __enter__(self) -> "_CpuTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracker.cpu_seconds += time.perf_counter() - self._start


@dataclass(frozen=True)
class CostModel:
    """Combine CPU time and charged I/O into a single cost figure.

    The paper charges ``10ms`` per random I/O (Section 6, "after charging
    10ms for each random I/O").
    """

    io_penalty_s: float = DEFAULT_IO_PENALTY_S
    charge_writes: bool = True

    def total_seconds(self, counters: CostTracker) -> float:
        """Total cost in seconds: CPU + penalty * page faults."""
        ios = counters.page_reads
        if self.charge_writes:
            ios += counters.page_writes
        return counters.cpu_seconds + self.io_penalty_s * ios


@dataclass(frozen=True)
class QueryCost:
    """Per-query cost record produced by the public API."""

    io: int
    cpu_seconds: float
    counters: CostTracker = field(repr=False, default_factory=CostTracker)

    def total_seconds(self, model: CostModel | None = None) -> float:
        """Combined cost under ``model`` (default: 10 ms per I/O)."""
        model = model or CostModel()
        return model.total_seconds(self.counters)
