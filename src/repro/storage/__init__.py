"""Simulated disk storage: pages, LRU buffer, stores and cost accounting.

The store classes are exported lazily (PEP 562): ``repro.storage.disk``
depends on ``repro.graph.partition``, which itself uses the page format
from this package -- importing the stores eagerly here would close an
import cycle.
"""

from repro.storage.buffer import BufferManager
from repro.storage.page import DEFAULT_PAGE_SIZE
from repro.storage.stats import CostModel, CostTracker, QueryCost

__all__ = [
    "BufferManager",
    "CostModel",
    "CostTracker",
    "DiskGraph",
    "DEFAULT_PAGE_SIZE",
    "EdgePointStore",
    "KnnListStore",
    "QueryCost",
]

_LAZY = {"DiskGraph", "EdgePointStore", "KnnListStore"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.storage import disk

        return getattr(disk, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
