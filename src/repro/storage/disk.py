"""Disk-resident stores for the network, edge points and K-NN lists.

This module implements the paper's storage architecture (Section 3.1,
Fig. 3b and Section 5.2, Fig. 14b):

* :class:`DiskGraph` -- a file of adjacency lists, grouped into pages by
  a topology-aware node order, behind an in-memory index on node id;
* :class:`EdgePointStore` -- the separate data-point file of an
  unrestricted network, with per-edge point records;
* :class:`KnnListStore` -- the materialized K-NN lists of Section 4.1,
  with fixed-capacity records so maintenance can rewrite them in place.

All stores serialize to real byte pages and perform logical reads
through a shared :class:`~repro.storage.buffer.BufferManager`, which is
where I/O accounting happens.  The "disk" itself is an in-process list
of page images; the paper's reported costs are likewise *charged* I/O
(10 ms per fault), so this simulation reproduces the same measurements
without physical hardware.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.errors import StorageError
from repro.graph.graph import Graph, edge_key
from repro.graph.partition import bfs_order, partition_nodes
from repro.points.points import EdgePointSet, NodePointSet
from repro.storage.buffer import BufferManager
from repro.storage.page import (
    DEFAULT_PAGE_SIZE,
    AdjacencyRecord,
    EdgePointRecord,
    KnnRecord,
    adjacency_record_size,
    decode_adjacency_page,
    decode_edge_point_page,
    decode_knn_page,
    edge_record_size,
    encode_adjacency_page,
    encode_edge_point_page,
    encode_knn_page,
    knn_record_size,
    pack_records,
)


def _span(payload: bytes, page_size: int) -> int:
    """Physical page slots occupied by a payload (>= 1)."""
    return max(1, math.ceil(len(payload) / page_size))


class DiskGraph:
    """The paper's adjacency-list file plus in-memory node index.

    The index maps a node id to its page and data-point flag, so index
    look-ups are free; fetching the adjacency list itself goes through
    the buffer and may fault.
    """

    FILE_TAG = "adj"

    def __init__(
        self,
        graph: Graph,
        buffer: BufferManager,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        order: Sequence[int] | None = None,
        point_nodes: frozenset[int] = frozenset(),
    ):
        self.page_size = page_size
        self.buffer = buffer
        self.num_nodes = graph.num_nodes
        self.num_edges = graph.num_edges
        if order is None:
            order = bfs_order(graph)
        sizes = [adjacency_record_size(graph.degree(v)) for v in range(graph.num_nodes)]
        node_pages = partition_nodes(order, sizes, page_size=page_size)
        self._pages: list[bytes] = []
        self._spans: list[int] = []
        self._page_of: list[int] = [-1] * graph.num_nodes
        for page_no, nodes in enumerate(node_pages):
            records = [
                AdjacencyRecord(
                    node=v,
                    has_point=v in point_nodes,
                    neighbors=tuple(graph.neighbors(v)),
                )
                for v in nodes
            ]
            payload = encode_adjacency_page(records)
            self._pages.append(payload)
            self._spans.append(_span(payload, page_size))
            for v in nodes:
                self._page_of[v] = page_no
        if any(p < 0 for p in self._page_of):
            raise StorageError("page order does not cover every node")

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def page_of(self, node: int) -> int:
        """Page number holding ``node``'s adjacency list (index look-up)."""
        return self._page_of[node]

    def neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        """Adjacency list of ``node``; a logical read through the buffer."""
        if not 0 <= node < self.num_nodes:
            raise StorageError(f"node {node} out of range")
        page_no = self._page_of[node]
        page = self.buffer.get(
            (self.FILE_TAG, page_no),
            lambda: self._load_page(page_no),
            span=self._spans[page_no],
        )
        return page[node].neighbors

    def _load_page(self, page_no: int) -> dict[int, AdjacencyRecord]:
        records = decode_adjacency_page(self._pages[page_no])
        return {rec.node: rec for rec in records}


class EdgePointStore:
    """The separate point file of an unrestricted network (Fig. 14b).

    Only edges that carry points have a record; the in-memory edge index
    answers "edge has no points" for free, while reading an edge's point
    list is a charged logical read.  Point insertions and deletions
    rewrite the affected page (one charged write).

    Each store instance gets a distinct file tag so several point files
    (e.g. the P and Q sets of a bichromatic query) can share one buffer
    without their pages aliasing.
    """

    _instances = 0

    def __init__(
        self,
        graph: Graph,
        points: EdgePointSet,
        buffer: BufferManager,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        order: Sequence[int] | None = None,
    ):
        points.validate(graph)
        EdgePointStore._instances += 1
        self.FILE_TAG = f"ep{EdgePointStore._instances}"
        self.page_size = page_size
        self.buffer = buffer
        self._graph = graph
        if order is None:
            order = bfs_order(graph)
        rank = {node: i for i, node in enumerate(order)}
        edges = sorted(
            points.edges_with_points(),
            key=lambda edge: (rank[edge[0]], rank[edge[1]]),
        )
        records = [
            EdgePointRecord(u, v, tuple(points.points_on(u, v))) for u, v in edges
        ]
        sizes = [edge_record_size(len(rec.points)) for rec in records]
        pages = pack_records(sizes, page_size=page_size) if records else []
        self._pages: list[bytes] = []
        self._spans: list[int] = []
        self._page_of: dict[tuple[int, int], int] = {}
        for page_no, indices in enumerate(pages):
            recs = [records[i] for i in indices]
            payload = encode_edge_point_page(recs)
            self._pages.append(payload)
            self._spans.append(_span(payload, page_size))
            for rec in recs:
                self._page_of[(rec.u, rec.v)] = page_no

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def points_on(self, u: int, v: int) -> tuple[tuple[int, float], ...]:
        """Points on edge ``(u, v)`` as ``(pid, offset-from-min-endpoint)``."""
        key = edge_key(u, v)
        page_no = self._page_of.get(key)
        if page_no is None:
            return ()
        page = self.buffer.get(
            (self.FILE_TAG, page_no),
            lambda: self._load_page(page_no),
            span=self._spans[page_no],
        )
        record = page.get(key)
        return record.points if record is not None else ()

    def insert_point(self, pid: int, u: int, v: int, pos: float) -> None:
        """Add a point to an edge record, creating the record if needed."""
        key = edge_key(u, v)
        if pos < 0 or pos > self._graph.weight(u, v):
            raise StorageError(f"offset {pos} outside edge ({u}, {v})")
        page_no = self._page_of.get(key)
        if page_no is None:
            # place the new record on the last page (or a fresh one)
            page_no = len(self._pages) - 1 if self._pages else self._new_page()
            self._page_of[key] = page_no
        page = self._load_page(page_no)
        record = page.get(key, EdgePointRecord(key[0], key[1], ()))
        if any(existing == pid for existing, _ in record.points):
            raise StorageError(f"point {pid} already on edge {key}")
        new_points = tuple(sorted(record.points + ((pid, float(pos)),),
                                  key=lambda item: (item[1], item[0])))
        page[key] = EdgePointRecord(key[0], key[1], new_points)
        self._write_page(page_no, page)

    def delete_point(self, pid: int, u: int, v: int) -> None:
        """Remove a point from an edge record."""
        key = edge_key(u, v)
        page_no = self._page_of.get(key)
        if page_no is None:
            raise StorageError(f"edge {key} has no points")
        page = self._load_page(page_no)
        record = page.get(key)
        if record is None or all(existing != pid for existing, _ in record.points):
            raise StorageError(f"point {pid} not on edge {key}")
        new_points = tuple(p for p in record.points if p[0] != pid)
        if new_points:
            page[key] = EdgePointRecord(key[0], key[1], new_points)
        else:
            del page[key]
            del self._page_of[key]
        self._write_page(page_no, page)

    def _new_page(self) -> int:
        self._pages.append(encode_edge_point_page([]))
        self._spans.append(1)
        return len(self._pages) - 1

    def _load_page(self, page_no: int) -> dict[tuple[int, int], EdgePointRecord]:
        records = decode_edge_point_page(self._pages[page_no])
        return {(rec.u, rec.v): rec for rec in records}

    def _write_page(
        self, page_no: int, page: Mapping[tuple[int, int], EdgePointRecord]
    ) -> None:
        payload = encode_edge_point_page(list(page.values()))
        self._pages[page_no] = payload
        self._spans[page_no] = _span(payload, self.page_size)
        self.buffer.tracker.page_writes += self._spans[page_no]
        self.buffer.put((self.FILE_TAG, page_no), dict(page), span=self._spans[page_no])


class KnnListStore:
    """Disk-paged materialized K-NN lists (paper Section 4.1).

    Every node owns a fixed-capacity record of up to ``K`` entries
    ``(point id, network distance)`` in ascending distance order, so the
    space overhead is ``O(K |V|)`` as in the paper.  Reads are charged
    through the buffer; updates rewrite the record's page in place and
    charge one write.

    Each store instance gets a distinct file tag so several K-NN files
    (e.g. lists over P and over a reference set Q) can share one buffer
    without their pages aliasing.
    """

    _instances = 0

    def __init__(
        self,
        num_nodes: int,
        capacity: int,
        lists: Mapping[int, Sequence[tuple[int, float]]],
        buffer: BufferManager,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        order: Sequence[int] | None = None,
    ):
        if capacity < 1:
            raise StorageError(f"K must be >= 1, got {capacity}")
        KnnListStore._instances += 1
        self.FILE_TAG = f"knn{KnnListStore._instances}"
        self.capacity = capacity
        self.page_size = page_size
        self.buffer = buffer
        self.num_nodes = num_nodes
        record = knn_record_size(capacity)
        if order is None:
            order = range(num_nodes)
        sizes = [record] * num_nodes
        node_pages = partition_nodes(list(order), sizes, page_size=page_size)
        self._pages: list[bytes] = []
        self._spans: list[int] = []
        self._page_of: list[int] = [-1] * num_nodes
        for page_no, nodes in enumerate(node_pages):
            records = [
                KnnRecord(v, tuple(lists.get(v, ())), capacity) for v in nodes
            ]
            payload = encode_knn_page(records)
            self._pages.append(payload)
            self._spans.append(_span(payload, page_size))
            for v in nodes:
                self._page_of[v] = page_no

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def get(self, node: int) -> tuple[tuple[int, float], ...]:
        """Materialized list of ``node``; a charged logical read."""
        page_no = self._page_of[node]
        page = self.buffer.get(
            (self.FILE_TAG, page_no),
            lambda: self._load_page(page_no),
            span=self._spans[page_no],
        )
        return page[node]

    def put(self, node: int, entries: Sequence[tuple[int, float]]) -> None:
        """Rewrite ``node``'s list in place (one charged page write)."""
        if len(entries) > self.capacity:
            raise StorageError(
                f"list for node {node} has {len(entries)} entries, "
                f"capacity is {self.capacity}"
            )
        page_no = self._page_of[node]
        page = dict(self._load_page(page_no))
        page[node] = tuple((int(pid), float(dist)) for pid, dist in entries)
        records = [KnnRecord(v, lst, self.capacity) for v, lst in page.items()]
        payload = encode_knn_page(records)
        self._pages[page_no] = payload
        self._spans[page_no] = _span(payload, self.page_size)
        self.buffer.tracker.page_writes += self._spans[page_no]
        self.buffer.put((self.FILE_TAG, page_no), page, span=self._spans[page_no])

    def _load_page(self, page_no: int) -> dict[int, tuple[tuple[int, float], ...]]:
        records = decode_knn_page(self._pages[page_no], self.capacity)
        return {rec.node: rec.entries for rec in records}
