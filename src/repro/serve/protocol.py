"""Wire format of the serving tier: JSON lines over TCP, plus HTTP GETs.

One connection carries a stream of newline-delimited JSON objects.
Every request is an object with an ``op`` field:

``query``
    the remaining fields form a :class:`~repro.engine.spec.QuerySpec`
    mapping (``kind``, ``query`` / ``route`` / ``group``, ``k``,
    ``method``, ``radius``, ``exclude``, ...), or a single qlang
    ``statement`` string compiled server-side; the response carries
    the answer and the update generation it was computed at.  A
    truthy ``trace`` envelope field (or an ``EXPLAIN``-prefixed
    statement) makes the response additionally carry the executed
    span tree as ``trace`` (and, for ``EXPLAIN``, the compiled plan
    as ``plan``) -- see :mod:`repro.obs.trace`;
``insert`` / ``delete``
    point mutations (``pid`` plus ``location`` for inserts); the
    response carries the *new* generation;
``compact``
    folds a delta-overlay database's pending mutation log into a
    fresh immutable base (compact backend only); the response carries
    the folded operation count and the new snapshot stamp;
``subscribe``
    registers standing RkNN queries (``queries``: query id -> node id,
    ``k``); after the acknowledgment the server pushes one
    ``membership`` event object per result-set change caused by any
    later mutation, interleaved with the connection's responses;
``metrics`` / ``healthz``
    server introspection (also served as HTTP ``GET /metrics`` and
    ``GET /healthz`` on the same port, for curl and probes).

Responses echo the request's optional ``id`` and always carry a
``status``: ``ok``, ``overloaded`` (admission control shed the request
-- retry later) or ``error`` (the request was invalid; the connection
stays usable).  Pushed events carry an ``event`` field instead of
``status``.

Over a delta-overlay database (the compact backend) every ``query``,
``insert``, ``delete`` and ``compact`` response additionally carries
the snapshot stamp it was computed at as ``base_generation`` /
``delta_epoch`` -- the pair names the exact immutable state (base
arrays plus log prefix) that produced the answer, which is what the
linearizability battery replays against.
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.engine.spec import QuerySpec
from repro.errors import QueryError

#: Request operations understood by the server.
OPS = ("query", "insert", "delete", "compact", "subscribe", "metrics",
       "healthz")

#: Fields of a ``query`` request that are protocol envelope, not spec.
_ENVELOPE_FIELDS = frozenset({"op", "id", "trace"})


def encode(payload: Mapping) -> bytes:
    """Serialize one protocol object to its wire line."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode(line: bytes | str) -> dict:
    """Parse one wire line into a protocol object.

    Raises :class:`~repro.errors.QueryError` on malformed input so the
    server can answer with a clean ``error`` response instead of
    dropping the connection.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise QueryError(f"request is not UTF-8: {exc}") from exc
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise QueryError(f"bad request JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise QueryError(
            f"requests are JSON objects, got {type(payload).__name__}"
        )
    return payload


def request_query(payload: Mapping) -> tuple[QuerySpec, bool, bool]:
    """Extract ``(spec, trace, explain)`` from a ``query`` request.

    A request may carry either raw spec fields or one qlang
    ``statement`` string (``{"op": "query", "statement": "SELECT * FROM
    rknn(query=7, k=2)"}``), which is compiled through
    :func:`repro.qlang.compiler.compile_statements` -- mixing the two
    forms is rejected.

    ``trace`` is the envelope's opt-in flag (``{"trace": true}``): the
    response will carry the executed span tree.  ``explain`` is set by
    an ``EXPLAIN``-prefixed statement and implies a trace plus the
    compiled plan in the response.
    """
    fields = {key: value for key, value in payload.items()
              if key not in _ENVELOPE_FIELDS}
    trace = bool(payload.get("trace"))
    statement = fields.pop("statement", None)
    if statement is not None:
        if fields:
            raise QueryError(
                f"a 'statement' query takes no spec fields, "
                f"got {sorted(fields)}"
            )
        if not isinstance(statement, str):
            raise QueryError(
                f"'statement' is a qlang string, got "
                f"{type(statement).__name__}"
            )
        from repro.qlang import compile_statements

        statements = compile_statements(statement)
        if len(statements) != 1:
            raise QueryError(
                f"a query request takes exactly one statement, "
                f"got {len(statements)}; send one request per statement"
            )
        compiled = statements[0]
        return compiled.spec, trace or compiled.explain, compiled.explain
    return QuerySpec.from_payload(fields), trace, False


def request_spec(payload: Mapping) -> QuerySpec:
    """The :class:`QuerySpec` of a ``query`` request (see
    :func:`request_query`; trace/explain envelope flags are dropped)."""
    return request_query(payload)[0]


def result_payload(result, generation: int,
                   stamp: tuple[int, int] | None = None) -> dict:
    """Serialize a facade result object into a response body.

    ``RnnResult`` answers serialize as ``points`` (sorted point ids),
    ``KnnResult`` answers as ``neighbors`` (``[point id, distance]``
    pairs in ascending distance order) -- exactly the tuples the facade
    returns, so a client can compare byte for byte against a direct
    call at the same generation.  ``stamp`` (delta-overlay backends)
    adds the ``base_generation`` / ``delta_epoch`` snapshot fields.
    """
    body: dict = {"status": "ok", "generation": generation,
                  "io": result.io}
    if stamp is not None:
        body["base_generation"], body["delta_epoch"] = stamp
    if hasattr(result, "points"):
        body["points"] = list(result.points)
    else:
        body["neighbors"] = [[pid, dist] for pid, dist in result.neighbors]
    return body


def error_payload(message: str) -> dict:
    """An ``error`` response body."""
    return {"status": "error", "error": str(message)}


def overloaded_payload(depth: int) -> dict:
    """An ``overloaded`` response body (admission control shed)."""
    return {"status": "overloaded", "queue_depth": depth, "retry": True}


def membership_payload(event, generation: int) -> dict:
    """A pushed ``membership`` event body for one result-set change."""
    return {
        "event": "membership",
        "generation": generation,
        "query_id": event.query_id,
        "point_id": event.point_id,
        "kind": event.kind,
    }
