"""Online serving subsystem: asyncio RkNN server, batcher, client.

The serving tier turns any facade database into a network service:

* :class:`~repro.serve.server.RknnServer` -- the asyncio server:
  JSON-lines protocol over TCP, micro-batched execution through the
  :class:`~repro.engine.engine.QueryEngine`, bounded admission with
  explicit ``overloaded`` shedding, generation-swap safe mutations,
  standing-query event push, ``/metrics`` and ``/healthz``;
* :class:`~repro.serve.batcher.MicroBatcher` -- the coalescing
  admission queue;
* :class:`~repro.serve.client.ServeClient` -- the blocking client used
  by tests, benchmarks and the CI replay job;
* :func:`~repro.serve.server.serve_in_thread` -- run a server on a
  background thread (the embedding tests and examples use);
* :class:`~repro.serve.fleet.FleetServer` -- the multi-process
  scale-out form: the same protocol, executed by N worker processes
  over one shared mmap'd snapshot (``repro serve --workers N``), with
  :func:`~repro.serve.fleet.fleet_in_thread` as its embedding helper.

Start one from the command line with ``repro serve`` (see
:mod:`repro.cli`).
"""

from repro.serve.batcher import BatcherStats, MicroBatcher, QueueFull
from repro.serve.client import ServeClient, http_get, http_get_text, replay
from repro.serve.fleet import FleetServer, WorkerDied, fleet_in_thread
from repro.serve.server import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_QUEUE,
    DEFAULT_WINDOW,
    ConnectionServer,
    GenerationGate,
    RknnServer,
    ServerHandle,
    serve_in_thread,
)

__all__ = [
    "BatcherStats",
    "ConnectionServer",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_WINDOW",
    "FleetServer",
    "GenerationGate",
    "MicroBatcher",
    "QueueFull",
    "RknnServer",
    "ServeClient",
    "ServerHandle",
    "WorkerDied",
    "fleet_in_thread",
    "http_get",
    "http_get_text",
    "replay",
    "serve_in_thread",
]
