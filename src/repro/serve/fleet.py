"""Multi-process serving: a router fanning out to snapshot workers.

One asyncio process cannot outrun the GIL; the fleet can.
:class:`FleetServer` is the scale-out form of
:class:`~repro.serve.server.RknnServer`: the same wire protocol, the
same micro-batching and backpressure, but query execution happens in
``N`` **worker processes**, each running the compact backend over the
same mmap'd snapshot (:mod:`repro.compact.snapshot`), so the CSR
arrays exist once in physical memory no matter how many workers map
them -- ``read_clone()`` made zero-copy across processes.

**Routing (admission-time scatter).**  Every query is routed to its
*home worker* -- the worker owning the query node's slice of the
packing order, so each worker's caches and materialized reads stay
concentrated on one locality region (home-shard affinity).  Each
worker gets its own :class:`~repro.serve.batcher.MicroBatcher`;
coalesced batches travel over a control pipe as one message and come
back as ready response bodies.  The per-connection drain in
:class:`~repro.serve.server.ConnectionServer` gathers responses back
into request order.

**Fleet-wide generation safety.**  Mutations and ``compact`` requests
are broadcast to every live worker under a router-side mutation lock,
and the router verifies that all workers report the **same**
post-operation stamp before acknowledging -- fleet-wide agreement on
``(base_generation, delta_epoch)``.  Every query batch executes wholly
inside one worker, whose single dispatch loop captures the stamp and
the answers in the same serialized interval, so no response ever mixes
base generations -- the same guarantee the single-process
GenerationGate gives, held across processes.  Read-your-writes per
connection survives too: a mutation barriers the connection's read
loop until every worker applied it, so any later query observes the
new stamp on whichever worker serves it.

**Fault handling.**  A worker death is detected at the pipe (EOF /
broken pipe).  In-flight and future batches for the dead worker are
*rerouted* to the next live worker -- safe, because every worker holds
the complete snapshot and has applied the same mutation log -- and the
death is surfaced in ``/metrics`` (``live_workers``, ``reroutes``).
With no workers left the router sheds with explicit errors instead of
hanging.  Standing-query subscriptions are not offered in fleet mode.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import multiprocessing
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.errors import QueryError, ReproError
from repro.obs.metrics import MetricsRegistry
from repro.serve import protocol
from repro.serve.batcher import MicroBatcher
from repro.serve.server import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_QUEUE,
    DEFAULT_WINDOW,
    ConnectionServer,
    ServerHandle,
)

#: The fleet router's logger (a child of ``repro.serve``, so the CLI's
#: ``--log-level`` flag covers both serving modes).
logger = logging.getLogger("repro.serve.fleet")

#: Seconds the router waits for a worker to load its snapshot and
#: report ready (spawned interpreters pay an import, so be generous).
DEFAULT_START_TIMEOUT = 120.0


class WorkerDied(ReproError):
    """The control pipe to a worker process broke (crash or kill)."""


def _dispatch(db, engine, config: dict, request: dict) -> dict:
    """Execute one control-pipe request inside the worker process.

    The worker's single dispatch loop is its serialization point:
    a batch's stamp and answers are captured in the same interval,
    and mutations land strictly between batches -- the per-process
    analogue of the single-thread executor in
    :class:`~repro.serve.server.RknnServer`.
    """
    kind = request["kind"]
    if kind == "batch":
        generation = db.generation
        stamp = db.stamp
        specs = request["specs"]
        if request.get("trace"):
            # traced/EXPLAIN batches run under a worker-local tracer;
            # the span tree rides home over the pipe in each body
            from repro.obs.trace import Tracer

            tracer = Tracer()
            outcome = engine.run_batch(
                specs, workers=config.get("engine_workers", 1),
                tracer=tracer,
            )
            bodies = [
                protocol.result_payload(result, generation, stamp)
                for result in outcome.results
            ]
            trace_payload = tracer.to_payload()
            for body in bodies:
                body["trace"] = trace_payload
            if request.get("explain"):
                from repro.qlang.api import build_plan

                for body, spec in zip(bodies, specs):
                    body["explain"] = True
                    body["plan"] = build_plan(engine, spec)
            return {"kind": "bodies", "bodies": bodies}
        outcome = engine.run_batch(
            specs, workers=config.get("engine_workers", 1)
        )
        return {
            "kind": "bodies",
            "bodies": [
                protocol.result_payload(result, generation, stamp)
                for result in outcome.results
            ],
        }
    if kind == "mutate":
        if request["op"] == "insert":
            outcome = db.insert_point(request["pid"], request["location"])
        else:
            outcome = db.delete_point(request["pid"])
        return {
            "kind": "applied",
            "generation": db.generation,
            "stamp": list(db.stamp),
            "affected": outcome.affected_nodes,
            "io": outcome.io,
        }
    if kind == "compact":
        outcome = db.compact()
        return {
            "kind": "compacted",
            "folded": outcome.affected_nodes,
            "generation": db.generation,
            "stamp": list(db.stamp),
            "io": outcome.io,
        }
    if kind == "stop":
        return {"kind": "stopped"}
    return {"kind": "error", "message": f"unknown request kind {kind!r}"}


def _worker_main(conn, snapshot_dir: str, config: dict) -> None:
    """Entry point of one worker process (spawned by the router).

    Loads the shared snapshot with ``mmap=True`` (constant time, pages
    shared fleet-wide), optionally materializes K-NN lists and builds
    the landmark oracle -- both deterministic, so every worker ends up
    answer-identical -- then serves the control pipe until it closes
    or a ``stop`` arrives.
    """
    from repro.compact.db import CompactDatabase

    try:
        db = CompactDatabase.load_snapshot(snapshot_dir, mmap=True)
        if config.get("materialize"):
            db.materialize(config["materialize"])
        if config.get("oracle_landmarks"):
            db.build_oracle(config["oracle_landmarks"])
        engine = db.engine(cache_entries=config.get("cache_entries", 4096))
    except Exception as exc:
        with contextlib.suppress(OSError):
            conn.send({"kind": "error", "message": f"worker boot: {exc}"})
        return
    conn.send({"kind": "ready", "stamp": list(db.stamp)})
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            # the router is gone; exit instead of lingering as an orphan
            return
        try:
            reply = _dispatch(db, engine, config, request)
        except ReproError as exc:
            reply = {"kind": "error", "message": str(exc)}
        except Exception as exc:  # never kill the loop on one bad request
            reply = {"kind": "error",
                     "message": f"{type(exc).__name__}: {exc}"}
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return
        if request.get("kind") == "stop":
            return


class WorkerHandle:
    """The router's view of one worker process.

    Calls are serialized per worker: an :class:`asyncio.Lock` admits
    one round-trip at a time and a single-thread executor performs the
    blocking pipe send/recv off the event loop, so the loop never
    blocks on a worker and two coroutines never interleave on one
    pipe.  A broken pipe flips :attr:`alive` and every later call
    raises :class:`WorkerDied` immediately.
    """

    def __init__(self, index: int, process, conn):
        self.index = index
        self.process = process
        self.conn = conn
        self.alive = True
        self._lock = asyncio.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"fleet-worker-{index}"
        )

    async def wait_ready(self, timeout: float) -> tuple[int, int]:
        """Await the worker's ready message; return its boot stamp."""
        loop = asyncio.get_running_loop()

        def recv_ready():
            if not self.conn.poll(timeout):
                raise WorkerDied(
                    f"worker {self.index} not ready after {timeout:g} s"
                )
            return self.conn.recv()

        try:
            reply = await loop.run_in_executor(self._executor, recv_ready)
        except (EOFError, OSError) as exc:
            self.alive = False
            raise WorkerDied(f"worker {self.index} died booting") from exc
        if reply.get("kind") != "ready":
            self.alive = False
            raise WorkerDied(
                f"worker {self.index} failed to boot: "
                f"{reply.get('message', reply)}"
            )
        return tuple(reply["stamp"])

    async def call(self, request: dict) -> dict:
        """One serialized request/reply round-trip over the pipe."""
        if not self.alive:
            raise WorkerDied(f"worker {self.index} is dead")
        async with self._lock:
            if not self.alive:
                raise WorkerDied(f"worker {self.index} is dead")
            loop = asyncio.get_running_loop()

            def roundtrip():
                self.conn.send(request)
                return self.conn.recv()

            try:
                return await loop.run_in_executor(self._executor, roundtrip)
            except (EOFError, BrokenPipeError, OSError) as exc:
                self.alive = False
                raise WorkerDied(
                    f"worker {self.index} died mid-call: {exc!r}"
                ) from exc

    def close(self) -> None:
        """Tear down the pipe and the call thread (process join is the
        router's job)."""
        self.alive = False
        with contextlib.suppress(OSError):
            self.conn.close()
        self._executor.shutdown(wait=False)


class FleetServer(ConnectionServer):
    """Router process of the worker fleet (same wire protocol as
    :class:`~repro.serve.server.RknnServer`).

    Parameters
    ----------
    snapshot_dir:
        A snapshot directory written by
        :meth:`~repro.compact.db.CompactDatabase.save_snapshot`; every
        worker maps it read-only.
    workers:
        Worker process count (>= 1).
    window / max_batch / max_queue:
        Per-worker micro-batching and admission parameters.
    materialize:
        K-NN list capacity each worker materializes at boot (0 = none).
    oracle_landmarks:
        Landmark count each worker's oracle is built with (``None`` =
        no oracle).
    cache_entries:
        Per-worker engine result-cache capacity.
    start_timeout:
        Seconds to wait for every worker to report ready.
    """

    def __init__(self, snapshot_dir, *, workers: int = 2,
                 window: float = DEFAULT_WINDOW,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 max_queue: int = DEFAULT_MAX_QUEUE,
                 materialize: int = 0, oracle_landmarks: int | None = None,
                 cache_entries: int = 4096,
                 start_timeout: float = DEFAULT_START_TIMEOUT):
        super().__init__()
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        from repro.compact.db import CompactDatabase

        self.snapshot_dir = Path(snapshot_dir)
        # constant-time mmap load: the router itself never answers
        # queries, it only needs the packing rank for home routing
        routing = CompactDatabase.load_snapshot(self.snapshot_dir, mmap=True)
        self._rank = routing.store._rank
        self._num_nodes = routing.store.num_nodes
        self.num_workers = workers
        self.window = window
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.start_timeout = start_timeout
        self._config = {
            "materialize": materialize,
            "oracle_landmarks": oracle_landmarks,
            "cache_entries": cache_entries,
            "engine_workers": 1,
        }
        self._workers: list[WorkerHandle] = []
        self._batchers: list[MicroBatcher] = []
        self._mutation_lock = asyncio.Lock()
        self._stamp: tuple[int, int] = (0, 0)
        self._generation = 0
        self.queries_served = 0
        self.mutations_applied = 0
        self.compactions = 0
        self.reroutes = 0
        self.registry = self._build_registry()

    def _build_registry(self) -> MetricsRegistry:
        """Wire the router's observables into one metrics registry.

        Everything is callback-backed over the router's own state (the
        plain attributes the tests and benchmarks read); the admission
        callbacks sum across the per-worker batchers at render time,
        so the registry stays correct as workers die.  The latency
        histogram (round-trip seconds per worker batch, pipe included)
        is the only owned series.
        """
        registry = MetricsRegistry()
        registry.counter("queries_served", "Queries answered",
                         fn=lambda: self.queries_served)
        registry.counter("mutations_applied", "Point mutations applied",
                         fn=lambda: self.mutations_applied)
        registry.counter("compactions", "Delta-log folds",
                         fn=lambda: self.compactions)
        registry.counter("errors", "Requests answered with an error",
                         fn=lambda: self.errors)
        registry.counter("reroutes", "Queries rerouted off dead workers",
                         fn=lambda: self.reroutes)
        registry.counter(
            "worker_deaths", "Worker processes lost",
            fn=lambda: sum(1 for w in self._workers if not w.alive),
        )
        for key in ("admitted", "shed", "batches", "coalesced"):
            registry.counter(
                f"admission_{key}", f"Admission control: {key}",
                fn=(lambda name: lambda: sum(
                    getattr(b.stats, name) for b in self._batchers
                ))(key),
            )
        registry.gauge("workers", "Configured worker processes",
                       fn=lambda: self.num_workers)
        registry.gauge(
            "live_workers", "Workers currently answering",
            fn=lambda: sum(1 for w in self._workers if w.alive),
        )
        registry.gauge("generation", "Fleet-wide update generation",
                       fn=lambda: self._generation)
        registry.gauge("base_generation", "Overlay base generation",
                       fn=lambda: self._stamp[0])
        registry.gauge("delta_epoch", "Overlay delta epoch",
                       fn=lambda: self._stamp[1])
        registry.gauge("queue_depth", "Summed admission queue depth",
                       fn=lambda: sum(b.depth for b in self._batchers))
        self.latency = registry.histogram(
            "batch_seconds", "Worker batch round-trip latency (seconds)"
        )
        return registry

    # -- lifecycle ----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Spawn and await the workers, then bind the listener."""
        await self._start_workers()
        self._batchers = [
            MicroBatcher(
                self._runner_for(index), window=self.window,
                max_batch=self.max_batch, max_queue=self.max_queue,
            )
            for index in range(self.num_workers)
        ]
        await super().start(host, port)

    async def _start_workers(self) -> None:
        """Spawn every worker, then gather their ready stamps."""
        context = multiprocessing.get_context("spawn")
        for index in range(self.num_workers):
            parent, child = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(child, str(self.snapshot_dir), self._config),
                daemon=True,
                name=f"repro-serve-worker-{index}",
            )
            process.start()
            child.close()
            self._workers.append(WorkerHandle(index, process, parent))
        stamps = await asyncio.gather(
            *(worker.wait_ready(self.start_timeout)
              for worker in self._workers)
        )
        if len(set(stamps)) != 1:  # pragma: no cover - defensive
            raise ReproError(f"workers booted at diverging stamps {stamps}")
        self._stamp = stamps[0]

    async def stop(self) -> None:
        """Close the listener, drain batchers, shut every worker down."""
        await super().stop()
        for batcher in self._batchers:
            await batcher.close()
        for worker in self._workers:
            if worker.alive:
                with contextlib.suppress(ReproError, asyncio.TimeoutError):
                    await asyncio.wait_for(
                        worker.call({"kind": "stop"}), timeout=5
                    )
            worker.close()
        loop = asyncio.get_running_loop()
        for worker in self._workers:
            await loop.run_in_executor(None, worker.process.join, 5)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()

    # -- routing ------------------------------------------------------------

    def _worker_of(self, spec) -> int:
        """Home worker of a spec: its node's slice of the packing order.

        Nodes adjacent in the packing order (the locality rank the
        batch planner already uses) land on the same worker, so each
        worker's result cache and page-warm region stay concentrated
        -- the process-level form of home-shard affinity.
        """
        node = spec.query
        if isinstance(node, int) and 0 <= node < self._num_nodes:
            return self._rank[node] * self.num_workers // self._num_nodes
        return 0

    def _next_live(self, index: int) -> int | None:
        """The first live worker at or after ``index`` (wrapping)."""
        for step in range(self.num_workers):
            candidate = (index + step) % self.num_workers
            if self._workers[candidate].alive:
                return candidate
        return None

    def _admit_query(self, payload: dict):
        """Admit a query into its home worker's batcher.

        A dead home worker reroutes at admission; with no live worker
        the request is refused outright (clean error, no hang).  A
        ``trace``-flagged (or ``EXPLAIN``) request bypasses the batcher
        and ships to its worker as a dedicated single-spec batch, so
        the returned span tree covers exactly that request.
        """
        spec, trace, explain = protocol.request_query(payload)
        home = self._worker_of(spec)
        target = home if self._workers[home].alive else self._next_live(home)
        if target is None:
            raise ReproError("no live workers in the fleet")
        if target != home:
            self.reroutes += 1
            logger.warning(
                "rerouted query at admission: worker %d is dead, "
                "using worker %d", home, target,
            )
        if trace:
            return asyncio.get_running_loop().create_task(
                self._run_traced(target, spec, explain)
            )
        return self._batchers[target].admit(spec)

    async def _run_traced(self, index: int, spec, explain: bool) -> dict:
        """One traced spec as its own worker batch; return its body."""
        bodies = await self._run_worker_batch(
            index, [spec], trace=True, explain=explain
        )
        return bodies[0]

    def _runner_for(self, index: int):
        """The batch runner bound to worker ``index``'s pipe."""

        async def run(specs):
            return await self._run_worker_batch(index, specs)

        return run

    async def _run_worker_batch(self, index: int, specs, *,
                                trace: bool = False, explain: bool = False):
        """Ship one coalesced batch to a worker; reroute on death.

        The reply's bodies each carry the stamp the worker captured
        immediately before executing the batch -- one worker, one
        serialized interval, one stamp per response.  A worker dying
        mid-batch reroutes the whole batch to the next live worker
        (every worker holds the full snapshot and mutation history, so
        any of them answers identically).
        """
        request = {"kind": "batch", "specs": list(specs)}
        if trace:
            request["trace"] = True
            request["explain"] = explain
        began = time.perf_counter()
        try:
            reply = await self._workers[index].call(request)
        except WorkerDied:
            target = self._next_live(index)
            if target is None:
                raise ReproError("no live workers to run the batch") from None
            self.reroutes += len(specs)
            logger.warning(
                "worker %d died mid-batch; rerouting %d queries to "
                "worker %d", index, len(specs), target,
            )
            reply = await self._workers[target].call(request)
        if reply.get("kind") == "error":
            raise ReproError(reply["message"])
        self.queries_served += len(specs)
        self.latency.observe(time.perf_counter() - began)
        return reply["bodies"]

    # -- fleet-wide mutations -----------------------------------------------

    async def _broadcast(self, request: dict) -> dict:
        """Apply one mutating request on every live worker; verify stamps.

        The mutation lock serializes broadcasts, so every worker
        applies the same operations in the same order.  After the
        fan-out the router asserts that all live workers report the
        **same** post-operation stamp -- the fleet-wide extension of
        the generation gate's invariant; divergence (a worker applying
        out of order) fails loudly instead of serving mixed answers.
        A worker dying mid-broadcast just leaves the fleet (it will
        never answer again, so it cannot leak a stale generation).
        """
        async with self._mutation_lock:
            replies = []
            for worker in self._workers:
                if not worker.alive:
                    continue
                try:
                    replies.append(await worker.call(request))
                except WorkerDied:
                    logger.warning(
                        "worker %d died during %s broadcast; dropping it "
                        "from the fleet", worker.index, request["kind"],
                    )
                    continue
            if not replies:
                raise ReproError("no live workers in the fleet")
            failed = [r for r in replies if r.get("kind") == "error"]
            if failed:
                # deterministic databases fail identically on every
                # worker (e.g. inserting an existing pid)
                raise ReproError(failed[0]["message"])
            stamps = {tuple(reply["stamp"]) for reply in replies}
            if len(stamps) != 1:  # pragma: no cover - defensive
                raise ReproError(
                    f"fleet stamp divergence after {request['kind']}: "
                    f"{sorted(stamps)}"
                )
            reply = replies[0]
            self._stamp = tuple(reply["stamp"])
            self._generation = reply["generation"]
            return reply

    async def _mutate(self, op: str, payload: dict) -> dict:
        """Broadcast one point mutation to the whole fleet."""
        pid = int(payload["pid"])
        location = payload.get("location")
        if isinstance(location, list):
            location = tuple(location)
        reply = await self._broadcast({
            "kind": "mutate", "op": op, "pid": pid, "location": location,
        })
        self.mutations_applied += 1
        return {
            "status": "ok",
            "op": op,
            "generation": reply["generation"],
            "updated_lists": reply["affected"],
            "io": reply["io"],
            "base_generation": self._stamp[0],
            "delta_epoch": self._stamp[1],
        }

    async def _compact(self) -> dict:
        """Broadcast the fold; every worker bumps to the same new base."""
        reply = await self._broadcast({"kind": "compact"})
        self.compactions += 1
        logger.info(
            "fleet compacted %d folded operations; new stamp (%d, %d)",
            reply["folded"], self._stamp[0], self._stamp[1],
        )
        return {
            "status": "ok",
            "op": "compact",
            "folded": reply["folded"],
            "generation": reply["generation"],
            "base_generation": self._stamp[0],
            "delta_epoch": self._stamp[1],
            "io": reply["io"],
        }

    async def _subscribe(self, payload: dict, writer) -> dict:
        """Standing queries need one live database; refuse cleanly."""
        raise ReproError(
            "subscribe is not supported in fleet mode (--workers > 1); "
            "run a single-process server for standing queries"
        )

    # -- introspection ------------------------------------------------------

    def metrics(self) -> dict:
        """Router-side counters plus fleet membership for ``/metrics``."""
        live = sum(1 for worker in self._workers if worker.alive)
        admission = {"admitted": 0, "shed": 0, "batches": 0, "coalesced": 0}
        for batcher in self._batchers:
            for key, value in batcher.stats.snapshot().items():
                admission[key] += value
        return {
            "backend": "compact",
            "mode": "fleet",
            "workers": self.num_workers,
            "live_workers": live,
            "worker_deaths": self.num_workers - live,
            "reroutes": self.reroutes,
            "generation": self._generation,
            "base_generation": self._stamp[0],
            "delta_epoch": self._stamp[1],
            "queue_depth": sum(b.depth for b in self._batchers),
            "queries_served": self.queries_served,
            "mutations_applied": self.mutations_applied,
            "compactions": self.compactions,
            "errors": self.errors,
            "subscriptions": 0,
            "admission": admission,
            "latency": self.latency.to_dict(),
        }

    def metrics_text(self) -> str:
        """Prometheus text exposition of the registry (loop-thread only)."""
        return self.registry.render_prometheus()

    def _health(self) -> dict:
        live = sum(1 for worker in self._workers if worker.alive)
        return {
            "status": "ok" if live else "error",
            "generation": self._generation,
            "backend": "compact",
            "workers": self.num_workers,
            "live_workers": live,
            "base_generation": self._stamp[0],
            "delta_epoch": self._stamp[1],
        }


@contextlib.contextmanager
def fleet_in_thread(source, *, workers: int = 2, host: str = "127.0.0.1",
                    port: int = 0, **kwargs):
    """Run a :class:`FleetServer` on a daemon thread; yield its handle.

    ``source`` is either a snapshot directory or a
    :class:`~repro.compact.db.CompactDatabase` (snapshotted into a
    temporary directory for the fleet's lifetime).  The multi-process
    counterpart of :func:`~repro.serve.server.serve_in_thread`::

        with fleet_in_thread(db, workers=4) as handle:
            client = ServeClient(handle.host, handle.port)
            ...
    """
    own_dir = None
    if hasattr(source, "save_snapshot"):
        own_dir = tempfile.TemporaryDirectory(prefix="repro-fleet-")
        source.save_snapshot(own_dir.name)
        source = own_dir.name
    try:
        server = FleetServer(source, workers=workers, **kwargs)
        ready = threading.Event()

        def _run() -> None:
            asyncio.run(
                server.run(host, port, ready=lambda _address: ready.set())
            )

        thread = threading.Thread(target=_run, daemon=True,
                                  name="repro-fleet")
        thread.start()
        if not ready.wait(timeout=DEFAULT_START_TIMEOUT):
            server.request_stop()
            raise RuntimeError("fleet failed to start within the timeout")
        handle = ServerHandle(server, thread)
        try:
            yield handle
        finally:
            handle.stop()
    finally:
        if own_dir is not None:
            own_dir.cleanup()
