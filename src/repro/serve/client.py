"""Blocking client for the serving tier (tests, benchmarks, replay).

:class:`ServeClient` speaks the JSON-lines protocol of
:mod:`repro.serve.protocol` over one TCP connection.  Requests can be
issued one at a time (:meth:`request`) or pipelined
(:meth:`pipeline`), which is what lets a single client drive the
server's micro-batcher to full batches.

The module is also the CI replay tool: ``python -m repro.serve.client
--address HOST:PORT --replay requests.jsonl`` replays a recorded
request log against a running server and fails on any ``error``
response::

    python -m repro generate --kind grid --nodes 100 --density 0.1 -o g.graph
    python -m repro serve g.graph --port 8750 &
    python -m repro.serve.client --address 127.0.0.1:8750 \\
        --replay benchmarks/data/serve_requests.jsonl
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
from typing import Iterable, Sequence

from repro.serve import protocol


class ServeClient:
    """One blocking protocol connection to a running server.

    Parameters
    ----------
    host / port:
        The server's bound address (see
        :func:`~repro.serve.server.serve_in_thread` or ``repro serve``).
    timeout:
        Socket timeout in seconds for connects and reads.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        #: Pushed membership events buffered by :meth:`recv_response`
        #: (populated when requests and a subscription share the
        #: connection; drain with :meth:`recv` when awaiting events).
        self.events: list[dict] = []

    # -- plumbing -----------------------------------------------------------

    def send(self, payload: dict) -> None:
        """Send one request object without waiting for its response."""
        self._file.write(protocol.encode(payload))
        self._file.flush()

    def recv(self) -> dict:
        """Read the next response (or pushed event) object."""
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    def recv_response(self) -> dict:
        """Read the next *response*, buffering pushed events.

        Membership events interleave with responses on a subscribed
        connection; letting them consume response slots would
        desynchronize pipelined request/response accounting, so they
        are parked in :attr:`events` instead.
        """
        while True:
            payload = self.recv()
            if "event" in payload:
                self.events.append(payload)
                continue
            return payload

    def request(self, payload: dict) -> dict:
        """Send one request and wait for its response."""
        self.send(payload)
        return self.recv_response()

    def pipeline(self, payloads: Sequence[dict]) -> list[dict]:
        """Send every request back to back, then collect the responses.

        Pipelining is what feeds the server's coalescing window: the
        requests arrive together and execute as shared engine batches.
        """
        for payload in payloads:
            self._file.write(protocol.encode(payload))
        self._file.flush()
        return [self.recv_response() for _ in payloads]

    # -- queries ------------------------------------------------------------

    def query(self, kind: str, query=None, k: int = 1, **fields) -> dict:
        """Run one query (``kind``, location, ``k`` plus spec fields)."""
        payload = {"op": "query", "kind": kind, "k": k, **fields}
        if query is not None:
            payload["query"] = query
        return self.request(payload)

    def rknn(self, query, k: int = 1, method: str = "eager", **fields) -> dict:
        """Reverse k-NN of a location."""
        return self.query("rknn", query, k, method=method, **fields)

    def knn(self, query, k: int = 1, **fields) -> dict:
        """Forward k-NN of a location."""
        return self.query("knn", query, k, **fields)

    # -- mutations and standing queries -------------------------------------

    def insert(self, pid: int, location) -> dict:
        """Insert a data point; returns the new generation."""
        return self.request({"op": "insert", "pid": pid, "location": location})

    def delete(self, pid: int) -> dict:
        """Delete a data point; returns the new generation."""
        return self.request({"op": "delete", "pid": pid})

    def compact(self) -> dict:
        """Fold the server's delta-overlay log into a fresh base.

        Compact backend only; the response carries the folded
        operation count and the new ``base_generation`` /
        ``delta_epoch`` snapshot stamp.
        """
        return self.request({"op": "compact"})

    def subscribe(self, queries: dict, k: int = 1) -> dict:
        """Register standing RkNN queries on this connection.

        After the acknowledgment, membership events arrive interleaved
        on this connection; read them with :meth:`recv`.
        """
        return self.request({"op": "subscribe",
                             "queries": {str(q): n for q, n in queries.items()},
                             "k": k})

    # -- introspection ------------------------------------------------------

    def metrics(self) -> dict:
        """The server's metrics snapshot."""
        return self.request({"op": "metrics"})

    def healthz(self) -> dict:
        """The server's health summary."""
        return self.request({"op": "healthz"})

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Close the connection."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def http_get_text(host: str, port: int, path: str,
                  timeout: float = 10.0) -> str:
    """Fetch one HTTP path and return the raw response body.

    The text form behind :func:`http_get`, also used directly for the
    Prometheus exposition at ``/metrics?format=prometheus`` (which is
    not JSON).
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
                     f"Connection: close\r\n\r\n".encode("latin-1"))
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks)
    header, _, body = raw.partition(b"\r\n\r\n")
    status = header.split(b"\r\n", 1)[0].decode("latin-1")
    if " 200 " not in f"{status} ":
        raise ConnectionError(f"HTTP request failed: {status}")
    return body.decode("utf-8")


def http_get(host: str, port: int, path: str, timeout: float = 10.0) -> dict:
    """Fetch ``/metrics`` or ``/healthz`` over plain HTTP (JSON body)."""
    return json.loads(http_get_text(host, port, path, timeout=timeout))


def replay(lines: Iterable[str], host: str, port: int,
           pipeline_size: int = 32) -> dict:
    """Replay a recorded request log; return a response tally.

    ``lines`` hold one request object per line (blank lines and ``#``
    comments skipped).  Requests are sent in pipelined chunks so the
    replay exercises the server's batching path.  Raises
    :class:`AssertionError` on any ``error`` response -- the CI smoke
    job treats a failed replay as a failed build.
    """
    payloads = []
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        payloads.append(json.loads(line))
    tally = {"requests": len(payloads), "ok": 0, "overloaded": 0, "events": 0}
    with ServeClient(host, port) as client:
        for start in range(0, len(payloads), pipeline_size):
            chunk = payloads[start:start + pipeline_size]
            for response in client.pipeline(chunk):
                status = response.get("status")
                if status == "ok":
                    tally["ok"] += 1
                elif status == "overloaded":
                    tally["overloaded"] += 1
                else:
                    raise AssertionError(f"replay got error response: {response}")
        tally["events"] = len(client.events)
    return tally


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point: replay a request log against a running server."""
    parser = argparse.ArgumentParser(
        prog="repro.serve.client",
        description="replay a recorded request log against a repro server",
    )
    parser.add_argument("--address", required=True, metavar="HOST:PORT",
                        help="server address, e.g. 127.0.0.1:8750")
    parser.add_argument("--replay", required=True, metavar="FILE",
                        help="JSONL request log (one request per line)")
    parser.add_argument("--pipeline", type=int, default=32,
                        help="requests per pipelined chunk")
    args = parser.parse_args(argv)
    host, _, port = args.address.rpartition(":")
    with open(args.replay) as handle:
        tally = replay(handle, host, int(port), pipeline_size=args.pipeline)
    print(f"replayed {tally['requests']} requests: {tally['ok']} ok, "
          f"{tally['overloaded']} overloaded, {tally['events']} events")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
