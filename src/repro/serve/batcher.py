"""Micro-batching admission queue with bounded backpressure.

The server does not execute queries one request at a time: requests
admitted within a short *coalescing window* are collected into one
batch and executed together through the
:class:`~repro.engine.engine.QueryEngine`, which dedupes repeats,
serves cache hits and orders the misses for page locality.  The window
closes early when ``max_batch`` requests are waiting, so a saturated
server runs full batches back to back and an idle one adds at most
``window`` seconds of latency to a lone request.

Admission is *bounded*: at most ``max_queue`` requests may be waiting
(coalescing plus queued behind an in-flight batch).  Beyond that the
batcher sheds -- :meth:`MicroBatcher.submit` raises :class:`QueueFull`
and the server answers ``overloaded`` immediately, trading an explicit
retry signal for unbounded queueing latency.

The batcher is a single-consumer design: one long-lived worker task
drains the admission queue, so batches execute strictly one after
another and the server's generation gate only ever arbitrates between
*one* reader (the running batch) and the mutation stream.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from repro.engine.spec import QuerySpec


class QueueFull(Exception):
    """Admission control rejected a request (queue at capacity)."""

    def __init__(self, depth: int):
        super().__init__(f"admission queue full ({depth} requests waiting)")
        self.depth = depth


@dataclass
class BatcherStats:
    """Monotonic counters surfaced through the ``/metrics`` endpoint."""

    admitted: int = 0
    shed: int = 0
    batches: int = 0
    coalesced: int = 0  # requests that shared a batch with at least one other

    def snapshot(self) -> dict:
        """Flat mapping for the metrics payload."""
        return {
            "admitted": self.admitted,
            "shed": self.shed,
            "batches": self.batches,
            "coalesced": self.coalesced,
        }


@dataclass
class _Pending:
    """One admitted request waiting for its batch to run."""

    spec: QuerySpec
    future: asyncio.Future = field(repr=False)


class MicroBatcher:
    """Coalesce admitted query specs into engine batches.

    Parameters
    ----------
    runner:
        Async callable executing one batch: takes a list of specs,
        returns an index-aligned list of outcomes (the server supplies
        the generation-pinned engine call).
    window:
        Coalescing window in seconds.  The first request of a batch
        starts the timer; the batch flushes when it expires (or fills).
    max_batch:
        Flush immediately once this many requests are waiting.
    max_queue:
        Admission bound: maximum requests waiting (coalescing or queued
        behind the in-flight batch) before :meth:`submit` sheds.
    """

    def __init__(self, runner, *, window: float = 0.002,
                 max_batch: int = 32, max_queue: int = 1024):
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self._runner = runner
        self.window = window
        self.max_batch = max_batch
        self.max_queue = max_queue
        self.stats = BatcherStats()
        self._pending: list[_Pending] = []
        self._wakeup = asyncio.Event()
        self._worker_task: asyncio.Task | None = None
        self._closed = False

    @property
    def depth(self) -> int:
        """Requests currently waiting for a batch to run."""
        return len(self._pending)

    def admit(self, spec: QuerySpec) -> asyncio.Future:
        """Admit one query synchronously; return the future of its outcome.

        Admission at call time (no coroutine scheduling in between) is
        what lets the server coalesce a pipelined connection: every
        request line joins the pending batch the moment it is read.
        Raises :class:`QueueFull` when admission control sheds the
        request; the returned future fails with
        :class:`ConnectionError` if the batcher closes first.
        """
        if self._closed:
            raise ConnectionError("batcher is closed")
        if len(self._pending) >= self.max_queue:
            self.stats.shed += 1
            raise QueueFull(len(self._pending))
        if self._worker_task is None:
            self._worker_task = asyncio.get_running_loop().create_task(
                self._worker()
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending.append(_Pending(spec, future))
        self.stats.admitted += 1
        self._wakeup.set()
        return future

    async def submit(self, spec: QuerySpec):
        """Admit one query; await and return the runner's outcome for it.

        Raises :class:`QueueFull` when admission control sheds the
        request, and :class:`ConnectionError` if the batcher closes
        while the request waits.
        """
        return await self.admit(spec)

    async def fence(self) -> None:
        """Wait until every request admitted so far has been executed.

        The mutation barrier: the server fences the batcher before
        taking the exclusive generation lease, so a query admitted
        before a mutation always executes at the pre-mutation
        generation (the batch already in flight is the generation
        gate's concern, not ours).  Requests admitted *after* the fence
        simply land behind the mutation's write lease.
        """
        waiting = [item.future for item in self._pending]
        if waiting:
            await asyncio.gather(*waiting, return_exceptions=True)

    async def _worker(self) -> None:
        """Single consumer: coalesce, then run batches back to back."""
        loop = asyncio.get_running_loop()
        while not self._closed:
            if not self._pending:
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            if self.window > 0 and len(self._pending) < self.max_batch:
                # coalescing window: hold the batch open until it fills
                # or the window since the first waiter expires
                deadline = loop.time() + self.window
                while (not self._closed
                       and len(self._pending) < self.max_batch):
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    self._wakeup.clear()
                    try:
                        await asyncio.wait_for(self._wakeup.wait(), remaining)
                    except asyncio.TimeoutError:
                        break
            if self._closed:
                break
            batch = self._pending[: self.max_batch]
            del self._pending[: self.max_batch]
            await self._run_batch(batch)

    async def _run_batch(self, batch: list[_Pending]) -> None:
        if not batch:
            return
        self.stats.batches += 1
        if len(batch) > 1:
            self.stats.coalesced += len(batch)
        try:
            outcomes = await self._runner([item.spec for item in batch])
        except Exception as exc:
            if len(batch) == 1:
                if not batch[0].future.done():
                    batch[0].future.set_exception(exc)
                return
            # isolate the failure: one bad query (e.g. an out-of-range
            # node that only the facade can reject) must not fail the
            # valid queries that happened to share its window
            for item in batch:
                await self._run_batch([item])
            return
        for item, outcome in zip(batch, outcomes):
            if not item.future.done():
                item.future.set_result(outcome)

    async def close(self) -> None:
        """Stop the worker and fail every waiting request."""
        self._closed = True
        self._wakeup.set()
        if self._worker_task is not None:
            try:
                await self._worker_task
            except asyncio.CancelledError:
                pass
            self._worker_task = None
        for item in self._pending:
            if not item.future.done():
                item.future.set_exception(ConnectionError("server shutting down"))
        self._pending = []
