"""The asyncio RkNN server: admission, batching, generation swap.

:class:`RknnServer` turns any facade database -- disk, sharded,
compact, oracle attached or not -- into a network service.  One
asyncio event loop owns every connection; queries are admitted into a
:class:`~repro.serve.batcher.MicroBatcher` and executed as engine
batches on a worker thread, so the loop never blocks on query work.

**Generation swap (disk / sharded backends).**  Mutations (``insert``
/ ``delete`` requests) and query batches are arbitrated by a
writer-preferring :class:`GenerationGate`: a batch runs under a *read
lease* pinning the database's update generation for its whole
execution, while a mutation waits for in-flight batches to drain,
applies under an exclusive lease, and bumps the generation.  Batches
admitted after the mutation run against the new generation.  No
response ever mixes generations, and every response carries the
generation it was computed at, so a client can replay the mutation
log and verify any answer against a direct facade call.

**Delta-overlay appends (compact backend).**  A database exposing a
snapshot ``stamp`` (``(base_generation, delta_epoch)``; see
:mod:`repro.compact.overlay`) flips the serve tier into append mode:
``insert`` / ``delete`` requests skip the gate entirely -- the write
is an append to the overlay log, readers keep the immutable state
they pinned, and the single-thread executor (which already serializes
batches and mutations) is the only ordering mechanism.  Writes never
drain reads; the gate's exclusive lease survives solely for the
``compact`` op (folding the log into a fresh base) and for
subscription registration, and every gate drain is counted in
``/metrics`` so the no-drain-on-append property is observable.  Every
response carries the stamp it was computed at, replay-verifiable
against a from-scratch rebuild of that snapshot.

**Backpressure.**  The admission queue is bounded; beyond capacity the
server immediately answers ``overloaded`` instead of queueing without
bound (shed requests are counted and surfaced through ``/metrics``).

**Standing queries.**  A ``subscribe`` request registers a
:class:`~repro.streams.monitor.RnnMonitor` over the live database;
every later mutation refreshes each subscribed monitor and pushes the
resulting :class:`~repro.streams.monitor.MembershipEvent` diffs to the
subscriber as ``membership`` event lines.

``/metrics`` and ``/healthz`` answer both as protocol ops and as plain
HTTP ``GET`` on the same port.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.engine.planner import backend_of
from repro.engine.spec import QuerySpec
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.serve import protocol
from repro.serve.batcher import MicroBatcher, QueueFull
from repro.streams.monitor import RnnMonitor

#: The serving tier's logger (``repro serve --log-level`` wires the
#: stdlib root handler; libraries embedding the server attach their own).
logger = logging.getLogger("repro.serve")

#: Default coalescing window: 2 ms keeps tail latency low while giving
#: concurrent arrivals time to share a batch.
DEFAULT_WINDOW = 0.002

#: Default maximum batch size handed to the engine in one execution.
DEFAULT_MAX_BATCH = 32

#: Default admission bound before requests are shed as ``overloaded``.
DEFAULT_MAX_QUEUE = 1024

#: Outbound bytes a subscriber may leave unread before it is evicted.
MAX_SUBSCRIBER_BACKLOG = 1 << 20

#: Unread response bytes before a connection stops being read from
#: (TCP backpressure on clients that pipeline without ever reading).
MAX_RESPONSE_BACKLOG = 1 << 20


class GenerationGate:
    """Writer-preferring read/write arbitration for generation safety.

    Query batches hold *read* leases (many at once is safe -- they only
    read); a mutation takes the *write* lease, which waits for every
    in-flight batch to drain and blocks new batches from starting
    first.  Writer preference keeps the mutation from starving behind
    a saturated query stream.
    """

    def __init__(self):
        self._cond = asyncio.Condition()
        self._readers = 0
        self._writers_waiting = 0
        self._writing = False
        #: Exclusive leases granted so far -- i.e. how many times the
        #: gate drained readers.  Appends on a delta-overlay backend
        #: never touch the gate, so this stays at the compaction count
        #: there (surfaced through ``/metrics`` as ``drains``).
        self.drains = 0

    @contextlib.asynccontextmanager
    async def read_lease(self):
        """Hold a shared lease: the generation cannot change inside."""
        async with self._cond:
            while self._writing or self._writers_waiting:
                await self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            async with self._cond:
                self._readers -= 1
                self._cond.notify_all()

    @contextlib.asynccontextmanager
    async def write_lease(self):
        """Hold the exclusive lease: every batch has drained inside."""
        async with self._cond:
            self._writers_waiting += 1
            try:
                while self._writing or self._readers:
                    await self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writing = True
            self.drains += 1
        try:
            yield
        finally:
            async with self._cond:
                self._writing = False
                self._cond.notify_all()


class _Subscription:
    """One connection's standing-query monitor."""

    def __init__(self, monitor: RnnMonitor, writer: asyncio.StreamWriter):
        self.monitor = monitor
        self.writer = writer


class ConnectionServer:
    """Lifecycle and connection plumbing shared by every serve front.

    Owns the listener, the shutdown handshake, and the JSON-lines /
    HTTP connection loops -- everything that does not depend on *how*
    a request is executed.  Subclasses plug in the execution policy
    through five hooks: :meth:`_admit_query` (a query's pending
    outcome), :meth:`_mutate` / :meth:`_compact` / :meth:`_subscribe`
    (the non-query ops), and :meth:`metrics` / :meth:`_health`
    (introspection).  :class:`RknnServer` executes in-process;
    :class:`~repro.serve.fleet.FleetServer` routes to worker
    processes.
    """

    def __init__(self):
        self._subscriptions: dict[asyncio.StreamWriter, _Subscription] = {}
        self._server: asyncio.AbstractServer | None = None
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        # request_stop() may land on another thread before start() has
        # created the loop and event: the flag records the request and
        # start() honors it immediately (the pre-start race guard)
        self._stop_pending = False
        self._stop_mutex = threading.Lock()
        self.address: tuple[str, int] | None = None
        self.errors = 0

    # -- lifecycle ----------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind and start accepting connections (port 0 = ephemeral)."""
        with self._stop_mutex:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            if self._stop_pending:
                # a stop requested before the loop existed wins
                # immediately: serve_until_stopped() returns at once
                self._stop.set()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        sock = self._server.sockets[0]
        self.address = sock.getsockname()[:2]

    async def serve_until_stopped(self) -> None:
        """Block until :meth:`request_stop` (or :meth:`stop`) is called."""
        assert self._stop is not None, "start() before serve_until_stopped()"
        await self._stop.wait()
        await self.stop()

    async def run(self, host: str = "127.0.0.1", port: int = 0,
                  ready=None) -> None:
        """Start, signal readiness, and serve until stopped.

        ``ready`` is an optional callable invoked with the bound
        ``(host, port)`` once the server is accepting connections --
        a ``threading.Event.set`` wrapper, a ready-file writer, or a
        print.
        """
        await self.start(host, port)
        if ready is not None:
            ready(self.address)
        await self.serve_until_stopped()

    def request_stop(self) -> None:
        """Thread-safe shutdown signal (usable from any thread).

        Safe to call at any point in the lifecycle: a request landing
        before :meth:`start` has created the event loop is remembered
        and honored the moment the server starts, instead of being
        silently dropped.
        """
        with self._stop_mutex:
            self._stop_pending = True
            loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    async def stop(self) -> None:
        """Close the listener; subclasses release their execution state."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- execution hooks ----------------------------------------------------

    def _admit_query(self, payload: dict):
        """Admit one ``query`` request; return its pending outcome.

        The return value is a future resolving to a response body (or
        a ``(result, generation[, stamp])`` tuple), or a ready body
        dict.  May raise :class:`~repro.serve.batcher.QueueFull` to
        shed the request.
        """
        raise NotImplementedError

    async def _mutate(self, op: str, payload: dict) -> dict:
        """Apply one ``insert`` / ``delete``; return the response body."""
        raise NotImplementedError

    async def _compact(self) -> dict:
        """Fold the delta log; return the response body."""
        raise NotImplementedError

    async def _subscribe(self, payload: dict,
                         writer: asyncio.StreamWriter) -> dict:
        """Register a standing query; return the response body."""
        raise NotImplementedError

    def metrics(self) -> dict:
        """Counters for the ``/metrics`` endpoint (loop-thread only)."""
        raise NotImplementedError

    def metrics_text(self) -> str:
        """Prometheus text exposition of the same counters (served at
        ``GET /metrics?format=prometheus``)."""
        raise NotImplementedError

    def _health(self) -> dict:
        """Body of the ``/healthz`` endpoint."""
        raise NotImplementedError

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            first = await reader.readline()
            if not first:
                return
            if first.split(b" ", 1)[0] in (b"GET", b"HEAD"):
                await self._handle_http(first, reader, writer)
                return
            await self._handle_protocol(first, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError, ValueError):
            # ValueError: a request line overran the StreamReader limit;
            # the line framing is lost, so drop the connection cleanly
            pass
        finally:
            self._subscriptions.pop(writer, None)
            # no wait_closed(): the handler may itself be cancelled at
            # loop shutdown, and awaiting here would log that cancellation
            writer.close()

    async def _handle_protocol(self, first: bytes,
                               reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter) -> None:
        """The JSON-lines loop: pipelined requests, ordered responses.

        Every request is admitted *at read time* -- queries go straight
        into the batcher (so a connection that pipelines N queries
        coalesces them into shared batches), introspection answers
        synchronously, and mutations/subscriptions *barrier the read
        loop*: no later line on the connection is read until they
        complete, so a pipelined query after an insert always observes
        the bumped generation (per-connection read-your-writes).  A
        per-connection drain preserves response order.
        """
        responses: asyncio.Queue = asyncio.Queue()
        drain = asyncio.get_running_loop().create_task(
            self._drain_responses(responses, writer)
        )
        try:
            line = first
            while line:
                stripped = line.strip()
                if stripped:
                    item = self._admit(stripped, writer)
                    await responses.put(item)
                    pending = item[1]
                    if isinstance(pending, asyncio.Task):
                        # the mutation barrier; also bounds this
                        # connection to one task in flight (its failure
                        # reaches the client through the drain)
                        with contextlib.suppress(Exception):
                            await pending
                if (writer.transport.get_write_buffer_size()
                        > MAX_RESPONSE_BACKLOG):
                    # the client is not reading its responses: stop
                    # reading its requests until the backlog drains, so
                    # server memory stays bounded (TCP pushes back)
                    await writer.drain()
                line = await reader.readline()
        finally:
            await responses.put(None)
            with contextlib.suppress(Exception):
                await drain

    def _admit(self, line: bytes, writer: asyncio.StreamWriter):
        """Admit one request line; return ``(request id, pending)``.

        ``pending`` is a ready response body (admission errors, shed
        requests, introspection), a batcher future resolving to
        ``(result, generation)`` (queries -- the fast path: no
        per-request task), or a task computing the body (mutations and
        subscriptions -- the read loop awaits these before admitting
        anything later on the connection).
        """
        try:
            payload = protocol.decode(line)
        except ReproError as exc:
            self.errors += 1
            return None, protocol.error_payload(str(exc))
        request_id = payload.get("id")
        op = payload.get("op", "query")
        if op == "query":
            try:
                return request_id, self._admit_query(payload)
            except QueueFull as exc:
                logger.warning("shed query (queue depth %d)", exc.depth)
                return request_id, protocol.overloaded_payload(exc.depth)
            except ReproError as exc:
                self.errors += 1
                return request_id, protocol.error_payload(str(exc))
            except (KeyError, TypeError, ValueError) as exc:
                self.errors += 1
                return request_id, protocol.error_payload(
                    f"bad request: {exc!r}"
                )
        if op == "metrics":
            return request_id, {"status": "ok", **self.metrics()}
        if op == "healthz":
            return request_id, self._health()
        if op not in ("insert", "delete", "compact", "subscribe"):
            self.errors += 1
            return request_id, protocol.error_payload(
                f"unknown op {op!r}; choose one of {protocol.OPS}"
            )
        task = asyncio.get_running_loop().create_task(
            self._respond(payload, writer)
        )
        return request_id, task

    async def _drain_responses(self, queue: asyncio.Queue,
                               writer: asyncio.StreamWriter) -> None:
        while True:
            item = await queue.get()
            if item is None:
                return
            request_id, pending = item
            if isinstance(pending, dict):
                payload = pending
            else:
                try:
                    outcome = await pending
                    payload = (protocol.result_payload(*outcome)
                               if isinstance(outcome, tuple) else outcome)
                except Exception as exc:  # defensive: never kill the drain
                    payload = protocol.error_payload(str(exc))
                    self.errors += 1
            if payload is None:
                continue
            if request_id is not None:
                payload["id"] = request_id
            writer.write(protocol.encode(payload))
            # flush once per quiet period, not per line -- unless the
            # transport buffer is backing up (client not reading)
            if (queue.empty() or writer.transport.get_write_buffer_size()
                    > MAX_RESPONSE_BACKLOG):
                with contextlib.suppress(ConnectionError):
                    await writer.drain()

    async def _respond(self, payload: dict,
                       writer: asyncio.StreamWriter) -> dict | None:
        """Compute the response body for one mutation or subscription."""
        try:
            op = payload["op"]
            if op in ("insert", "delete"):
                return await self._mutate(op, payload)
            if op == "compact":
                return await self._compact()
            return await self._subscribe(payload, writer)
        except ReproError as exc:
            self.errors += 1
            return protocol.error_payload(str(exc))
        except (KeyError, TypeError, ValueError) as exc:
            self.errors += 1
            return protocol.error_payload(f"bad request: {exc!r}")

    # -- HTTP (curl / probe surface) ----------------------------------------

    async def _handle_http(self, first: bytes, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            method, target, _ = first.decode("latin-1").split(" ", 2)
        except ValueError:
            method, target = "GET", "/"
        while True:  # drain the header block
            line = await reader.readline()
            if not line or line in (b"\r\n", b"\n"):
                break
        path, _, query_string = target.partition("?")
        content_type = "application/json"
        if path == "/metrics" and "format=prometheus" in query_string.split("&"):
            status = "200 OK"
            content_type = "text/plain; version=0.0.4"
            content = self.metrics_text().encode("utf-8")
        else:
            if path == "/metrics":
                status, body = "200 OK", self.metrics()
            elif path == "/healthz":
                status, body = "200 OK", self._health()
            else:
                status, body = ("404 Not Found",
                                {"error": f"unknown path {path}"})
            content = json.dumps(body, indent=2).encode("utf-8") + b"\n"
        writer.write(
            f"HTTP/1.1 {status}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(content)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1")
        )
        if method != "HEAD":  # HEAD answers carry headers only
            writer.write(content)
        with contextlib.suppress(ConnectionError):
            await writer.drain()


class RknnServer(ConnectionServer):
    """Asyncio serving tier over one facade database.

    Parameters
    ----------
    db:
        Any facade database (:class:`~repro.api.GraphDatabase`,
        :class:`~repro.shard.db.ShardedDatabase`,
        :class:`~repro.compact.db.CompactDatabase`, with or without an
        attached oracle).  The server takes ownership: all access must
        go through requests once serving starts.
    window / max_batch / max_queue:
        Micro-batching and admission parameters (see
        :class:`~repro.serve.batcher.MicroBatcher`).
    workers:
        Worker sessions per engine batch (``read_clone`` pool size the
        engine spreads each batch over).
    cache_entries:
        Result-cache capacity of the server's engine.
    slow_log:
        Optional :class:`~repro.obs.slowlog.SlowQueryLog` attached to
        the server's engine: every executed spec slower than the log's
        threshold is appended as one JSONL record.
    """

    def __init__(self, db, *, window: float = DEFAULT_WINDOW,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 max_queue: int = DEFAULT_MAX_QUEUE,
                 workers: int = 1, cache_entries: int = 4096,
                 slow_log=None):
        super().__init__()
        self.db = db
        self.engine = db.engine(cache_entries=cache_entries,
                                slow_log=slow_log)
        self.workers = workers
        self.batcher = MicroBatcher(
            self._run_batch, window=window,
            max_batch=max_batch, max_queue=max_queue,
        )
        self._gate = GenerationGate()
        # Delta-overlay backends expose a snapshot stamp: mutations
        # append instead of fencing, and responses carry the stamp.
        self._overlay = getattr(db, "stamp", None) is not None
        # one thread: batches and mutations never share the interpreter
        # state concurrently even if the gate were misused
        self._executor = ThreadPoolExecutor(max_workers=1)
        self.queries_served = 0
        self.mutations_applied = 0
        self.compactions = 0
        self.events_pushed = 0
        self.registry = self._build_registry()

    def _build_registry(self) -> MetricsRegistry:
        """Wire every observable number into one metrics registry.

        Pre-existing sources of truth (the plain server counters the
        tests and benchmarks read, the batcher's admission stats, the
        engine's cache stats, the database's tracker) join as
        callback-backed metrics, so nothing is double-booked; the
        latency histogram is the registry's only owned series.
        """
        registry = MetricsRegistry()
        registry.counter("queries_served", "Queries answered",
                         fn=lambda: self.queries_served)
        registry.counter("mutations_applied", "Point mutations applied",
                         fn=lambda: self.mutations_applied)
        registry.counter("compactions", "Delta-log folds",
                         fn=lambda: self.compactions)
        registry.counter("drains", "Generation-gate reader drains",
                         fn=lambda: self._gate.drains)
        registry.counter("errors", "Requests answered with an error",
                         fn=lambda: self.errors)
        registry.counter("events_pushed", "Membership events pushed",
                         fn=lambda: self.events_pushed)
        stats = self.batcher.stats
        registry.counter("admission_admitted", "Queries admitted",
                         fn=lambda: stats.admitted)
        registry.counter("admission_shed", "Queries shed as overloaded",
                         fn=lambda: stats.shed)
        registry.counter("admission_batches", "Coalesced batches executed",
                         fn=lambda: stats.batches)
        registry.counter("admission_coalesced", "Queries sharing a batch",
                         fn=lambda: stats.coalesced)
        cache = self.engine.cache_stats
        registry.counter("cache_hits", "Result-cache hits",
                         fn=lambda: cache.hits)
        registry.counter("cache_misses", "Result-cache misses",
                         fn=lambda: cache.misses)
        registry.counter("cache_evictions", "Result-cache evictions",
                         fn=lambda: cache.evictions)
        registry.counter("cache_invalidations", "Result-cache invalidations",
                         fn=lambda: cache.invalidations)
        tracker = self.db.tracker
        for counter in ("page_reads", "buffer_hits", "nodes_visited",
                        "edges_expanded", "oracle_prunes"):
            registry.counter(
                counter, f"CostTracker {counter.replace('_', ' ')}",
                fn=(lambda name: lambda: getattr(tracker, name))(counter),
            )
        registry.gauge("queue_depth", "Admission queue depth",
                       fn=lambda: self.batcher.depth)
        registry.gauge("generation", "Database update generation",
                       fn=lambda: self.db.generation)
        registry.gauge("subscriptions", "Registered standing queries",
                       fn=lambda: len(self._subscriptions))
        if self._overlay:
            registry.gauge("base_generation", "Overlay base generation",
                           fn=lambda: self.db.stamp[0])
            registry.gauge("delta_epoch", "Overlay delta epoch",
                           fn=lambda: self.db.stamp[1])
        self.latency = registry.histogram(
            "batch_seconds", "Engine batch execution latency (seconds)"
        )
        return registry

    # -- lifecycle ----------------------------------------------------------

    async def stop(self) -> None:
        """Close the listener, fail waiting requests, release the pool."""
        await super().stop()
        await self.batcher.close()
        self._executor.shutdown(wait=True)

    # -- admission (the base class's query hook) ----------------------------

    def _admit_query(self, payload: dict):
        """Admit a query straight into the micro-batcher (fast path).

        A ``trace``-flagged (or ``EXPLAIN``) request bypasses the
        batcher and runs as its own dedicated engine batch instead, so
        its span tree covers exactly that request -- the diagnostics
        path, deliberately unbatched.
        """
        spec, trace, explain = protocol.request_query(payload)
        if trace:
            return asyncio.get_running_loop().create_task(
                self._run_traced(spec, explain)
            )
        return self.batcher.admit(spec)

    async def _run_traced(self, spec: QuerySpec, explain: bool) -> dict:
        """Execute one spec as a dedicated traced batch; build its body.

        Mirrors :meth:`_run_batch`'s snapshot discipline (overlay
        backends capture the stamp on the executor thread; others hold
        a read lease) and attaches the span tree -- plus, for
        ``EXPLAIN``, the compiled plan -- to the response.
        """
        from repro.qlang.api import build_plan

        loop = asyncio.get_running_loop()
        tracer = Tracer()
        if self._overlay:
            def execute():
                generation = self.db.generation
                stamp = self.db.stamp
                outcome = self.engine.run_batch(
                    [spec], workers=self.workers, tracer=tracer
                )
                return outcome, generation, stamp

            outcome, generation, stamp = await loop.run_in_executor(
                self._executor, execute
            )
        else:
            stamp = None
            async with self._gate.read_lease():
                generation = self.db.generation
                outcome = await loop.run_in_executor(
                    self._executor,
                    lambda: self.engine.run_batch(
                        [spec], workers=self.workers, tracer=tracer
                    ),
                )
        self.queries_served += 1
        self.latency.observe(outcome.elapsed_seconds)
        body = protocol.result_payload(outcome.results[0], generation, stamp)
        body["trace"] = tracer.to_payload()
        if explain:
            body["explain"] = True
            body["plan"] = build_plan(self.engine, spec)
        return body

    # -- batch execution (the batcher's runner) -----------------------------

    async def _run_batch(self, specs: list[QuerySpec]):
        """Execute one coalesced batch; stamp every result's snapshot.

        Disk/sharded backends run under a generation read lease (the
        gate keeps a mutation from landing mid-batch).  Delta-overlay
        backends need no lease: the executor task captures the stamp
        *on the executor thread*, immediately before the engine runs,
        so the stamp and the answers come from the same serialized
        interval -- appends land as whole executor tasks and can never
        interleave with a running batch.
        """
        loop = asyncio.get_running_loop()
        if self._overlay:
            def execute():
                generation = self.db.generation
                stamp = self.db.stamp
                outcome = self.engine.run_batch(specs, workers=self.workers)
                return outcome, generation, stamp

            outcome, generation, stamp = await loop.run_in_executor(
                self._executor, execute
            )
            self.queries_served += len(specs)
            self.latency.observe(outcome.elapsed_seconds)
            return [(result, generation, stamp) for result in outcome.results]
        async with self._gate.read_lease():
            generation = self.db.generation
            outcome = await loop.run_in_executor(
                self._executor,
                lambda: self.engine.run_batch(specs, workers=self.workers),
            )
        self.queries_served += len(specs)
        self.latency.observe(outcome.elapsed_seconds)
        return [(result, generation) for result in outcome.results]

    # -- mutations and the generation swap ----------------------------------

    async def _mutate(self, op: str, payload: dict) -> dict:
        """Apply one mutation; push events.

        Overlay backends **append**: no fence, no exclusive lease --
        the write and the subscription refreshes run as one task on
        the single-thread executor, serialized against batches but
        never draining them, and the response carries the post-append
        stamp.  Other backends keep the generation swap: fence, drain,
        apply, bump.
        """
        pid = int(payload["pid"])
        if op == "insert":
            location = payload["location"]
            if isinstance(location, list):
                location = tuple(location)
            apply = lambda: self.db.insert_point(pid, location)  # noqa: E731
        else:
            apply = lambda: self.db.delete_point(pid)  # noqa: E731
        loop = asyncio.get_running_loop()
        if self._overlay:
            def apply_and_refresh():
                outcome = apply()
                generation = self.db.generation
                stamp = self.db.stamp
                refreshed = [
                    (sub, sub.monitor.refresh())
                    for sub in list(self._subscriptions.values())
                ]
                return outcome, generation, stamp, refreshed

            outcome, generation, stamp, refreshed = await loop.run_in_executor(
                self._executor, apply_and_refresh
            )
        else:
            stamp = None
            # queries admitted before this mutation must run first (at
            # the old generation); the write lease then drains the
            # running batch
            await self.batcher.fence()
            async with self._gate.write_lease():
                # every in-flight batch has drained; batches admitted
                # behind us will observe the bumped generation
                outcome = await loop.run_in_executor(self._executor, apply)
                generation = self.db.generation
                refreshed = []
                for sub in list(self._subscriptions.values()):
                    events = await loop.run_in_executor(
                        self._executor, sub.monitor.refresh
                    )
                    refreshed.append((sub, events))
        self.mutations_applied += 1
        for sub, events in refreshed:
            for event in events:
                sub.writer.write(protocol.encode(
                    protocol.membership_payload(event, generation)
                ))
                self.events_pushed += 1
            # a subscriber that stops reading must not grow the server's
            # memory without bound: evict it once its socket buffer
            # backs up past the limit (its connection handler cleans up)
            if (events and sub.writer.transport.get_write_buffer_size()
                    > MAX_SUBSCRIBER_BACKLOG):
                self._subscriptions.pop(sub.writer, None)
                sub.writer.close()
        body = {
            "status": "ok",
            "op": op,
            "generation": generation,
            "updated_lists": outcome.affected_nodes,
            "io": outcome.io,
        }
        if stamp is not None:
            body["base_generation"], body["delta_epoch"] = stamp
        return body

    async def _compact(self) -> dict:
        """Fold the overlay log into a fresh base: the one drain point.

        Admitted queries run first (fence), in-flight batches drain
        (exclusive lease), then the fold runs on the executor and the
        base generation bumps.  Pinned client state is unaffected --
        compaction changes no answers -- but batches admitted behind
        the compaction observe the fresh base stamp.
        """
        if not self._overlay or not hasattr(self.db, "compact"):
            raise ReproError(
                "compact requires a delta-overlay database "
                "(the compact backend)"
            )
        loop = asyncio.get_running_loop()
        await self.batcher.fence()
        async with self._gate.write_lease():
            outcome = await loop.run_in_executor(self._executor, self.db.compact)
            generation = self.db.generation
            stamp = self.db.stamp
        self.compactions += 1
        logger.info(
            "compacted %d folded operations; new stamp (%d, %d)",
            outcome.affected_nodes, stamp[0], stamp[1],
        )
        return {
            "status": "ok",
            "op": "compact",
            "folded": outcome.affected_nodes,
            "generation": generation,
            "base_generation": stamp[0],
            "delta_epoch": stamp[1],
            "io": outcome.io,
        }

    async def _subscribe(self, payload: dict,
                         writer: asyncio.StreamWriter) -> dict:
        queries = {int(qid): int(node)
                   for qid, node in dict(payload["queries"]).items()}
        k = int(payload.get("k", 1))
        loop = asyncio.get_running_loop()
        async with self._gate.write_lease():
            # monitor registration may materialize K-NN lists: exclusive
            monitor = await loop.run_in_executor(
                self._executor, lambda: RnnMonitor(self.db, queries, k=k)
            )
            generation = self.db.generation
        self._subscriptions[writer] = _Subscription(monitor, writer)
        return {
            "status": "ok",
            "subscribed": sorted(queries),
            "k": k,
            "generation": generation,
            "results": {str(qid): monitor.result(qid) for qid in queries},
        }

    # -- introspection ------------------------------------------------------

    def metrics(self) -> dict:
        """Counters for the ``/metrics`` endpoint (loop-thread only)."""
        tracker = self.db.tracker
        cache = self.engine.cache_stats
        body = {
            "backend": backend_of(self.db),
            "generation": self.db.generation,
            "queue_depth": self.batcher.depth,
            "queries_served": self.queries_served,
            "mutations_applied": self.mutations_applied,
            "compactions": self.compactions,
            "drains": self._gate.drains,
            "errors": self.errors,
            "events_pushed": self.events_pushed,
            "subscriptions": len(self._subscriptions),
            "admission": self.batcher.stats.snapshot(),
            "cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "invalidations": cache.invalidations,
            },
            "counters": {
                "page_reads": tracker.page_reads,
                "buffer_hits": tracker.buffer_hits,
                "nodes_visited": tracker.nodes_visited,
                "edges_expanded": tracker.edges_expanded,
                "oracle_prunes": tracker.oracle_prunes,
            },
            "latency": self.latency.to_dict(),
        }
        if self._overlay:
            stamp = self.db.stamp
            body["base_generation"], body["delta_epoch"] = stamp
        return body

    def metrics_text(self) -> str:
        """Prometheus text exposition of the registry (loop-thread only)."""
        return self.registry.render_prometheus()

    def _health(self) -> dict:
        body = {
            "status": "ok",
            "generation": self.db.generation,
            "backend": backend_of(self.db),
        }
        if self._overlay:
            body["base_generation"], body["delta_epoch"] = self.db.stamp
        return body


class ServerHandle:
    """A running server on a background thread (tests, benchmarks).

    Exposes the bound :attr:`host` / :attr:`port` and stops the server
    when the context exits.
    """

    def __init__(self, server: RknnServer, thread: threading.Thread):
        self.server = server
        self._thread = thread

    @property
    def host(self) -> str:
        """Bound interface of the running server."""
        return self.server.address[0]

    @property
    def port(self) -> int:
        """Bound (possibly ephemeral) port of the running server."""
        return self.server.address[1]

    def stop(self) -> None:
        """Signal shutdown and join the serving thread."""
        self.server.request_stop()
        self._thread.join(timeout=10)


@contextlib.contextmanager
def serve_in_thread(db, *, host: str = "127.0.0.1", port: int = 0,
                    **kwargs):
    """Run an :class:`RknnServer` on a daemon thread; yield its handle.

    The canonical embedding for tests, benchmarks and examples::

        with serve_in_thread(db, max_batch=16) as handle:
            client = ServeClient(handle.host, handle.port)
            ...
    """
    server = RknnServer(db, **kwargs)
    ready = threading.Event()

    def _run() -> None:
        asyncio.run(server.run(host, port, ready=lambda _address: ready.set()))

    thread = threading.Thread(target=_run, daemon=True, name="repro-serve")
    thread.start()
    if not ready.wait(timeout=10):
        raise RuntimeError("server failed to start within 10 s")
    handle = ServerHandle(server, thread)
    try:
        yield handle
    finally:
        handle.stop()
