"""RNN retrieval through network Voronoi cells.

The Euclidean literature the paper surveys (Section 2.1, refs [13],
[17]) exploits Voronoi structure: the RNNs of ``q`` are found among
the Voronoi neighbors of ``q`` in the diagram of ``P + {q}``.  The
same property holds in networks:

**Lemma.**  Let ``p`` be a data point with no other point strictly
closer to it than the query (``p in RNN(q)`` under the paper's tie
rule).  Then on any shortest ``p -> q`` path, every node is
thick-owned by ``p`` or by ``q`` in the NVD of ``P + {q}``.

*Proof sketch.*  If some generator ``g`` were strictly closer than
``q`` to a path node ``n``, then ``d(p, g) <= d(p, n) + d(n, g) <
d(p, n) + d(n, q) = d(p, q)``, contradicting ``p in RNN(q)``.  Hence
``min(d(n, p), d(n, q))`` equals the node's minimum distance, and
whichever of the two attains it thick-owns ``n``.  Since ``d(n, p)``
rises and ``d(n, q)`` falls along the path, the two thick cells share
a node or an edge -- i.e. ``p`` is a (thick) Voronoi neighbor of
``q``.  ∎

The algorithm is therefore: build the diagram with the query injected
as a temporary generator, collect the generators bordering the query's
cell, and verify each candidate with the paper's own verification
query.  One full network sweep makes it strictly more expensive than
``eager`` on every workload -- which is exactly the paper's argument
for expansion-based processing; the ablation benchmark quantifies it.
"""

from __future__ import annotations

import math
from typing import AbstractSet

from repro.core.network import NetworkView
from repro.core.nn import verify
from repro.errors import QueryError
from repro.voronoi.nvd import NetworkVoronoi

_EMPTY: frozenset[int] = frozenset()

#: Temporary generator id for the injected query (never a valid point id).
QUERY_GID = -1


def voronoi_rnn(
    view: NetworkView,
    query_node: int,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[int]:
    """Single (k=1) monochromatic RNN via Voronoi-neighbor candidates.

    Returns the same result set as ``eager_rknn(view, query_node, 1)``;
    the Voronoi route exists as a materialization-style comparator, not
    as a recommended method.  Higher ``k`` would require an order-k
    diagram and is intentionally unsupported.
    """
    if not view.restricted:
        raise QueryError("voronoi_rnn requires a restricted network")
    if view.num_points == 0 or all(pid in exclude for pid in view.point_ids()):
        return []
    nvd = NetworkVoronoi.build(
        view,
        extra_seeds={query_node: (QUERY_GID, 0.0)},
        exclude=frozenset(exclude),
    )
    candidates = nvd.neighbors_of_cell(view, QUERY_GID)
    result = []
    for pid in sorted(candidates):
        if verify(view, pid, 1, {query_node}, math.inf, exclude):
            result.append(pid)
    return result
