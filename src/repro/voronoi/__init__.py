"""Network Voronoi diagrams (paper Section 2.2, ref. [8]).

Kolahdouzan & Shahabi answer spatial-network kNN queries with
*network Voronoi cells*: each data point (generator) owns the nodes
closer to it than to any other generator.  The paper cites this as the
main materialization-based alternative to its expansion algorithms, so
this package provides the comparator:

* :class:`~repro.voronoi.nvd.NetworkVoronoi` -- the diagram itself,
  built by one multi-source expansion (same cost as one ``all-NN(1)``
  pass of the paper's Section 4.1);
* :func:`~repro.voronoi.rnn.voronoi_rnn` -- single RNN retrieval via
  the Voronoi-neighbor property (candidates are the generators whose
  cells border the query's cell), verified with the paper's own
  verification query.
"""

from repro.voronoi.nvd import NetworkVoronoi
from repro.voronoi.rnn import voronoi_rnn

__all__ = ["NetworkVoronoi", "voronoi_rnn"]
