"""Construction and inspection of network Voronoi diagrams.

A *network Voronoi diagram* (NVD) over generators ``p_1 .. p_m``
(data points on nodes) assigns every graph node ``n`` to the
generator(s) minimizing ``d(n, p_i)``.  Construction is a single
multi-source Dijkstra expansion seeded with all generators at distance
0 -- the exact machinery of the paper's ``all-NN`` algorithm with
``K = 1`` (Section 4.1, Fig. 8), so the NVD costs one network sweep.

**Tie handling.**  On graphs with integer weights (the DBLP degrees-of
separation metric) boundary nodes are frequently equidistant from two
or more generators.  The diagram therefore records *thick* ownership:
every generator whose distance equals the node's minimum (within the
floating-point guard band of :mod:`repro.core.numeric`) owns the node.
Thick cells overlap on boundaries; the *primary* owner (first settler,
deterministic) still yields a proper partition for cell-size reports.
Thick ownership is what makes the Voronoi-neighbor RNN property of
:mod:`repro.voronoi.rnn` hold under the paper's tie rule (ties favor
the query); see that module for the proof sketch.

Tie wavefronts are propagated: a generator's expansion continues
through nodes it co-owns, which is sound because thick cells are
connected along shortest paths (if ``p`` thick-owns ``n``, it
thick-owns every node on any shortest ``p -> n`` path -- a closer
generator at an intermediate node would be closer at ``n`` too).
"""

from __future__ import annotations

import heapq

from repro.core.network import NetworkView
from repro.core.numeric import EPS
from repro.errors import QueryError


class NetworkVoronoi:
    """Order-1 network Voronoi diagram with thick (tie-aware) ownership."""

    def __init__(
        self,
        distance: dict[int, float],
        owners: dict[int, tuple[int, ...]],
        generators: tuple[int, ...],
    ):
        self._distance = distance
        self._owners = owners
        self.generators = generators

    @classmethod
    def build(
        cls,
        view: NetworkView,
        extra_seeds: dict[int, tuple[int, float]] | None = None,
        exclude: frozenset[int] | set[int] = frozenset(),
    ) -> "NetworkVoronoi":
        """Build the diagram for the view's (restricted) point set.

        ``extra_seeds`` maps ``node -> (generator_id, start_distance)``
        and lets callers inject a query as a temporary generator (the
        NVD-of-``P + {q}`` construction used by RNN retrieval); the
        injected id must not collide with a point id.  ``exclude``
        hides data points (the paper's new-arrival workloads).
        """
        if not view.restricted:
            raise QueryError("network Voronoi diagrams require restricted networks")
        seeds: list[tuple[float, int, int]] = []  # (distance, gid, node)
        generators: list[int] = []
        for pid in sorted(view.point_ids()):
            if pid in exclude:
                continue
            generators.append(pid)
            seeds.append((0.0, pid, view.node_of(pid)))
        if extra_seeds:
            for node, (gid, start) in extra_seeds.items():
                if gid in generators:
                    raise QueryError(f"extra seed id {gid} collides with a point id")
                generators.append(gid)
                seeds.append((start, gid, node))
        if not generators:
            raise QueryError("cannot build a Voronoi diagram without generators")

        heap = list(seeds)
        heapq.heapify(heap)
        distance: dict[int, float] = {}
        owners: dict[int, list[int]] = {}
        while heap:
            dist, gid, node = heapq.heappop(heap)
            view.tracker.heap_pops += 1
            settled = distance.get(node)
            if settled is None:
                distance[node] = dist
                owners[node] = [gid]
                view.tracker.nodes_visited += 1
            elif dist <= settled + EPS * max(abs(dist), 1.0):
                if gid in owners[node]:
                    continue
                owners[node].append(gid)  # tie co-owner; propagate its front
            else:
                continue
            for nbr, weight in view.neighbors(node):
                ndist = dist + weight
                nsettled = distance.get(nbr)
                if nsettled is None or ndist <= nsettled + EPS * max(abs(ndist), 1.0):
                    heapq.heappush(heap, (ndist, gid, nbr))
                    view.tracker.heap_pushes += 1
        frozen = {node: tuple(gids) for node, gids in owners.items()}
        return cls(distance, frozen, tuple(generators))

    # -- lookups -------------------------------------------------------------

    def cell_of(self, node: int) -> int:
        """The primary (first-settling) owner of ``node``."""
        return self.owners_of(node)[0]

    def owners_of(self, node: int) -> tuple[int, ...]:
        """Every generator within a tie of the node's minimum distance."""
        try:
            return self._owners[node]
        except KeyError:
            raise QueryError(
                f"node {node} is unreachable from every generator"
            ) from None

    def distance_of(self, node: int) -> float:
        """Distance from ``node`` to its nearest generator."""
        try:
            return self._distance[node]
        except KeyError:
            raise QueryError(
                f"node {node} is unreachable from every generator"
            ) from None

    def covers(self, node: int) -> bool:
        """Whether ``node`` is reachable from any generator."""
        return node in self._distance

    def cell_nodes(self, generator: int, thick: bool = False) -> list[int]:
        """Nodes owned by ``generator``; primary ownership by default."""
        if thick:
            return sorted(
                node for node, gids in self._owners.items() if generator in gids
            )
        return sorted(
            node for node, gids in self._owners.items() if gids[0] == generator
        )

    def cell_sizes(self) -> dict[int, int]:
        """Primary-owner cell sizes (a proper partition of covered nodes)."""
        sizes = {gid: 0 for gid in self.generators}
        for gids in self._owners.values():
            sizes[gids[0]] += 1
        return sizes

    # -- adjacency -------------------------------------------------------------

    def neighbors_of_cell(self, view: NetworkView, generator: int) -> set[int]:
        """Generators whose thick cell touches ``generator``'s thick cell.

        Two cells touch when they co-own a node or when a graph edge
        joins nodes they respectively own.  Scans the adjacency lists of
        the cell's nodes (charged reads, like any query-time traversal).
        """
        result: set[int] = set()
        for node in self.cell_nodes(generator, thick=True):
            result.update(self._owners[node])
            for nbr, _ in view.neighbors(node):
                owners = self._owners.get(nbr)
                if owners is not None:
                    result.update(owners)
        result.discard(generator)
        return result

    def adjacency(self, view: NetworkView) -> dict[int, set[int]]:
        """The full cell-adjacency graph (generator -> neighbor set)."""
        adjacency: dict[int, set[int]] = {gid: set() for gid in self.generators}
        for node, gids in self._owners.items():
            local = set(gids)
            for nbr, _ in view.neighbors(node):
                owners = self._owners.get(nbr)
                if owners is not None:
                    local.update(owners)
            for gid in gids:
                adjacency[gid].update(local - {gid})
        return adjacency
