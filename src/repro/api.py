"""Public facade: :class:`GraphDatabase`.

A :class:`GraphDatabase` owns the full storage stack of the paper's
architecture -- disk-paged adjacency lists, the (optional) edge-point
file, the shared LRU buffer, optional materialized K-NN lists -- and
exposes the query algorithms behind a small, cost-accounted API::

    from repro import GraphDatabase, NodePointSet

    db = GraphDatabase.from_edges(edges, points=NodePointSet({0: 5, 1: 9}))
    result = db.rknn(query=7, k=2, method="eager")
    print(result.points, result.io, result.cpu_seconds)

Every query method returns a result object carrying the exact counter
diff for that call, which is what the benchmark harness aggregates into
the paper's tables and figures.
"""

from __future__ import annotations

import copy
import math
from typing import AbstractSet, Iterable, Sequence

from repro.core import baseline, unrestricted
from repro.core.bichromatic import (
    bichromatic_eager,
    bichromatic_eager_m,
    bichromatic_lazy,
)
from repro.core.continuous import validate_route
from repro.core.eager import eager_rknn, eager_rknn_route
from repro.core.in_route import RouteStop, in_route_knn
from repro.core.eager_m import eager_m_rknn, eager_m_rknn_route
from repro.core.lazy import lazy_rknn, lazy_rknn_route
from repro.core.lazy_ep import lazy_ep_rknn, lazy_ep_rknn_route
from repro.core.materialize import MaterializedKNN, Seed
from repro.core.network import NetworkView
from repro.core.nn import knn as restricted_knn
from repro.core.nn import range_nn as restricted_range_nn
from repro.core.result import KnnResult, OracleResult, RnnResult, UpdateResult
from repro.errors import QueryError
from repro.graph.graph import Graph
from repro.graph.partition import bfs_order, hilbert_order
from repro.oracle import (
    DEFAULT_LANDMARKS,
    DistanceOracle,
    LandmarkStore,
    resolve_oracle_source,
    select_landmarks,
    store_landmark_distances,
)
from repro.points.points import EdgePointSet, NodePointSet, PointSet
from repro.storage.buffer import BufferManager
from repro.storage.disk import DiskGraph, EdgePointStore
from repro.storage.page import DEFAULT_PAGE_SIZE
from repro.storage.stats import CostTracker

_EMPTY: frozenset[int] = frozenset()

#: Query-processing methods implemented by the database.
METHODS = ("eager", "lazy", "eager-m", "lazy-ep")

#: Default LRU buffer of the paper's evaluation: 1 MB = 256 pages of 4 KB.
DEFAULT_BUFFER_PAGES = 256

Location = unrestricted.Location


class GraphDatabase:
    """Disk-based graph database answering (reverse) NN queries.

    Parameters
    ----------
    graph:
        The network.  It is paged out to the simulated disk at
        construction; queries only touch the disk representation.
    points:
        The data set P: a :class:`NodePointSet` (restricted network) or
        an :class:`EdgePointSet` (unrestricted network).  ``None``
        creates an empty restricted network.
    page_size / buffer_pages:
        Storage parameters; defaults match the paper (4 KB pages,
        256-page LRU buffer).
    node_order:
        Page-packing order.  ``"bfs"`` (default) packs topologically,
        ``"hilbert"`` packs spatially (requires coordinates).
    """

    #: Engine-visible backend tag (see :func:`repro.engine.planner.backend_of`).
    backend = "disk"

    def __init__(
        self,
        graph: Graph,
        points: PointSet | None = None,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        node_order: str = "bfs",
    ):
        if points is None:
            points = NodePointSet({})
        points.validate(graph)
        self.graph = graph
        self.points = points
        self.page_size = page_size
        self.tracker = CostTracker()
        self.buffer = BufferManager(buffer_pages, self.tracker)
        if node_order == "bfs":
            self._order = bfs_order(graph)
        elif node_order == "hilbert":
            self._order = hilbert_order(graph)
        else:
            raise QueryError(f"unknown node_order {node_order!r}")
        point_nodes = frozenset(
            node for _, node in points.items()
        ) if isinstance(points, NodePointSet) else frozenset()
        self.disk = DiskGraph(
            graph,
            self.buffer,
            page_size=page_size,
            order=self._order,
            point_nodes=point_nodes,
        )
        self._edge_store: EdgePointStore | None = None
        if isinstance(points, EdgePointSet):
            self._edge_store = EdgePointStore(
                graph, points, self.buffer, page_size=page_size, order=self._order
            )
        self.view = NetworkView(self.disk, points, self.tracker, self._edge_store)
        self.materialized: MaterializedKNN | None = None
        #: Landmark distance oracle (see :meth:`build_oracle`); ``None``
        #: until built or opened.  Attached to every view as its bound
        #: provider, so the expansion loops prune with it.
        self.oracle: DistanceOracle | None = None
        #: Persisted label file backing :attr:`oracle` (``None`` when the
        #: oracle was opened from an in-memory object).
        self.oracle_store: LandmarkStore | None = None
        self._ref_points: PointSet | None = None
        self._ref_view: NetworkView | None = None
        self._ref_edge_store: EdgePointStore | None = None
        self._ref_materialized: MaterializedKNN | None = None
        #: Update generation: bumped by every point insertion/deletion.
        #: The query engine keys its result cache on this counter, so a
        #: bump invalidates every previously cached answer.
        self.generation = 0

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int, float]],
        points: PointSet | None = None,
        **kwargs,
    ) -> "GraphDatabase":
        """Build a database straight from an edge list."""
        return cls(Graph.from_edges(edges), points, **kwargs)

    # -- properties ---------------------------------------------------------

    @property
    def restricted(self) -> bool:
        """True when data points live on nodes (restricted network)."""
        return self.points.restricted

    @property
    def reference_points(self) -> PointSet | None:
        """The attached bichromatic reference set Q (``None`` before
        :meth:`attach_reference`)."""
        return self._ref_points

    # -- materialization -----------------------------------------------------

    def materialize(self, capacity: int) -> None:
        """Precompute the K-NN lists of every node (paper Section 4.1).

        ``capacity`` is the paper's ``K``: the largest ``k`` any future
        query may use (queries drawing from the data set and excluding
        their own point effectively need ``K >= k + 1``).
        """
        self.materialized = MaterializedKNN.build(
            self.view,
            capacity,
            self._materialization_seeds(self.points),
            self.buffer,
            page_size=self.page_size,
            order=self._order,
        )

    def materialize_reference(self, capacity: int) -> None:
        """Materialize K-NN lists over the attached reference set Q."""
        if self._ref_view is None or self._ref_points is None:
            raise QueryError("attach_reference() before materialize_reference()")
        self._ref_materialized = MaterializedKNN.build(
            self._ref_view,
            capacity,
            self._materialization_seeds(self._ref_points),
            self.buffer,
            page_size=self.page_size,
            order=self._order,
        )

    def _materialization_seeds(self, points: PointSet) -> list[Seed]:
        seeds: list[Seed] = []
        if isinstance(points, NodePointSet):
            for pid, node in points.items():
                seeds.append((node, pid, 0.0))
        elif isinstance(points, EdgePointSet):
            for pid, (u, v, pos) in points.items():
                weight = self.graph.weight(u, v)
                seeds.append((u, pid, pos))
                seeds.append((v, pid, weight - pos))
        return seeds

    # -- bichromatic reference set ------------------------------------------

    def attach_reference(self, reference: PointSet) -> None:
        """Attach the reference set Q for bichromatic queries.

        The database's own points act as P (the potential results); the
        reference points compete with the query for their attention.
        """
        reference.validate(self.graph)
        if reference.restricted != self.restricted:
            raise QueryError("reference set must match the network's point mode")
        self._ref_points = reference
        self._ref_edge_store = None
        if isinstance(reference, EdgePointSet):
            self._ref_edge_store = EdgePointStore(
                self.graph,
                reference,
                self.buffer,
                page_size=self.page_size,
                order=self._order,
            )
        self._ref_view = NetworkView(
            self.disk, reference, self.tracker, self._ref_edge_store,
            bounds=self.oracle,
        )
        self._ref_materialized = None
        # swapping Q changes bichromatic answers: invalidate cached results
        self.generation += 1

    # -- landmark distance oracle -------------------------------------------

    def build_oracle(
        self,
        count: int = DEFAULT_LANDMARKS,
        *,
        seed: int = 0,
        strategy: str = "farthest",
    ) -> OracleResult:
        """Build and attach an ALT landmark distance oracle (charged).

        Selects ``count`` landmarks (farthest-point heuristic by
        default), runs one single-source Dijkstra per landmark over
        the paged adjacency file (every read charged through the
        buffer), persists the label table as a paged
        :class:`~repro.oracle.store.LandmarkStore`, and attaches the
        resulting :class:`~repro.oracle.oracle.DistanceOracle` to
        every view.  Subsequent queries return bitwise identical
        answers while expanding fewer edges (see
        :mod:`repro.oracle.prune`).

        Parameters
        ----------
        count:
            Number of landmarks ``L`` (label storage is ``L`` doubles
            per node).
        seed:
            Seeds the first landmark pick.
        strategy:
            ``"farthest"`` (default) or ``"random"``.

        Returns
        -------
        OracleResult
            The selected landmarks plus the exact preprocessing cost.
        """
        if not self.restricted:
            raise QueryError(
                "the distance oracle serves restricted networks "
                "(node-resident points)"
            )

        def run():
            landmarks, tables = select_landmarks(
                lambda source: store_landmark_distances(
                    self.disk, self.graph.num_nodes, source
                ),
                self.graph.num_nodes,
                count,
                seed=seed,
                strategy=strategy,
            )
            store = LandmarkStore(
                self.graph.num_nodes, landmarks, tables, self.buffer,
                page_size=self.page_size, order=self._order,
            )
            return store, DistanceOracle(landmarks, tables)

        (store, oracle), diff = self._measure(run)
        self.oracle_store = store
        self.oracle = oracle
        self._attach_bounds(oracle)
        return OracleResult(
            oracle.landmarks, oracle.storage_entries, store.num_pages,
            diff.io_operations, diff.cpu_seconds, diff,
        )

    def open_oracle(self, source) -> OracleResult:
        """Attach an oracle built elsewhere (store or oracle object).

        Parameters
        ----------
        source:
            A persisted :class:`~repro.oracle.store.LandmarkStore`
            (decoded uncharged, like the compact backend decodes
            adjacency pages) or a ready
            :class:`~repro.oracle.oracle.DistanceOracle` -- e.g. one
            built by another backend over the same graph.

        Returns
        -------
        OracleResult
            The attached landmarks (opening charges no I/O).
        """
        if not self.restricted:
            raise QueryError(
                "the distance oracle serves restricted networks "
                "(node-resident points)"
            )
        oracle, store, pages = resolve_oracle_source(
            source, self.graph.num_nodes
        )
        self.oracle_store = store
        self.oracle = oracle
        self._attach_bounds(oracle)
        return OracleResult(oracle.landmarks, oracle.storage_entries, pages, 0, 0.0)

    def _attach_bounds(self, bounds) -> None:
        self.view.bounds = bounds
        if self._ref_view is not None:
            self._ref_view.bounds = bounds

    # -- serving --------------------------------------------------------------

    def engine(self, **kwargs) -> "QueryEngine":
        """A batch :class:`~repro.engine.engine.QueryEngine` over this
        database.  Keyword arguments are forwarded to the engine
        constructor (``cache_entries``, ``calibrator``, ``plan``)."""
        from repro.engine.engine import QueryEngine

        return QueryEngine(self, **kwargs)

    def query(self, statement):
        """Answer a qlang statement (or spec) on this database.

        ``statement`` may be a qlang string (``"SELECT * FROM
        rknn(query=7, k=2)"``; ``;`` separates a script), a
        :class:`~repro.engine.spec.QuerySpec`, or a sequence of either.
        Answers run through a batch engine, so compiled plans share
        the planner, the result cache and (where the backend offers
        one) the vectorized batch kernel.  Singular queries return one
        result; scripts and sequences return a list.
        """
        from repro.qlang import execute

        return execute(self, statement)

    def read_clone(self) -> "GraphDatabase":
        """A read-only session sharing this database's disk images.

        The clone references the same serialized pages (and the same
        in-memory graph and point sets) but owns a private buffer and
        cost tracker, so concurrent read-only queries on different
        clones never race on LRU state or counters.  The clone starts
        cold; its tracker starts at zero.

        Clones are for *reading*: running updates through a clone is
        unsupported (the mutated pages would be shared with the parent
        while the point indexes diverged).
        """
        clone = copy.copy(self)
        clone.tracker = CostTracker()
        clone.buffer = BufferManager(self.buffer.capacity_pages, clone.tracker)
        clone.disk = copy.copy(self.disk)
        clone.disk.buffer = clone.buffer
        if self._edge_store is not None:
            clone._edge_store = copy.copy(self._edge_store)
            clone._edge_store.buffer = clone.buffer
        if self.materialized is not None:
            store = copy.copy(self.materialized.store)
            store.buffer = clone.buffer
            clone.materialized = MaterializedKNN(store)
        clone.view = NetworkView(
            clone.disk, clone.points, clone.tracker, clone._edge_store,
            bounds=self.oracle,
        )
        if self._ref_view is not None and self._ref_points is not None:
            if self._ref_edge_store is not None:
                clone._ref_edge_store = copy.copy(self._ref_edge_store)
                clone._ref_edge_store.buffer = clone.buffer
            clone._ref_view = NetworkView(
                clone.disk, self._ref_points, clone.tracker,
                clone._ref_edge_store, bounds=self.oracle,
            )
            if self._ref_materialized is not None:
                ref_store = copy.copy(self._ref_materialized.store)
                ref_store.buffer = clone.buffer
                clone._ref_materialized = MaterializedKNN(ref_store)
        return clone

    # -- cost measurement -----------------------------------------------------

    def reset_stats(self) -> None:
        """Zero the counters (the buffer's contents are kept warm)."""
        self.tracker.reset()

    def clear_buffer(self) -> None:
        """Drop every buffered page (cold-start the next query)."""
        self.buffer.clear()

    def _measure(self, func):
        before = self.tracker.snapshot()
        with self.tracker.time_block():
            outcome = func()
        diff = self.tracker.diff(before)
        return outcome, diff

    # -- monochromatic RkNN -----------------------------------------------------

    def rknn(
        self,
        query: Location,
        k: int = 1,
        method: str = "eager",
        exclude: AbstractSet[int] = _EMPTY,
    ) -> RnnResult:
        """Reverse k-nearest-neighbor query (paper Sections 3-5).

        Parameters
        ----------
        query:
            A node id in restricted networks; a node id or a canonical
            ``(u, v, pos)`` edge location in unrestricted ones.
        k:
            Neighborhood size (>= 1).
        method:
            One of :data:`METHODS`; ``"eager-m"`` requires
            :meth:`materialize` first.
        exclude:
            Data point ids hidden for the query's duration (the
            paper's workloads draw queries from the data points and
            treat them as new arrivals).

        Returns
        -------
        RnnResult
            The reverse neighbors (sorted point ids) plus the exact
            counter diff of this call.
        """
        self._check_query(query, k, method)
        points, diff = self._measure(lambda: self._run_rknn(query, k, method, exclude))
        return RnnResult(tuple(points), diff.io_operations, diff.cpu_seconds, diff)

    def _run_rknn(
        self, query: Location, k: int, method: str, exclude: AbstractSet[int]
    ) -> list[int]:
        if self.restricted:
            if not isinstance(query, int):
                raise QueryError("restricted networks take node-id queries")
            if method == "eager":
                return eager_rknn(self.view, query, k, exclude)
            if method == "lazy":
                return lazy_rknn(self.view, query, k, exclude)
            if method == "lazy-ep":
                return lazy_ep_rknn(self.view, query, k, exclude)
            return eager_m_rknn(self.view, self._require_mat(), query, k, exclude)
        if method == "eager":
            return unrestricted.unrestricted_eager(self.view, query, k, exclude)
        if method == "lazy":
            return unrestricted.unrestricted_lazy(self.view, query, k, exclude)
        if method == "lazy-ep":
            return unrestricted.unrestricted_lazy_ep(self.view, query, k, exclude)
        return unrestricted.unrestricted_eager_m(
            self.view, self._require_mat(), query, k, exclude
        )

    # -- continuous RkNN ---------------------------------------------------------

    def continuous_rknn(
        self,
        route: Sequence[int],
        k: int = 1,
        method: str = "eager",
        exclude: AbstractSet[int] = _EMPTY,
    ) -> RnnResult:
        """Continuous RkNN along a route of nodes (Section 5.1).

        Parameters
        ----------
        route:
            A walk: consecutive nodes must share an edge.
        k / method / exclude:
            As in :meth:`rknn`.

        Returns
        -------
        RnnResult
            The union of the route nodes' reverse neighbor sets.
        """
        validate_route(self.view, route)
        self._check_query(route[0], k, method)

        def run() -> list[int]:
            if self.restricted:
                if method == "eager":
                    return eager_rknn_route(self.view, route, k, exclude)
                if method == "lazy":
                    return lazy_rknn_route(self.view, route, k, exclude)
                if method == "lazy-ep":
                    return lazy_ep_rknn_route(self.view, route, k, exclude)
                return eager_m_rknn_route(
                    self.view, self._require_mat(), route, k, exclude
                )
            if method == "eager":
                return unrestricted.unrestricted_eager(
                    self.view, None, k, exclude, route=route
                )
            if method == "lazy":
                return unrestricted.unrestricted_lazy(
                    self.view, None, k, exclude, route=route
                )
            if method == "lazy-ep":
                return unrestricted.unrestricted_lazy_ep(
                    self.view, None, k, exclude, route=route
                )
            return unrestricted.unrestricted_eager_m(
                self.view, self._require_mat(), None, k, exclude, route=route
            )

        points, diff = self._measure(run)
        return RnnResult(tuple(points), diff.io_operations, diff.cpu_seconds, diff)

    # -- bichromatic RkNN ---------------------------------------------------------

    def bichromatic_rknn(
        self,
        query: Location,
        k: int = 1,
        method: str = "eager",
        exclude: AbstractSet[int] = _EMPTY,
    ) -> RnnResult:
        """Bichromatic RkNN against the attached reference set (Section 5.1).

        Parameters
        ----------
        query:
            Query location (node id, or edge location when
            unrestricted).
        k:
            Neighborhood size among the *reference* points.
        method:
            ``"eager"``, ``"lazy"`` or ``"eager-m"`` on restricted
            networks (``eager-m`` needs :meth:`materialize_reference`);
            ``"eager"`` on unrestricted ones.
        exclude:
            Reference point ids hidden for the query's duration.

        Returns
        -------
        RnnResult
            Database points P that keep the query among their k
            nearest reference points.
        """
        if self._ref_view is None:
            raise QueryError("attach_reference() before bichromatic queries")
        self._check_query(query, k, method)

        def run() -> list[int]:
            if self.restricted:
                if not isinstance(query, int):
                    raise QueryError("restricted networks take node-id queries")
                if method == "eager":
                    return bichromatic_eager(self.view, self._ref_view, query, k, exclude)
                if method == "lazy":
                    return bichromatic_lazy(self.view, self._ref_view, query, k, exclude)
                if method == "eager-m":
                    if self._ref_materialized is None:
                        raise QueryError(
                            "materialize_reference() before bichromatic eager-m"
                        )
                    return bichromatic_eager_m(
                        self.view, self._ref_view, self._ref_materialized,
                        query, k, exclude,
                    )
                raise QueryError(
                    "bichromatic queries support methods 'eager', 'lazy', 'eager-m'"
                )
            if method != "eager":
                raise QueryError(
                    "unrestricted bichromatic queries support method 'eager'"
                )
            return unrestricted.unrestricted_bichromatic_eager(
                self.view, self._ref_view, query, k, exclude
            )

        points, diff = self._measure(run)
        return RnnResult(tuple(points), diff.io_operations, diff.cpu_seconds, diff)

    # -- plain NN queries ----------------------------------------------------------

    def knn(
        self,
        query: Location,
        k: int = 1,
        exclude: AbstractSet[int] = _EMPTY,
    ) -> KnnResult:
        """The k nearest data points of a location.

        Parameters
        ----------
        query:
            Query location (node id, or edge location when
            unrestricted).
        k:
            Number of neighbors requested.
        exclude:
            Data point ids hidden for the query's duration.

        Returns
        -------
        KnnResult
            ``(point id, network distance)`` pairs in ascending
            distance order, plus the cost record.
        """
        def run() -> list[tuple[int, float]]:
            if self.restricted:
                if not isinstance(query, int):
                    raise QueryError("restricted networks take node-id queries")
                return restricted_knn(self.view, query, k, exclude)
            return unrestricted.unrestricted_knn(self.view, query, k, exclude)

        neighbors, diff = self._measure(run)
        return KnnResult(tuple(neighbors), diff.io_operations, diff.cpu_seconds, diff)

    def range_nn(
        self,
        query: int,
        k: int,
        radius: float,
        exclude: AbstractSet[int] = _EMPTY,
    ) -> KnnResult:
        """``range-NN(n, k, e)``: k nearest points strictly within ``radius``.

        Parameters
        ----------
        query:
            Query node id.
        k:
            Maximum number of points returned.
        radius:
            Strict distance bound ``e`` (points at exactly ``radius``
            are excluded).
        exclude:
            Data point ids hidden for the query's duration.

        Returns
        -------
        KnnResult
            Up to ``k`` points strictly inside the range, ascending.
        """
        def run() -> list[tuple[int, float]]:
            if self.restricted:
                return restricted_range_nn(self.view, query, k, radius, exclude)
            return unrestricted.unrestricted_range_nn(
                self.view, query, k, radius, exclude
            )

        neighbors, diff = self._measure(run)
        return KnnResult(tuple(neighbors), diff.io_operations, diff.cpu_seconds, diff)

    def in_route_knn(
        self,
        route: Sequence[int],
        k: int = 1,
        exclude: AbstractSet[int] = _EMPTY,
    ) -> tuple[list[RouteStop], KnnResult]:
        """The k nearest points of *every* node on a route ([16]).

        Unlike :meth:`continuous_rknn` (the union of reverse results),
        this is the forward in-route NN query: each route node gets its
        own kNN list.  Restricted networks only.  Returns the per-node
        lists plus an aggregate cost record.
        """
        if not self.restricted:
            raise QueryError("in-route queries require a restricted network")
        stops, diff = self._measure(
            lambda: in_route_knn(self.view, route, k, exclude)
        )
        cost = KnnResult((), diff.io_operations, diff.cpu_seconds, diff)
        return stops, cost

    def network_distance(self, loc1: Location, loc2: Location) -> float:
        """Exact network distance between two locations (uncharged;
        computed on the in-memory graph, intended for examples/tests)."""
        return baseline.location_distance(self.graph, loc1, loc2)

    # -- updates ---------------------------------------------------------------

    def insert_point(self, pid: int, location: Location) -> UpdateResult:
        """Add a data point, maintaining the materialized lists if any.

        Parameters
        ----------
        pid:
            New point id (must be unused).
        location:
            A node id on restricted networks; an ``(u, v, pos)``
            triplet on unrestricted ones.

        Returns
        -------
        UpdateResult
            The number of updated K-NN lists plus the cost record.
        """
        def run() -> int:
            updated = 0
            if isinstance(self.points, NodePointSet):
                if not isinstance(location, int):
                    raise QueryError("restricted networks take node-id locations")
                self.points = self.points.with_point(pid, location)
                seeds = [(location, 0.0)]
            else:
                if isinstance(location, int):
                    raise QueryError("unrestricted networks take edge locations")
                loc = unrestricted.normalize_location(location)
                self.points = self.points.with_point(pid, loc)
                assert self._edge_store is not None
                u, v, pos = loc
                self._edge_store.insert_point(pid, u, v, pos)
                weight = self.graph.weight(u, v)
                seeds = [(u, pos), (v, weight - pos)]
            self._rebuild_view()
            if self.materialized is not None:
                updated = self.materialized.insert(self.view, pid, seeds)
            return updated

        affected, diff = self._measure(run)
        self.generation += 1
        return UpdateResult(affected, diff.io_operations, diff.cpu_seconds, diff)

    def delete_point(self, pid: int) -> UpdateResult:
        """Remove a data point, maintaining the materialized lists if any.

        Parameters
        ----------
        pid:
            Id of the point to remove.

        Returns
        -------
        UpdateResult
            The number of repaired K-NN lists plus the cost record.
        """
        def run() -> int:
            updated = 0
            if isinstance(self.points, NodePointSet):
                node = self.points.node_of(pid)
                seeds = [(node, 0.0)]
                self.points = self.points.without_point(pid)
            else:
                u, v, pos = self.points.location(pid)
                weight = self.graph.weight(u, v)
                seeds = [(u, pos), (v, weight - pos)]
                self.points = self.points.without_point(pid)
                assert self._edge_store is not None
                self._edge_store.delete_point(pid, u, v)
            self._rebuild_view()
            if self.materialized is not None:
                updated = self.materialized.delete(self.view, pid, seeds)
            return updated

        affected, diff = self._measure(run)
        self.generation += 1
        return UpdateResult(affected, diff.io_operations, diff.cpu_seconds, diff)

    def _rebuild_view(self) -> None:
        self.view = NetworkView(
            self.disk, self.points, self.tracker, self._edge_store,
            bounds=self.oracle,
        )

    # -- validation helpers -------------------------------------------------------

    def _require_mat(self) -> MaterializedKNN:
        if self.materialized is None:
            raise QueryError("method 'eager-m' needs materialize() first")
        return self.materialized

    def _check_query(self, query: Location, k: int, method: str) -> None:
        if method not in METHODS:
            raise QueryError(f"unknown method {method!r}; choose one of {METHODS}")
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        if isinstance(query, int) and not 0 <= query < self.graph.num_nodes:
            raise QueryError(f"query node {query} out of range")
        if not isinstance(query, int) and not math.isfinite(query[2]):
            raise QueryError(f"non-finite edge offset {query[2]}")
