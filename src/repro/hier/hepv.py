"""HEPV-style hierarchical distance index.

The index materializes, per fragment, the all-pairs distances of the
*fragment-restricted* subgraph, and builds a *border super-graph*
whose nodes are the border nodes of all fragments and whose edges are

* the original cross-fragment edges, and
* for every fragment, a clique over its borders weighted by the
  fragment-restricted border-to-border distances.

**Exactness.**  Any shortest path decomposes into maximal
single-fragment segments joined by cross edges; each segment's
endpoints are borders (or the query endpoints), and a segment confined
to fragment ``f`` is no shorter than ``f``'s restricted distance
between its endpoints.  Hence the super-graph preserves exact
border-to-border distances, and a query ``d(u, v)`` is answered by

    min( intra_F(u)(u, v)  [same fragment only],
         min over borders b1 of F(u), b2 of F(v):
             intra(u, b1) + d_super(b1, b2) + intra(b2, v) )

with one small multi-source Dijkstra on the super-graph.  The storage
is ``O(sum_f s_f^2)`` -- for fragments of size ``s`` about ``s`` entries
per node instead of ``|V|/2`` (the paper's 5 x 10^9 example).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass

from repro.errors import GraphError, QueryError
from repro.graph.graph import Graph
from repro.hier.fragments import Fragmentation, partition_fragments
from repro.paths.dijkstra import single_source_distances


@dataclass
class HierStats:
    """Work counters for hierarchical distance queries."""

    queries: int = 0
    same_fragment_hits: int = 0   # answered without touching the super-graph
    super_settled: int = 0        # super-graph nodes settled across queries


class _FragmentView:
    """Adjacency of one fragment's restricted subgraph."""

    def __init__(self, graph: Graph, fragment_of: tuple[int, ...], fid: int):
        self._graph = graph
        self._fragment_of = fragment_of
        self._fid = fid

    def neighbors(self, node: int):
        return [
            (nbr, weight)
            for nbr, weight in self._graph.neighbors(node)
            if self._fragment_of[nbr] == self._fid
        ]


class HierarchicalDistanceIndex:
    """Exact point-to-point network distances via partial materialization."""

    def __init__(
        self,
        fragmentation: Fragmentation,
        intra: list[dict[tuple[int, int], float]],
        super_adj: dict[int, list[tuple[int, float]]],
    ):
        self._frag = fragmentation
        self._intra = intra
        self._super_adj = super_adj
        self.stats = HierStats()

    @classmethod
    def build(
        cls, graph: Graph, fragment_size: int = 32
    ) -> "HierarchicalDistanceIndex":
        """Partition ``graph`` and materialize the two index levels."""
        if fragment_size < 1:
            raise GraphError(f"fragment size must be >= 1, got {fragment_size}")
        frag = partition_fragments(graph, fragment_size)
        intra: list[dict[tuple[int, int], float]] = []
        for fid, members in enumerate(frag.members):
            view = _FragmentView(graph, frag.fragment_of, fid)
            table: dict[tuple[int, int], float] = {}
            for source in members:
                for node, dist in single_source_distances(view, source).items():
                    if source <= node:
                        table[(source, node)] = dist
            intra.append(table)

        super_adj: dict[int, list[tuple[int, float]]] = {
            node: [] for node in frag.border_set()
        }
        for u, v, w in graph.edges():
            if frag.fragment_of[u] != frag.fragment_of[v]:
                super_adj[u].append((v, w))
                super_adj[v].append((u, w))
        for fid, border in enumerate(frag.borders):
            for b1, b2 in itertools.combinations(border, 2):
                dist = intra[fid].get((min(b1, b2), max(b1, b2)))
                if dist is not None:
                    super_adj[b1].append((b2, dist))
                    super_adj[b2].append((b1, dist))
        return cls(frag, intra, super_adj)

    # -- introspection -----------------------------------------------------

    @property
    def fragmentation(self) -> Fragmentation:
        return self._frag

    @property
    def storage_entries(self) -> int:
        """Materialized distance entries (intra tables + super edges)."""
        intra = sum(len(table) for table in self._intra)
        super_edges = sum(len(adj) for adj in self._super_adj.values()) // 2
        return intra + super_edges

    @staticmethod
    def full_materialization_entries(num_nodes: int) -> int:
        """All-pairs entries the paper's Section 2.2 example counts."""
        return num_nodes * (num_nodes - 1) // 2

    # -- queries -------------------------------------------------------------

    def distance(self, u: int, v: int) -> float:
        """Exact network distance between nodes ``u`` and ``v``.

        Returns ``inf`` when unreachable.
        """
        num_nodes = len(self._frag.fragment_of)
        if not (0 <= u < num_nodes and 0 <= v < num_nodes):
            raise QueryError(f"nodes ({u}, {v}) out of range")
        self.stats.queries += 1
        if u == v:
            self.stats.same_fragment_hits += 1
            return 0.0
        fu = self._frag.fragment_of[u]
        fv = self._frag.fragment_of[v]
        best = math.inf
        if fu == fv:
            direct = self._intra[fu].get((min(u, v), max(u, v)))
            if direct is not None:
                best = direct
            if not self._frag.borders[fu]:
                # the fragment is a whole component: no detour can help
                self.stats.same_fragment_hits += 1
                return best
        via = self._via_borders(u, fu, v, fv, cutoff=best)
        return min(best, via)

    def _via_borders(self, u: int, fu: int, v: int, fv: int, cutoff: float) -> float:
        """Best ``u -> border -> ... -> border -> v`` route, if any."""
        exits = self._border_offsets(u, fu)
        entries = self._border_offsets(v, fv)
        if not exits or not entries:
            return math.inf
        heap = [(offset, border) for border, offset in exits.items()]
        heapq.heapify(heap)
        settled: set[int] = set()
        best = cutoff
        while heap:
            dist, node = heapq.heappop(heap)
            if node in settled:
                continue
            if dist >= best:
                break  # every remaining route is at least this long
            settled.add(node)
            self.stats.super_settled += 1
            tail = entries.get(node)
            if tail is not None and dist + tail < best:
                best = dist + tail
            for nbr, weight in self._super_adj[node]:
                if nbr not in settled and dist + weight < best:
                    heapq.heappush(heap, (dist + weight, nbr))
        return best

    def _border_offsets(self, node: int, fid: int) -> dict[int, float]:
        """Distances from ``node`` to each border of its fragment."""
        offsets: dict[int, float] = {}
        table = self._intra[fid]
        for border in self._frag.borders[fid]:
            dist = table.get((min(node, border), max(node, border)))
            if dist is not None:
                offsets[border] = dist
        return offsets
