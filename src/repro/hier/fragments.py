"""Graph fragmentation for hierarchical materialization.

HiTi/HEPV-style indexes need the graph cut into *fragments*: connected
groups of nodes of roughly equal size.  The partitioner here grows
fragments by BFS from unassigned seed nodes, the same locality
heuristic the storage layer uses to pack adjacency lists into pages
(Section 3.1, ref. [2]) -- neighbors tend to share a fragment, which
keeps the border small.

A node is a *border node* of its fragment when it has an edge into a
different fragment; all other member nodes are *interior*.  Every
path between fragments passes through border nodes, which is the
invariant the hierarchical index exploits.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import GraphError
from repro.graph.graph import Graph


@dataclass(frozen=True)
class Fragmentation:
    """A partition of the node set into connected fragments.

    ``fragment_of[node]`` is the fragment id; ``members[f]`` lists the
    fragment's nodes; ``borders[f]`` the subset with cross-fragment
    edges.
    """

    fragment_of: tuple[int, ...]
    members: tuple[tuple[int, ...], ...]
    borders: tuple[tuple[int, ...], ...]

    @property
    def num_fragments(self) -> int:
        return len(self.members)

    def border_set(self) -> set[int]:
        """All border nodes across fragments."""
        return {node for border in self.borders for node in border}

    def interior_nodes(self, fragment: int) -> list[int]:
        """Members of ``fragment`` without cross-fragment edges."""
        border = set(self.borders[fragment])
        return [node for node in self.members[fragment] if node not in border]


def partition_fragments(graph: Graph, max_size: int) -> Fragmentation:
    """Cut ``graph`` into connected fragments of at most ``max_size`` nodes.

    Seeds are chosen in node-id order among unassigned nodes, and each
    fragment grows by BFS until it hits ``max_size`` or runs out of
    unassigned frontier.  Deterministic for a given graph.
    """
    if max_size < 1:
        raise GraphError(f"fragment size must be >= 1, got {max_size}")
    fragment_of = [-1] * graph.num_nodes
    members: list[list[int]] = []
    for seed in range(graph.num_nodes):
        if fragment_of[seed] >= 0:
            continue
        fid = len(members)
        group = [seed]
        fragment_of[seed] = fid
        queue = deque([seed])
        while queue and len(group) < max_size:
            node = queue.popleft()
            for nbr, _ in graph.neighbors(node):
                if fragment_of[nbr] < 0:
                    fragment_of[nbr] = fid
                    group.append(nbr)
                    queue.append(nbr)
                    if len(group) == max_size:
                        break
        members.append(sorted(group))

    borders: list[list[int]] = []
    for fid, group in enumerate(members):
        border = [
            node
            for node in group
            if any(fragment_of[nbr] != fid for nbr, _ in graph.neighbors(node))
        ]
        borders.append(border)
    return Fragmentation(
        fragment_of=tuple(fragment_of),
        members=tuple(tuple(group) for group in members),
        borders=tuple(tuple(border) for border in borders),
    )
