"""Hierarchical partial materialization (paper Section 2.2, refs [6], [7]).

Full materialization of all-pairs distances needs ``|V|(|V|-1)/2``
entries -- the paper's example: 5 x 10^9 for a 100K-node graph.  HiTi
[7] and HEPV [6] avoid this by *partial* materialization: partition
the graph into fragments, precompute distances inside each fragment,
and route cross-fragment queries through the (much smaller) graph of
fragment border nodes.

This package implements that trade-off as a distance-query substrate:

* :func:`~repro.hier.fragments.partition_fragments` -- a BFS-growing
  partitioner producing connected fragments of bounded size;
* :class:`~repro.hier.hepv.HierarchicalDistanceIndex` -- per-fragment
  border distance tables plus the border super-graph, answering exact
  point-to-point distance queries while materializing a small fraction
  of the all-pairs matrix.

The ablation benchmark compares its query cost and storage against
flat Dijkstra and against the paper's K-NN materialization.
"""

from repro.hier.fragments import Fragmentation, partition_fragments
from repro.hier.hepv import HierarchicalDistanceIndex

__all__ = ["Fragmentation", "partition_fragments", "HierarchicalDistanceIndex"]
