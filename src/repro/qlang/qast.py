"""The qlang abstract syntax tree and its canonical formatter.

Nodes are frozen dataclasses, so statements are hashable values just
like the :class:`~repro.engine.spec.QuerySpec` objects they compile to.
:func:`format_script` renders any tree back to canonical source text,
and the round-trip law holds::

    parse(format_script(script)) == script

Canonical choices: upper-case keywords, single-quoted strings,
``[...]`` for sequences, ``{id: weight, ...}`` for maps, ``true`` /
``false`` for booleans.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Values a qlang argument can carry: numbers, strings, booleans,
#: sequences (python tuples) and :class:`MapValue` maps.
Value = object


@dataclass(frozen=True)
class MapValue:
    """A ``{key: value, ...}`` literal, as an ordered tuple of pairs."""

    pairs: tuple[tuple[Value, Value], ...]

    def to_dict(self) -> dict:
        """The pairs as a plain dict (payload form)."""
        return dict(self.pairs)


@dataclass(frozen=True)
class Arg:
    """One ``name=value`` argument of a table-valued function call."""

    name: str
    value: Value


@dataclass(frozen=True)
class Call:
    """A table-valued function call: ``name(arg, ...)``."""

    name: str
    args: tuple[Arg, ...] = ()


@dataclass(frozen=True)
class Comparison:
    """A ``field <op> number`` predicate from a WHERE clause."""

    field: str
    op: str
    value: Value


@dataclass(frozen=True)
class Select:
    """One ``[EXPLAIN] SELECT * FROM call [WHERE ...] [LIMIT n]`` statement.

    ``explain`` marks an ``EXPLAIN``-prefixed statement: it compiles to
    the same spec, but executes traced and answers with the compiled
    plan plus the span tree instead of the bare result.
    """

    source: Call
    where: tuple[Comparison, ...] = ()
    limit: int | None = None
    explain: bool = False


@dataclass(frozen=True)
class Script:
    """A ``;``-separated sequence of statements."""

    statements: tuple[Select, ...] = field(default_factory=tuple)


def format_value(value: Value) -> str:
    """Render one argument value as canonical qlang source."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        escaped = (value.replace("\\", "\\\\").replace("'", "\\'")
                   .replace("\n", "\\n").replace("\t", "\\t"))
        return f"'{escaped}'"
    if isinstance(value, MapValue):
        inner = ", ".join(
            f"{format_value(key)}: {format_value(item)}"
            for key, item in value.pairs
        )
        return "{" + inner + "}"
    if isinstance(value, (tuple, list)):
        return "[" + ", ".join(format_value(item) for item in value) + "]"
    raise TypeError(f"unformattable qlang value {value!r}")


def format_statement(select: Select) -> str:
    """Render one statement as canonical qlang source."""
    args = ", ".join(
        f"{arg.name}={format_value(arg.value)}" for arg in select.source.args
    )
    text = f"SELECT * FROM {select.source.name}({args})"
    if select.explain:
        text = "EXPLAIN " + text
    if select.where:
        predicates = " AND ".join(
            f"{cmp.field} {cmp.op} {format_value(cmp.value)}"
            for cmp in select.where
        )
        text += f" WHERE {predicates}"
    if select.limit is not None:
        text += f" LIMIT {select.limit}"
    return text


def format_script(script: Script) -> str:
    """Render a whole script, one statement per line, ``;``-separated."""
    return ";\n".join(format_statement(s) for s in script.statements)
