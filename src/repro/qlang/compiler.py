"""Compile qlang statements into engine :class:`QuerySpec` plans.

The compiler is a thin lowering pass: each ``SELECT * FROM kind(...)``
statement becomes one spec payload, the ``WHERE distance < r`` clause
becomes the kind-appropriate range restriction, ``LIMIT n`` becomes
``topk_influence``'s result cap, and the payload is validated by
:meth:`~repro.engine.spec.QuerySpec.from_payload` -- so the language
cannot express a spec the engine would reject, and every backend,
the CLI and the serve tier answer compiled statements through the
same planner/cache/kernel pipeline as hand-built specs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.spec import QuerySpec
from repro.errors import QueryError
from repro.qlang.parser import parse
from repro.qlang.qast import MapValue, Script, Select

#: Table-valued function names and the spec kind each compiles to
#: (``range_nn`` is an alias matching the facade method name).
SOURCES = {
    "knn": "knn",
    "rknn": "rknn",
    "bichromatic": "bichromatic",
    "range": "range",
    "range_nn": "range",
    "continuous": "continuous",
    "topk_influence": "topk_influence",
    "aggregate_nn": "aggregate_nn",
}


class CompileError(QueryError):
    """A well-formed statement the engine has no meaning for."""


@dataclass(frozen=True)
class Statement:
    """One compiled statement: the lowered spec plus execution mode.

    ``explain`` carries the ``EXPLAIN`` prefix through compilation --
    the spec is identical either way, but an explain statement answers
    with plan + trace (:func:`repro.qlang.api.explain_spec`) instead of
    the bare result.
    """

    spec: QuerySpec
    explain: bool = False


def compile_statement(select: Select) -> QuerySpec:
    """Lower one parsed statement into a :class:`QuerySpec`.

    Raises
    ------
    CompileError
        For unknown source functions, duplicate arguments, or clauses
        that do not apply to the statement's kind; payload-level
        problems surface as the spec layer's uniform
        ``invalid query spec`` errors.
    """
    name = select.source.name
    kind = SOURCES.get(name)
    if kind is None:
        raise CompileError(
            f"unknown query function {name!r}; "
            f"allowed functions: {tuple(sorted(SOURCES))}"
        )
    payload: dict = {"kind": kind}
    for arg in select.source.args:
        if arg.name == "kind":
            raise CompileError(
                "the query kind comes from the function name; "
                "'kind' is not an argument"
            )
        if arg.name in payload:
            raise CompileError(f"duplicate argument {arg.name!r}")
        value = arg.value
        if isinstance(value, MapValue):
            value = value.to_dict()
        payload[arg.name] = value
    _apply_where(select, kind, payload)
    _apply_limit(select, kind, payload)
    return QuerySpec.from_payload(payload)


def _apply_where(select: Select, kind: str, payload: dict) -> None:
    """Fold the WHERE clause into the payload's range restriction."""
    if not select.where:
        return
    for predicate in select.where:
        if predicate.field != "distance":
            raise CompileError(
                f"unsupported predicate field {predicate.field!r}; "
                f"qlang predicates bound 'distance'"
            )
        if predicate.op != "<":
            raise CompileError(
                "distance bounds are strict; use 'distance < r'"
            )
    if len(select.where) > 1:
        raise CompileError("one 'distance' bound per statement")
    bound = select.where[0].value
    if kind == "knn":
        # k nearest within a bound *is* the range kind
        payload["kind"] = "range"
        payload["radius"] = bound
    elif kind == "range":
        if "radius" in payload:
            raise CompileError(
                "range_nn takes either a radius argument or a "
                "WHERE distance bound, not both"
            )
        payload["radius"] = bound
    elif kind in ("rknn", "bichromatic"):
        if "within" in payload:
            raise CompileError(
                f"{kind} takes either a within argument or a "
                f"WHERE distance bound, not both"
            )
        payload["within"] = bound
    else:
        raise CompileError(
            f"WHERE distance does not apply to {kind!r} statements"
        )


def _apply_limit(select: Select, kind: str, payload: dict) -> None:
    """Fold the LIMIT clause into ``topk_influence``'s result cap."""
    if select.limit is None:
        return
    if kind != "topk_influence":
        raise CompileError(
            f"LIMIT applies to topk_influence statements only, not {kind!r}"
        )
    if "limit" in payload:
        raise CompileError(
            "topk_influence takes either a limit argument or a "
            "LIMIT clause, not both"
        )
    payload["limit"] = select.limit


def compile_script(script: Script) -> list[QuerySpec]:
    """Lower every statement of a parsed script, in order."""
    return [compile_statement(statement) for statement in script.statements]


def compile_text(text: str) -> list[QuerySpec]:
    """Parse and compile qlang source into executable specs.

    ``EXPLAIN`` prefixes are dropped at this level -- callers that act
    on them use :func:`compile_statements` instead.
    """
    return compile_script(parse(text))


def compile_statements(text: str) -> list[Statement]:
    """Parse and compile qlang source, keeping each ``EXPLAIN`` flag.

    The mode-aware sibling of :func:`compile_text`, used by
    :func:`repro.qlang.api.execute`, the CLI and the serve protocol to
    route explain statements through the traced path.
    """
    return [
        Statement(spec=compile_statement(select), explain=select.explain)
        for select in parse(text).statements
    ]
