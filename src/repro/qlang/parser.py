"""Recursive-descent parser for qlang.

Grammar (keywords case-insensitive)::

    script      := statement (';' statement)* ';'?
    statement   := [EXPLAIN] SELECT '*' FROM call
                   [WHERE predicates] [LIMIT int]
    call        := IDENT '(' [arg (',' arg)*] ')'
    arg         := IDENT '=' value
    predicates  := comparison (AND comparison)*
    comparison  := IDENT ('<' | '<=') NUMBER
    value       := NUMBER | STRING | 'true' | 'false' | list | map
    list        := '[' [value (',' value)*] ']'
    map         := '{' [value ':' value (',' value ':' value)*] '}'

The parser validates *shape* only; name/kind validation happens in the
compiler (:mod:`repro.qlang.compiler`), so any well-formed statement
round-trips through the canonical formatter regardless of whether it
names a real query kind.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.qlang.lexer import Token, tokenize
from repro.qlang.qast import (
    Arg,
    Call,
    Comparison,
    MapValue,
    Script,
    Select,
)


class ParseError(QueryError):
    """A token stream that is not a qlang script."""


class _Parser:
    """One pass over a token list (no backtracking needed)."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def current(self) -> Token:
        """The token under the cursor (``EOF`` at the end)."""
        return self.tokens[self.position]

    def error(self, message: str) -> ParseError:
        """A positioned :class:`ParseError` at the current token."""
        token = self.current
        return ParseError(
            f"qlang syntax error at {token.line}:{token.column}: {message}, "
            f"got {token.describe()}"
        )

    def advance(self) -> Token:
        """Consume and return the current token (``EOF`` is sticky)."""
        token = self.current
        if token.type != "EOF":
            self.position += 1
        return token

    def accept(self, type_: str, value=None) -> Token | None:
        """Consume the current token if it matches, else ``None``."""
        token = self.current
        if token.type != type_ or (value is not None and token.value != value):
            return None
        return self.advance()

    def expect(self, type_: str, value, what: str) -> Token:
        """Consume a required token or fail naming ``what`` was due."""
        token = self.accept(type_, value)
        if token is None:
            raise self.error(f"expected {what}")
        return token

    # -- grammar ------------------------------------------------------------

    def script(self) -> Script:
        """``statement (';' statement)* ';'?`` to end of input."""
        statements = [self.statement()]
        while self.accept("PUNCT", ";"):
            if self.current.type == "EOF":
                break
            statements.append(self.statement())
        if self.current.type != "EOF":
            raise self.error("expected ';' or end of script")
        return Script(tuple(statements))

    def statement(self) -> Select:
        """``[EXPLAIN] SELECT '*' FROM call [WHERE ...] [LIMIT int]``."""
        explain = self.accept("KEYWORD", "EXPLAIN") is not None
        self.expect("KEYWORD", "SELECT", "'SELECT'")
        self.expect("PUNCT", "*", "'*' (qlang selects whole answers)")
        self.expect("KEYWORD", "FROM", "'FROM'")
        source = self.call()
        where: tuple[Comparison, ...] = ()
        if self.accept("KEYWORD", "WHERE"):
            predicates = [self.comparison()]
            while self.accept("KEYWORD", "AND"):
                predicates.append(self.comparison())
            where = tuple(predicates)
        limit = None
        if self.accept("KEYWORD", "LIMIT"):
            token = self.current
            if token.type != "NUMBER" or not isinstance(token.value, int):
                raise self.error("expected an integer LIMIT")
            self.advance()
            limit = token.value
        return Select(source=source, where=where, limit=limit,
                      explain=explain)

    def call(self) -> Call:
        """``IDENT '(' [arg (',' arg)*] ')'``."""
        name = self.current
        if name.type != "IDENT":
            raise self.error("expected a query function name")
        self.advance()
        self.expect("PUNCT", "(", f"'(' after function name {name.value!r}")
        args: list[Arg] = []
        if not self.accept("PUNCT", ")"):
            args.append(self.argument())
            while self.accept("PUNCT", ","):
                args.append(self.argument())
            self.expect("PUNCT", ")", "')' closing the argument list")
        return Call(name=name.value, args=tuple(args))

    def argument(self) -> Arg:
        """``IDENT '=' value``."""
        name = self.current
        if name.type != "IDENT":
            raise self.error("expected an argument name")
        self.advance()
        self.expect("PUNCT", "=", f"'=' after argument name {name.value!r}")
        return Arg(name=name.value, value=self.value())

    def comparison(self) -> Comparison:
        """``IDENT ('<' | '<=') NUMBER``."""
        field = self.current
        if field.type != "IDENT":
            raise self.error("expected a predicate field name")
        self.advance()
        op = self.current
        if op.type != "OP":
            raise self.error(f"expected '<' or '<=' after {field.value!r}")
        self.advance()
        bound = self.current
        if bound.type != "NUMBER":
            raise self.error("expected a numeric bound")
        self.advance()
        return Comparison(field=field.value, op=op.value, value=bound.value)

    def value(self):
        """A number, string, boolean, ``[...]`` list or ``{...}`` map."""
        token = self.current
        if token.type == "NUMBER" or token.type == "STRING":
            self.advance()
            return token.value
        if token.type == "IDENT" and token.value.lower() in ("true", "false"):
            self.advance()
            return token.value.lower() == "true"
        if self.accept("PUNCT", "["):
            items = []
            if not self.accept("PUNCT", "]"):
                items.append(self.value())
                while self.accept("PUNCT", ","):
                    items.append(self.value())
                self.expect("PUNCT", "]", "']' closing the list")
            return tuple(items)
        if self.accept("PUNCT", "{"):
            pairs = []
            if not self.accept("PUNCT", "}"):
                pairs.append(self.pair())
                while self.accept("PUNCT", ","):
                    pairs.append(self.pair())
                self.expect("PUNCT", "}", "'}' closing the map")
            return MapValue(tuple(pairs))
        raise self.error("expected a value")

    def pair(self):
        """``value ':' value`` inside a map literal."""
        key = self.value()
        self.expect("PUNCT", ":", "':' between map key and value")
        return (key, self.value())


def parse(text: str) -> Script:
    """Parse qlang source into a :class:`~repro.qlang.qast.Script`.

    Raises
    ------
    ParseError
        With a 1-based ``line:column`` position on the first offending
        token (lexer errors pass through as
        :class:`~repro.qlang.lexer.LexError`).
    """
    return _Parser(tokenize(text)).script()
