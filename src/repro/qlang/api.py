"""``execute``: run qlang text or specs on any backend facade.

This is the implementation behind every facade's ``Database.query``
method -- one public surface accepting a statement string, a
:class:`~repro.engine.spec.QuerySpec`, or a sequence mixing both, and
answering through the database's batch engine so compiled plans share
the planner, the result cache and (where the backend offers one) the
vectorized batch kernel.

``EXPLAIN``-prefixed statements answer with an :class:`ExplainResult`
instead of a bare result: the compiled plan (:func:`build_plan`) plus
the executed span tree of a dedicated traced run
(:func:`explain_spec`) -- the query-level surface of
:mod:`repro.obs.trace`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Sequence

from repro.engine.groups import needs_expansion
from repro.engine.planner import kernel_batch_kinds, resolve_method
from repro.engine.spec import QuerySpec
from repro.errors import QueryError
from repro.obs.trace import Tracer, render_trace
from repro.qlang.compiler import Statement, compile_statements, compile_text


@dataclass(frozen=True)
class ExplainResult:
    """What one ``EXPLAIN`` statement answers with.

    Attributes
    ----------
    result:
        The statement's actual answer (EXPLAIN executes the query; the
        paper's cost counters come from a real run, not an estimate).
    plan:
        The compiled plan as plain JSON: the lowered spec payload, the
        resolved method, the backend, whether the spec expands into
        sub-queries and whether the backend's vectorized kernel can
        serve it (see :func:`build_plan`).
    trace:
        The executed span tree, in :meth:`repro.obs.trace.Tracer.to_payload`
        wire form.
    """

    result: object
    plan: dict
    trace: dict

    def to_payload(self) -> dict:
        """Plan + trace as one JSON-serializable mapping (the wire and
        CLI form; the result itself travels separately)."""
        return {"explain": True, "plan": self.plan, "trace": self.trace}

    def render(self) -> list[str]:
        """Human-readable lines: the plan summary, then the span tree."""
        lines = [f"plan: {json.dumps(self.plan, sort_keys=True)}"]
        lines.extend(render_trace(self.trace))
        return lines


def build_plan(engine, spec: QuerySpec) -> dict:
    """Describe how ``engine`` would execute ``spec``, as plain JSON.

    This is the static half of ``EXPLAIN`` -- resolved before running:
    the lowered spec payload, the method after ``auto`` resolution, the
    backend name, the cache snapshot stamp, whether the spec expands
    into sub-queries (group kinds), and whether the backend's
    vectorized batch kernel is eligible to serve it.
    """
    resolved = resolve_method(spec, engine.calibrator)
    stamp = engine.cache_stamp
    return {
        "spec": json.loads(resolved.to_json()),
        "backend": engine.backend,
        "method": resolved.method,
        "cache_stamp": list(stamp) if isinstance(stamp, tuple) else stamp,
        "expands": needs_expansion(resolved),
        "kernel_eligible": bool(
            engine.batch_kernel
            and resolved.kind in kernel_batch_kinds(engine.db)
        ),
        "planned": engine.plan_batches,
    }


def explain_spec(engine, spec: QuerySpec, workers: int = 1) -> ExplainResult:
    """Execute one spec traced and package plan + span tree.

    The spec runs as its own single-statement batch under a fresh
    :class:`~repro.obs.trace.Tracer` (engine-wide tracing stays off),
    so the returned tree covers exactly this statement.
    """
    plan = build_plan(engine, spec)
    tracer = Tracer()
    outcome = engine.run_batch([spec], workers=workers, tracer=tracer)
    return ExplainResult(result=outcome.results[0], plan=plan,
                         trace=tracer.to_payload())


def as_specs(query) -> tuple[list[QuerySpec], bool]:
    """Coerce ``query`` into specs; also report whether it was singular.

    A single spec, or a statement string compiling to exactly one
    statement, is *singular*: :func:`execute` unwraps its one result.
    Anything else (multi-statement scripts, sequences) answers as a
    list.
    """
    if isinstance(query, QuerySpec):
        return [query], True
    if isinstance(query, str):
        specs = compile_text(query)
        return specs, len(specs) == 1
    if isinstance(query, Sequence):
        specs = []
        for item in query:
            if isinstance(item, QuerySpec):
                specs.append(item)
            elif isinstance(item, str):
                specs.extend(compile_text(item))
            else:
                raise QueryError(
                    f"queries are statements or QuerySpecs, got "
                    f"{type(item).__name__}"
                )
        return specs, False
    raise QueryError(
        f"queries are statements or QuerySpecs, got {type(query).__name__}"
    )


def as_statements(query) -> tuple[list[Statement], bool]:
    """Like :func:`as_specs`, but keeping each statement's EXPLAIN flag.

    Bare :class:`QuerySpec` values become plain (non-explain)
    statements; strings compile through
    :func:`~repro.qlang.compiler.compile_statements`.
    """
    if isinstance(query, QuerySpec):
        return [Statement(spec=query)], True
    if isinstance(query, str):
        statements = compile_statements(query)
        return statements, len(statements) == 1
    if isinstance(query, Sequence):
        statements: list[Statement] = []
        for item in query:
            if isinstance(item, QuerySpec):
                statements.append(Statement(spec=item))
            elif isinstance(item, str):
                statements.extend(compile_statements(item))
            else:
                raise QueryError(
                    f"queries are statements or QuerySpecs, got "
                    f"{type(item).__name__}"
                )
        return statements, False
    raise QueryError(
        f"queries are statements or QuerySpecs, got {type(query).__name__}"
    )


def execute(db, query, *, engine=None, workers: int = 1):
    """Answer qlang text (or specs) on ``db`` through its batch engine.

    Parameters
    ----------
    db:
        Any backend facade exposing ``engine()`` (disk, sharded,
        compact, and their directed variants).
    query:
        A qlang statement string (possibly ``;``-separated), a
        :class:`~repro.engine.spec.QuerySpec`, or a sequence of either.
    engine:
        Reuse an existing :class:`~repro.engine.engine.QueryEngine`
        (keeps its result cache warm across calls); by default a fresh
        engine is built per call.
    workers:
        Worker sessions for the batch (see
        :meth:`~repro.engine.engine.QueryEngine.run_batch`).

    Returns
    -------
    One result object for a singular query, else a list of results in
    statement order.  ``EXPLAIN`` statements answer with an
    :class:`ExplainResult` (result + plan + span tree) in place of the
    bare result; each runs as its own dedicated traced batch so its
    tree covers exactly that statement.
    """
    statements, singular = as_statements(query)
    runner = db.engine() if engine is None else engine
    if not any(statement.explain for statement in statements):
        outcome = runner.run_batch(
            [statement.spec for statement in statements], workers=workers
        )
        return outcome.results[0] if singular else list(outcome.results)
    results: list = [None] * len(statements)
    plain = [(position, statement.spec)
             for position, statement in enumerate(statements)
             if not statement.explain]
    if plain:
        outcome = runner.run_batch([spec for _, spec in plain],
                                   workers=workers)
        for (position, _), result in zip(plain, outcome.results):
            results[position] = result
    for position, statement in enumerate(statements):
        if statement.explain:
            results[position] = explain_spec(runner, statement.spec,
                                             workers=workers)
    return results[0] if singular else results
