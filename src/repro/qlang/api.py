"""``execute``: run qlang text or specs on any backend facade.

This is the implementation behind every facade's ``Database.query``
method -- one public surface accepting a statement string, a
:class:`~repro.engine.spec.QuerySpec`, or a sequence mixing both, and
answering through the database's batch engine so compiled plans share
the planner, the result cache and (where the backend offers one) the
vectorized batch kernel.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.spec import QuerySpec
from repro.errors import QueryError
from repro.qlang.compiler import compile_text


def as_specs(query) -> tuple[list[QuerySpec], bool]:
    """Coerce ``query`` into specs; also report whether it was singular.

    A single spec, or a statement string compiling to exactly one
    statement, is *singular*: :func:`execute` unwraps its one result.
    Anything else (multi-statement scripts, sequences) answers as a
    list.
    """
    if isinstance(query, QuerySpec):
        return [query], True
    if isinstance(query, str):
        specs = compile_text(query)
        return specs, len(specs) == 1
    if isinstance(query, Sequence):
        specs = []
        for item in query:
            if isinstance(item, QuerySpec):
                specs.append(item)
            elif isinstance(item, str):
                specs.extend(compile_text(item))
            else:
                raise QueryError(
                    f"queries are statements or QuerySpecs, got "
                    f"{type(item).__name__}"
                )
        return specs, False
    raise QueryError(
        f"queries are statements or QuerySpecs, got {type(query).__name__}"
    )


def execute(db, query, *, engine=None, workers: int = 1):
    """Answer qlang text (or specs) on ``db`` through its batch engine.

    Parameters
    ----------
    db:
        Any backend facade exposing ``engine()`` (disk, sharded,
        compact, and their directed variants).
    query:
        A qlang statement string (possibly ``;``-separated), a
        :class:`~repro.engine.spec.QuerySpec`, or a sequence of either.
    engine:
        Reuse an existing :class:`~repro.engine.engine.QueryEngine`
        (keeps its result cache warm across calls); by default a fresh
        engine is built per call.
    workers:
        Worker sessions for the batch (see
        :meth:`~repro.engine.engine.QueryEngine.run_batch`).

    Returns
    -------
    One result object for a singular query, else a list of results in
    statement order.
    """
    specs, singular = as_specs(query)
    runner = db.engine() if engine is None else engine
    outcome = runner.run_batch(specs, workers=workers)
    if singular:
        return outcome.results[0]
    return list(outcome.results)
