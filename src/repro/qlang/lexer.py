"""Hand-written tokenizer for the qlang surface syntax.

Produces a flat list of :class:`Token` values with 1-based line/column
positions (used verbatim in parse errors).  Keywords are recognized
case-insensitively; identifiers keep their spelling.  ``--`` starts a
comment running to the end of the line.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError

#: Reserved words (matched case-insensitively, stored upper-case).
KEYWORDS = ("EXPLAIN", "SELECT", "FROM", "WHERE", "AND", "LIMIT")

#: Multi-character operators, longest first so ``<=`` wins over ``<``.
_OPERATORS = ("<=", "<")

#: Single-character punctuation tokens.
_PUNCTUATION = "(),=*;[]{}:"

_IDENT_START = set("abcdefghijklmnopqrstuvwxyz"
                   "ABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_BODY = _IDENT_START | set("0123456789")
_DIGITS = set("0123456789")

_ESCAPES = {"\\": "\\", "'": "'", '"': '"', "n": "\n", "t": "\t"}


class LexError(QueryError):
    """A character stream that is not qlang."""


@dataclass(frozen=True)
class Token:
    """One lexeme: a ``type`` tag, its python ``value``, and a position.

    ``type`` is one of ``KEYWORD``, ``IDENT``, ``NUMBER``, ``STRING``,
    ``OP`` (comparison operators), ``PUNCT`` or ``EOF``.
    """

    type: str
    value: object
    line: int
    column: int

    def describe(self) -> str:
        """Human-readable form for error messages."""
        if self.type == "EOF":
            return "end of input"
        return repr(str(self.value))


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into tokens (ending with one ``EOF`` token).

    Raises
    ------
    LexError
        On any character that cannot start a token, an unterminated
        string, or a malformed number.
    """
    tokens: list[Token] = []
    line, column = 1, 1
    index = 0
    size = len(text)

    def error(message: str) -> LexError:
        return LexError(f"qlang syntax error at {line}:{column}: {message}")

    while index < size:
        char = text[index]
        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if text.startswith("--", index):
            while index < size and text[index] != "\n":
                index += 1
            continue
        start_column = column
        if char in _IDENT_START:
            end = index
            while end < size and text[end] in _IDENT_BODY:
                end += 1
            word = text[index:end]
            if word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), line, start_column))
            else:
                tokens.append(Token("IDENT", word, line, start_column))
            column += end - index
            index = end
            continue
        if char in _DIGITS or (char == "-" and index + 1 < size
                               and text[index + 1] in _DIGITS):
            index, column, token = _lex_number(text, index, line, column)
            tokens.append(token)
            continue
        if char in "'\"":
            index, line, column, token = _lex_string(text, index, line, column)
            tokens.append(token)
            continue
        matched_op = next(
            (op for op in _OPERATORS if text.startswith(op, index)), None
        )
        if matched_op is not None:
            tokens.append(Token("OP", matched_op, line, start_column))
            index += len(matched_op)
            column += len(matched_op)
            continue
        if char in _PUNCTUATION:
            tokens.append(Token("PUNCT", char, line, start_column))
            index += 1
            column += 1
            continue
        raise error(f"unexpected character {char!r}")

    tokens.append(Token("EOF", None, line, column))
    return tokens


def _lex_number(text: str, index: int, line: int, column: int):
    """Lex an int or float literal starting at ``index``."""
    start = index
    start_column = column
    size = len(text)
    if text[index] == "-":
        index += 1
    while index < size and text[index] in _DIGITS:
        index += 1
    is_float = False
    if index < size and text[index] == ".":
        is_float = True
        index += 1
        while index < size and text[index] in _DIGITS:
            index += 1
    if index < size and text[index] in "eE":
        probe = index + 1
        if probe < size and text[probe] in "+-":
            probe += 1
        if probe < size and text[probe] in _DIGITS:
            is_float = True
            index = probe
            while index < size and text[index] in _DIGITS:
                index += 1
    literal = text[start:index]
    try:
        value: object = float(literal) if is_float else int(literal)
    except ValueError as exc:  # pragma: no cover - scanner admits only valid
        raise LexError(
            f"qlang syntax error at {line}:{start_column}: "
            f"bad number {literal!r}"
        ) from exc
    return index, column + (index - start), Token(
        "NUMBER", value, line, start_column
    )


def _lex_string(text: str, index: int, line: int, column: int):
    """Lex a quoted string literal (single or double quotes)."""
    quote = text[index]
    start_line, start_column = line, column
    index += 1
    column += 1
    size = len(text)
    chars: list[str] = []
    while index < size:
        char = text[index]
        if char == quote:
            token = Token("STRING", "".join(chars), start_line, start_column)
            return index + 1, line, column + 1, token
        if char == "\n":
            break
        if char == "\\":
            if index + 1 >= size or text[index + 1] not in _ESCAPES:
                raise LexError(
                    f"qlang syntax error at {line}:{column}: "
                    f"unsupported escape in string literal"
                )
            chars.append(_ESCAPES[text[index + 1]])
            index += 2
            column += 2
            continue
        chars.append(char)
        index += 1
        column += 1
    raise LexError(
        f"qlang syntax error at {start_line}:{start_column}: "
        f"unterminated string literal"
    )
