"""qlang: a tiny declarative query language over the RkNN engine.

One SQL-ish, TVF-style statement per query::

    SELECT * FROM rknn(query=17, k=2, method='eager')
    SELECT * FROM topk_influence(k=2) LIMIT 5
    SELECT * FROM aggregate_nn(group=[3, 8], k=4, agg='max')
    SELECT * FROM rknn(query=17, k=2) WHERE distance < 5.0

The package is deliberately small and dependency-free:

* :mod:`repro.qlang.lexer` -- a hand-written tokenizer;
* :mod:`repro.qlang.qast` -- the typed (frozen dataclass) AST plus the
  canonical formatter, so ``parse(format(ast)) == ast``;
* :mod:`repro.qlang.parser` -- a recursive-descent parser;
* :mod:`repro.qlang.compiler` -- lowers statements into
  :class:`~repro.engine.spec.QuerySpec` values, which the engine plans,
  caches, batches and (on the compact backend) vectorizes unchanged;
* :mod:`repro.qlang.api` -- :func:`execute`, the one-call entry point
  behind every facade's ``Database.query(...)``.

Statements compile to specs; specs run anywhere a spec runs today: the
engine, the ``repro batch`` / ``repro query -e`` CLI, and the serve
protocol's ``query`` op (pass ``statement`` instead of spec fields).
``EXPLAIN SELECT ...`` statements additionally answer with the
compiled plan and the executed span tree (:class:`ExplainResult`).
"""

from repro.qlang.api import (
    ExplainResult,
    build_plan,
    execute,
    explain_spec,
)
from repro.qlang.compiler import (
    CompileError,
    Statement,
    compile_statement,
    compile_statements,
    compile_text,
)
from repro.qlang.parser import ParseError, parse
from repro.qlang.qast import (
    Arg,
    Call,
    Comparison,
    MapValue,
    Script,
    Select,
    format_script,
    format_statement,
)

__all__ = [
    "Arg",
    "Call",
    "Comparison",
    "CompileError",
    "ExplainResult",
    "MapValue",
    "ParseError",
    "Script",
    "Select",
    "Statement",
    "build_plan",
    "compile_statement",
    "compile_statements",
    "compile_text",
    "execute",
    "explain_spec",
    "format_script",
    "format_statement",
    "parse",
]
