"""Public facade for directed networks: :class:`DirectedGraphDatabase`.

The directed extension of the paper (its Section 7 future-work item):
reverse nearest neighbors on graphs with asymmetric distances, e.g.
road maps with one-way streets.  The facade mirrors
:class:`~repro.api.GraphDatabase` for the query types the directed
setting supports (monochromatic RkNN with ``eager`` / ``eager-m`` /
``naive``, forward kNN, materialization with update maintenance)::

    from repro import DirectedGraphDatabase, NodePointSet

    db = DirectedGraphDatabase.from_arcs(
        [(0, 1, 2.0), (1, 0, 5.0), (1, 2, 1.0)],
        points=NodePointSet({10: 0, 11: 2}),
    )
    db.rknn(query=1, k=1)
"""

from __future__ import annotations

import copy
from typing import AbstractSet, Iterable

from repro.core.directed import (
    DirectedView,
    directed_all_nn,
    directed_delete,
    directed_insert,
    directed_knn,
    directed_range_nn,
    directed_rknn,
)
from repro.core.materialize import MaterializedKNN
from repro.core.result import KnnResult, RnnResult, UpdateResult
from repro.errors import QueryError
from repro.graph.digraph import DiGraph
from repro.points.points import NodePointSet
from repro.storage.buffer import BufferManager
from repro.storage.disk import KnnListStore
from repro.storage.disk_directed import DiskDiGraph, weak_bfs_order
from repro.storage.page import DEFAULT_PAGE_SIZE
from repro.storage.stats import CostTracker

_EMPTY: frozenset[int] = frozenset()

#: Query methods implemented for directed networks.
METHODS = ("eager", "eager-m", "naive")

DEFAULT_BUFFER_PAGES = 256


class DirectedGraphDatabase:
    """Disk-based directed graph database answering RkNN queries."""

    #: Engine-visible backend tag (see :func:`repro.engine.planner.backend_of`).
    backend = "disk"

    def __init__(
        self,
        graph: DiGraph,
        points: NodePointSet | None = None,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
    ):
        if points is None:
            points = NodePointSet({})
        for pid, node in points.items():
            if not 0 <= node < graph.num_nodes:
                raise QueryError(f"point {pid} lies on unknown node {node}")
        self.graph = graph
        self.points = points
        self.page_size = page_size
        self.tracker = CostTracker()
        self.buffer = BufferManager(buffer_pages, self.tracker)
        self._order = weak_bfs_order(graph)
        self.disk = DiskDiGraph(
            graph,
            self.buffer,
            page_size=page_size,
            order=self._order,
            point_nodes=frozenset(node for _, node in points.items()),
        )
        self.view = DirectedView(self.disk, points, self.tracker)
        self.materialized: MaterializedKNN | None = None
        #: Update generation (see :class:`~repro.api.GraphDatabase`).
        self.generation = 0

    @classmethod
    def from_arcs(
        cls,
        arcs: Iterable[tuple[int, int, float]],
        points: NodePointSet | None = None,
        **kwargs,
    ) -> "DirectedGraphDatabase":
        """Build a database straight from an arc list."""
        return cls(DiGraph.from_arcs(arcs), points, **kwargs)

    # -- materialization -----------------------------------------------------

    def materialize(self, capacity: int) -> None:
        """Precompute each node's forward K-NN list (directed all-NN)."""
        lists = directed_all_nn(self.view, capacity)
        store = KnnListStore(
            self.graph.num_nodes,
            capacity,
            lists,
            self.buffer,
            page_size=self.page_size,
            order=self._order,
        )
        self.materialized = MaterializedKNN(store)

    # -- serving --------------------------------------------------------------

    def engine(self, **kwargs) -> "QueryEngine":
        """A batch :class:`~repro.engine.engine.QueryEngine` over this
        database (``knn`` / ``rknn`` / ``range`` specs; the directed
        facade has no bichromatic queries)."""
        from repro.engine.engine import QueryEngine

        return QueryEngine(self, **kwargs)

    def query(self, statement):
        """Answer a qlang statement (or spec) on this database.

        See :meth:`repro.api.GraphDatabase.query`; the directed facade
        answers every kind except the bichromatic ones.
        """
        from repro.qlang import execute

        return execute(self, statement)

    def read_clone(self) -> "DirectedGraphDatabase":
        """A read-only session with a private buffer and tracker.

        Shares the serialized adjacency pages of both direction files;
        see :meth:`repro.api.GraphDatabase.read_clone` for the contract
        (read-only use, cold private buffer, zeroed tracker).
        """
        clone = copy.copy(self)
        clone.tracker = CostTracker()
        clone.buffer = BufferManager(self.buffer.capacity_pages, clone.tracker)
        clone.disk = copy.copy(self.disk)
        clone.disk._forward = copy.copy(self.disk._forward)
        clone.disk._forward.buffer = clone.buffer
        clone.disk._backward = copy.copy(self.disk._backward)
        clone.disk._backward.buffer = clone.buffer
        if self.materialized is not None:
            store = copy.copy(self.materialized.store)
            store.buffer = clone.buffer
            clone.materialized = MaterializedKNN(store)
        clone.view = DirectedView(clone.disk, clone.points, clone.tracker)
        return clone

    # -- cost measurement -------------------------------------------------------

    def reset_stats(self) -> None:
        """Zero the counters (the buffer's contents are kept warm)."""
        self.tracker.reset()

    def clear_buffer(self) -> None:
        """Drop every buffered page (cold-start the next query)."""
        self.buffer.clear()

    def _measure(self, func):
        before = self.tracker.snapshot()
        with self.tracker.time_block():
            outcome = func()
        return outcome, self.tracker.diff(before)

    # -- queries --------------------------------------------------------------

    def rknn(
        self,
        query: int,
        k: int = 1,
        method: str = "eager",
        exclude: AbstractSet[int] = _EMPTY,
    ) -> RnnResult:
        """Directed RkNN: points with ``d(p -> q) <= d(p -> p_k(p))``.

        Parameters
        ----------
        query:
            Query node id.
        k:
            Neighborhood size (>= 1).
        method:
            One of :data:`METHODS`; ``"eager-m"`` requires
            :meth:`materialize` first.
        exclude:
            Data point ids hidden for the query's duration.

        Returns
        -------
        RnnResult
            The reverse neighbors (sorted point ids) plus the exact
            counter diff of this call.
        """
        self._check(query, k, method)
        points, diff = self._measure(
            lambda: directed_rknn(
                self.view, query, k, method, self.materialized, exclude
            )
        )
        return RnnResult(tuple(points), diff.io_operations, diff.cpu_seconds, diff)

    def knn(
        self,
        query: int,
        k: int = 1,
        exclude: AbstractSet[int] = _EMPTY,
    ) -> KnnResult:
        """The k nearest points *from* ``query`` (forward distances).

        Parameters
        ----------
        query:
            Query node id.
        k:
            Number of neighbors requested.
        exclude:
            Data point ids hidden for the query's duration.

        Returns
        -------
        KnnResult
            ``(point id, forward distance)`` pairs, ascending.
        """
        neighbors, diff = self._measure(
            lambda: directed_knn(self.view, query, k, exclude)
        )
        return KnnResult(tuple(neighbors), diff.io_operations, diff.cpu_seconds, diff)

    def range_nn(
        self,
        query: int,
        k: int,
        radius: float,
        exclude: AbstractSet[int] = _EMPTY,
    ) -> KnnResult:
        """Forward range-NN from ``query`` with a strict ``radius``.

        Parameters
        ----------
        query:
            Query node id.
        k:
            Maximum number of points returned.
        radius:
            Strict bound on ``d(query -> x)``.
        exclude:
            Data point ids hidden for the query's duration.

        Returns
        -------
        KnnResult
            Up to ``k`` points strictly inside the range, ascending.
        """
        neighbors, diff = self._measure(
            lambda: directed_range_nn(self.view, query, k, radius, exclude)
        )
        return KnnResult(tuple(neighbors), diff.io_operations, diff.cpu_seconds, diff)

    # -- updates ----------------------------------------------------------------

    def insert_point(self, pid: int, node: int) -> UpdateResult:
        """Add a data point, maintaining the materialized lists if any.

        Parameters
        ----------
        pid:
            New point id (must be unused).
        node:
            Node the point resides on.

        Returns
        -------
        UpdateResult
            The number of updated K-NN lists plus the cost record.
        """
        def run() -> int:
            self.points = self.points.with_point(pid, node)
            self.view = DirectedView(self.disk, self.points, self.tracker)
            if self.materialized is not None:
                return directed_insert(self.view, self.materialized, pid, node)
            return 0

        affected, diff = self._measure(run)
        self.generation += 1
        return UpdateResult(affected, diff.io_operations, diff.cpu_seconds, diff)

    def delete_point(self, pid: int) -> UpdateResult:
        """Remove a data point, maintaining the materialized lists if any.

        Parameters
        ----------
        pid:
            Id of the point to remove.

        Returns
        -------
        UpdateResult
            The number of repaired K-NN lists plus the cost record.
        """
        def run() -> int:
            node = self.points.node_of(pid)
            self.points = self.points.without_point(pid)
            self.view = DirectedView(self.disk, self.points, self.tracker)
            if self.materialized is not None:
                return directed_delete(self.view, self.materialized, pid, node)
            return 0

        affected, diff = self._measure(run)
        self.generation += 1
        return UpdateResult(affected, diff.io_operations, diff.cpu_seconds, diff)

    def _check(self, query: int, k: int, method: str) -> None:
        if method not in METHODS:
            raise QueryError(f"unknown method {method!r}; choose one of {METHODS}")
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        if not 0 <= query < self.graph.num_nodes:
            raise QueryError(f"query node {query} out of range")
        if method == "eager-m" and self.materialized is None:
            raise QueryError("method 'eager-m' needs materialize() first")
