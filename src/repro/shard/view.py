"""Stitched query-time views over sharded stores.

The paper's algorithms consume a :class:`~repro.core.network.NetworkView`
(or :class:`~repro.core.directed.DirectedView`); these classes present
the same protocol over a sharded store, so **every algorithm runs
unchanged** and produces results identical to the single-store
database.  What changes is where the work lands: each adjacency read is
charged to the buffer and tracker of the shard owning the node, so one
logical expansion decomposes into per-shard frontiers -- the expansion
enters a shard when the frontier crosses a boundary vertex, runs on
that shard's disk while it stays inside, and leaves through the
boundary table.

The algorithmic counters (heap traffic, nodes visited, probe and
verification counts) accumulate on the facade's global tracker, which
the view exposes as ``tracker``.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import QueryError
from repro.points.points import NodePointSet
from repro.shard.store import ShardedDiGraphStore, ShardedGraphStore
from repro.storage.stats import CostTracker


class ShardedNetworkView:
    """NetworkView-compatible access to a sharded undirected network.

    Restricted networks only: the sharded backend stores data points on
    nodes (the in-memory index of the paper's storage scheme).
    """

    restricted = True

    def __init__(
        self,
        store: ShardedGraphStore,
        points: NodePointSet,
        tracker: CostTracker,
        bounds=None,
    ):
        if not isinstance(points, NodePointSet):
            raise QueryError(
                "the sharded backend serves restricted networks "
                "(NodePointSet); edge-resident points are unsupported"
            )
        self.store = store
        self.points = points
        self.tracker = tracker
        #: Optional :class:`~repro.oracle.bounds.LowerBoundProvider`
        #: consulted by the expansion loops (answer-preserving pruning).
        self.bounds = bounds

    # -- graph ---------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Total node count across every shard."""
        return self.store.num_nodes

    def neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        """Stitched adjacency of ``node``, charged to the owning shard."""
        return self.store.neighbors(node)

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)`` via a charged read of ``u``'s list."""
        for nbr, weight in self.neighbors(u):
            if nbr == v:
                return weight
        raise QueryError(f"no edge between {u} and {v}")

    # -- points ---------------------------------------------------------------

    @property
    def num_points(self) -> int:
        """Number of data points."""
        return len(self.points)

    def point_ids(self) -> Iterable[int]:
        """Ids of every data point."""
        return self.points.ids()

    def point_at(self, node: int) -> int | None:
        """Point residing on ``node``, if any (free index look-up)."""
        return self.points.point_at(node)

    def node_of(self, pid: int) -> int:
        """Node holding point ``pid``."""
        return self.points.node_of(pid)


class ShardedDirectedView:
    """DirectedView-compatible access to a sharded directed network."""

    def __init__(
        self,
        store: ShardedDiGraphStore,
        points: NodePointSet,
        tracker: CostTracker,
    ):
        self.store = store
        self.points = points
        self.tracker = tracker

    @property
    def num_nodes(self) -> int:
        """Total node count across every shard."""
        return self.store.num_nodes

    def out_neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        """Stitched outgoing arcs, charged to the owning shard."""
        return self.store.out_neighbors(node)

    def in_neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        """Stitched incoming arcs, charged to the owning shard."""
        return self.store.in_neighbors(node)

    def point_at(self, node: int) -> int | None:
        """Point residing on ``node``, if any (free index look-up)."""
        return self.points.point_at(node)

    def node_of(self, pid: int) -> int:
        """Node holding point ``pid``."""
        return self.points.node_of(pid)
