"""Sharded database facades: the paper's queries over K storage shards.

:class:`ShardedDatabase` mirrors the restricted-network surface of
:class:`~repro.api.GraphDatabase` -- kNN, range-NN, monochromatic /
continuous / bichromatic RkNN, materialization, point updates, batch
serving -- over a :class:`~repro.shard.store.ShardedGraphStore`.
Results are **identical** to the single-store database (the algorithms
are reused verbatim over the stitched view); what changes is the
storage topology: every adjacency read is served, buffered and charged
by the shard owning the node.

Cost accounting follows the database convention: every query returns
the merged counter diff across the global tracker (CPU, heap traffic,
probes) and all per-shard trackers (page I/O), and the merged I/O is
folded back into ``db.tracker`` so the existing aggregate accounting
keeps working.  The per-shard decomposition stays available through
:meth:`ShardedDatabase.shard_counters`.

:class:`ShardedDirectedDatabase` is the directed counterpart
(:class:`~repro.api_directed.DirectedGraphDatabase` surface).
"""

from __future__ import annotations

import copy
from typing import AbstractSet, Iterable, Sequence

from repro.core.bichromatic import (
    bichromatic_eager,
    bichromatic_eager_m,
    bichromatic_lazy,
)
from repro.core.continuous import validate_route
from repro.core.directed import (
    directed_all_nn,
    directed_delete,
    directed_insert,
    directed_knn,
    directed_range_nn,
    directed_rknn,
)
from repro.core.eager import eager_rknn, eager_rknn_route
from repro.core.eager_m import eager_m_rknn, eager_m_rknn_route
from repro.core.lazy import lazy_rknn, lazy_rknn_route
from repro.core.lazy_ep import lazy_ep_rknn, lazy_ep_rknn_route
from repro.core.materialize import MaterializedKNN
from repro.core.nn import knn as restricted_knn
from repro.core.nn import range_nn as restricted_range_nn
from repro.core.result import KnnResult, OracleResult, RnnResult, UpdateResult
from repro.errors import QueryError
from repro.oracle import (
    DEFAULT_LANDMARKS,
    DistanceOracle,
    LandmarkStore,
    resolve_oracle_source,
    select_landmarks,
    store_landmark_distances,
)
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.points.points import NodePointSet
from repro.shard.store import (
    DEFAULT_BUFFER_PAGES,
    ShardedDiGraphStore,
    ShardedGraphStore,
)
from repro.shard.view import ShardedDirectedView, ShardedNetworkView
from repro.storage.buffer import BufferManager
from repro.storage.disk import KnnListStore
from repro.storage.page import DEFAULT_PAGE_SIZE
from repro.storage.stats import CostTracker

_EMPTY: frozenset[int] = frozenset()

#: RkNN methods served by the sharded undirected facade.
METHODS = ("eager", "lazy", "eager-m", "lazy-ep")

#: RkNN methods served by the sharded directed facade.
DIRECTED_METHODS = ("eager", "eager-m", "naive")


class _ShardedMeasureMixin:
    """Counter plumbing shared by both sharded facades."""

    #: Engine-visible backend tag (see :func:`repro.engine.planner.backend_of`).
    backend = "sharded"

    def _all_trackers(self) -> list[CostTracker]:
        return [self.tracker, *self.store.trackers()]

    def _measure(self, func):
        """Run ``func``, returning its outcome and the merged counter diff.

        Snapshots the global tracker and every shard tracker, times the
        call on the global tracker, then merges the per-tracker diffs
        into one cost record.  The shard-side I/O diff is folded back
        into the global tracker so ``db.tracker`` stays the aggregate
        of all work, while the per-shard trackers keep the
        decomposition.
        """
        trackers = self._all_trackers()
        before = [tracker.snapshot() for tracker in trackers]
        with self.tracker.time_block():
            outcome = func()
        diffs = [
            tracker.diff(snapshot)
            for tracker, snapshot in zip(trackers, before)
        ]
        merged = CostTracker.merged(diffs)
        for shard_diff in diffs[1:]:
            self.tracker.merge(shard_diff)
        return outcome, merged

    def _folded(self, func):
        """Run ``func`` folding shard counter diffs into the global tracker.

        For work outside the query protocol (materialization, route
        validation) that still reads shard pages: keeps ``db.tracker``
        the aggregate of all shard work without producing a per-call
        cost record.
        """
        trackers = self.store.trackers()
        before = [tracker.snapshot() for tracker in trackers]
        outcome = func()
        for tracker, snapshot in zip(trackers, before):
            self.tracker.merge(tracker.diff(snapshot))
        return outcome

    # -- shard introspection ------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Number of storage shards ``K``."""
        return self.store.num_shards

    def shard_of(self, node: int) -> int:
        """Shard owning ``node`` (free index look-up)."""
        return self.store.shard_of(node)

    def shard_counters(self) -> list[CostTracker]:
        """Cumulative per-shard counter snapshots (I/O decomposition).

        Returns
        -------
        list of CostTracker
            One immutable snapshot per shard, in shard order.  Diff two
            calls around a workload to attribute its I/O to shards.
        """
        return self.store.shard_counters()

    def merge_session_shards(self, session) -> None:
        """Fold a worker session's per-shard counters into this database.

        Called by the batch engine after a parallel chunk completes, so
        the per-shard I/O decomposition of work done on
        :meth:`read_clone` sessions is preserved in the parent's shard
        trackers (the aggregate is merged into ``tracker`` separately,
        through the per-query cost records).

        Parameters
        ----------
        session:
            A clone produced by this database's ``read_clone``.
        """
        for mine, theirs in zip(self.store.trackers(), session.store.trackers()):
            mine.merge(theirs)

    # -- cost measurement ---------------------------------------------------

    def reset_stats(self) -> None:
        """Zero the global tracker and every per-shard tracker."""
        self.tracker.reset()
        self.store.reset_trackers()

    def clear_buffer(self) -> None:
        """Drop every shard's buffered pages (cold-start the next query)."""
        self.store.clear_buffers()


class ShardedDatabase(_ShardedMeasureMixin):
    """Sharded disk-based graph database answering (reverse) NN queries.

    Parameters
    ----------
    graph:
        The network.  It is cut into ``num_shards`` edge-disjoint
        partitions, each paged to its own simulated disk.
    points:
        The data set P as a :class:`~repro.points.points.NodePointSet`
        (the sharded backend serves restricted networks).  ``None``
        creates an empty set.
    num_shards:
        Shard count ``K``; ``K = 1`` degenerates to the single-store
        layout.
    page_size / buffer_pages:
        Storage parameters.  ``buffer_pages`` is the per-shard LRU
        budget (each shard models an independent storage host).
    node_order:
        Cut heuristic and per-shard packing order: ``"bfs"`` (default)
        or ``"hilbert"`` (requires coordinates).
    """

    def __init__(
        self,
        graph: Graph,
        points: NodePointSet | None = None,
        *,
        num_shards: int = 4,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        node_order: str = "bfs",
    ):
        if points is None:
            points = NodePointSet({})
        if not isinstance(points, NodePointSet):
            raise QueryError(
                "the sharded backend serves restricted networks "
                "(NodePointSet); edge-resident points are unsupported"
            )
        points.validate(graph)
        self.graph = graph
        self.points = points
        self.page_size = page_size
        self.buffer_pages = buffer_pages
        self.tracker = CostTracker()
        self.store = ShardedGraphStore(
            graph,
            num_shards=num_shards,
            order=node_order,
            page_size=page_size,
            buffer_pages=buffer_pages,
            point_nodes=frozenset(node for _, node in points.items()),
        )
        self.view = ShardedNetworkView(self.store, points, self.tracker)
        #: Side file buffer for materialized K-NN lists (charged to the
        #: global tracker; adjacency I/O is what decomposes by shard).
        self._side_buffer = BufferManager(buffer_pages, self.tracker)
        self.materialized: MaterializedKNN | None = None
        #: Landmark distance oracle (see :meth:`build_oracle`); ``None``
        #: until built or opened.
        self.oracle: DistanceOracle | None = None
        #: Persisted label file backing :attr:`oracle` (side-buffer pages).
        self.oracle_store: LandmarkStore | None = None
        self._ref_points: NodePointSet | None = None
        self._ref_view: ShardedNetworkView | None = None
        self._ref_materialized: MaterializedKNN | None = None
        #: Update generation: bumped by every point insertion/deletion
        #: (the query engine keys its result cache on this counter).
        self.generation = 0

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int, float]],
        points: NodePointSet | None = None,
        **kwargs,
    ) -> "ShardedDatabase":
        """Build a sharded database straight from an edge list.

        Parameters
        ----------
        edges:
            ``(u, v, weight)`` triples.
        points:
            Optional :class:`~repro.points.points.NodePointSet`.
        **kwargs:
            Forwarded to the constructor (``num_shards``, ...).

        Returns
        -------
        ShardedDatabase
        """
        return cls(Graph.from_edges(edges), points, **kwargs)

    # -- properties ---------------------------------------------------------

    @property
    def restricted(self) -> bool:
        """Always true: the sharded backend stores points on nodes."""
        return True

    @property
    def reference_points(self) -> NodePointSet | None:
        """The attached bichromatic reference set Q (``None`` before
        :meth:`attach_reference`)."""
        return self._ref_points

    @property
    def disk(self):
        """The sharded store, exposed under the facade's disk slot.

        The engine's admission planner only needs ``disk.page_of``;
        the store's shard-major page ranks make the planner group
        queries by shard first, page second.
        """
        return self.store

    # -- materialization ----------------------------------------------------

    def materialize(self, capacity: int) -> None:
        """Precompute the K-NN lists of every node (paper Section 4.1).

        Parameters
        ----------
        capacity:
            The paper's ``K``: the largest ``k`` any future ``eager-m``
            query may use (data-distributed queries that exclude their
            own point effectively need ``K >= k + 1``).
        """
        self.materialized = self._folded(lambda: MaterializedKNN.build(
            self.view,
            capacity,
            [(node, pid, 0.0) for pid, node in self.points.items()],
            self._side_buffer,
            page_size=self.page_size,
            order=self.store.global_order(),
        ))

    def materialize_reference(self, capacity: int) -> None:
        """Materialize K-NN lists over the attached reference set Q.

        Parameters
        ----------
        capacity:
            List capacity ``K`` for the reference materialization
            (required by bichromatic ``eager-m``).
        """
        if self._ref_view is None or self._ref_points is None:
            raise QueryError("attach_reference() before materialize_reference()")
        self._ref_materialized = self._folded(lambda: MaterializedKNN.build(
            self._ref_view,
            capacity,
            [(node, pid, 0.0) for pid, node in self._ref_points.items()],
            self._side_buffer,
            page_size=self.page_size,
            order=self.store.global_order(),
        ))

    # -- bichromatic reference set ------------------------------------------

    def attach_reference(self, reference: NodePointSet) -> None:
        """Attach the reference set Q for bichromatic queries.

        Parameters
        ----------
        reference:
            A :class:`~repro.points.points.NodePointSet`; the facade's
            own points act as P.  Swapping Q bumps the generation so
            cached bichromatic answers invalidate.
        """
        if not isinstance(reference, NodePointSet):
            raise QueryError("the sharded backend takes node-resident references")
        reference.validate(self.graph)
        self._ref_points = reference
        self._ref_view = ShardedNetworkView(
            self.store, reference, self.tracker, bounds=self.oracle
        )
        self._ref_materialized = None
        self.generation += 1

    # -- landmark distance oracle -------------------------------------------

    def build_oracle(
        self,
        count: int = DEFAULT_LANDMARKS,
        *,
        seed: int = 0,
        strategy: str = "farthest",
    ) -> OracleResult:
        """Build and attach an ALT landmark distance oracle (charged).

        One single-source Dijkstra per landmark runs over the stitched
        store: while the frontier stays inside a shard the reads are
        charged to that shard's buffer, and it leaves through the
        boundary-vertex tables -- the same per-shard decomposition as
        query expansions.  The label table persists as a paged
        :class:`~repro.oracle.store.LandmarkStore` on the side-file
        buffer (like the materialized K-NN lists), and the oracle
        attaches to every view for answer-preserving pruning.

        Parameters
        ----------
        count:
            Number of landmarks ``L``.
        seed:
            Seeds the first landmark pick.
        strategy:
            ``"farthest"`` (default) or ``"random"``.

        Returns
        -------
        OracleResult
            The selected landmarks plus the merged per-shard cost diff.
        """

        def run():
            landmarks, tables = select_landmarks(
                lambda source: store_landmark_distances(
                    self.store, self.graph.num_nodes, source
                ),
                self.graph.num_nodes,
                count,
                seed=seed,
                strategy=strategy,
            )
            store = LandmarkStore(
                self.graph.num_nodes, landmarks, tables, self._side_buffer,
                page_size=self.page_size, order=self.store.global_order(),
            )
            return store, DistanceOracle(landmarks, tables)

        (store, oracle), diff = self._measure(run)
        self.oracle_store = store
        self.oracle = oracle
        self._attach_bounds(oracle)
        return OracleResult(
            oracle.landmarks, oracle.storage_entries, store.num_pages,
            diff.io_operations, diff.cpu_seconds, diff,
        )

    def open_oracle(self, source) -> OracleResult:
        """Attach an oracle built elsewhere (store or oracle object).

        Parameters
        ----------
        source:
            A persisted :class:`~repro.oracle.store.LandmarkStore`
            (decoded uncharged) or a ready
            :class:`~repro.oracle.oracle.DistanceOracle` -- e.g. one
            built by the single disk store over the same graph.

        Returns
        -------
        OracleResult
            The attached landmarks (opening charges no I/O).
        """
        oracle, store, pages = resolve_oracle_source(
            source, self.graph.num_nodes
        )
        self.oracle_store = store
        self.oracle = oracle
        self._attach_bounds(oracle)
        return OracleResult(oracle.landmarks, oracle.storage_entries, pages, 0, 0.0)

    def _attach_bounds(self, bounds) -> None:
        self.view.bounds = bounds
        if self._ref_view is not None:
            self._ref_view.bounds = bounds

    # -- serving ------------------------------------------------------------

    def engine(self, **kwargs) -> "QueryEngine":
        """A batch :class:`~repro.engine.engine.QueryEngine` over this
        database.

        Parameters
        ----------
        **kwargs:
            Forwarded to the engine constructor (``cache_entries``,
            ``calibrator``, ``plan``, ``shard_parallel``).  The engine
            detects the sharded backend and routes each query to its
            home shard: the planner orders batches shard-major and the
            worker pool executes distinct shards concurrently.

        Returns
        -------
        QueryEngine
        """
        from repro.engine.engine import QueryEngine

        return QueryEngine(self, **kwargs)

    def query(self, statement):
        """Answer a qlang statement (or spec) on this database.

        See :meth:`repro.api.GraphDatabase.query`; batches compiled
        from scripts are routed shard-major by the engine's planner.
        """
        from repro.qlang import execute

        return execute(self, statement)

    def read_clone(self) -> "ShardedDatabase":
        """A read-only session over the same serialized shard pages.

        Returns
        -------
        ShardedDatabase
            A clone sharing every shard's page images but owning
            private cold buffers and zeroed trackers (per shard and
            global), so concurrent read-only sessions never race on
            LRU state or counters.  Running updates through a clone is
            unsupported.
        """
        clone = copy.copy(self)
        clone.tracker = CostTracker()
        clone.store = self.store.read_clone()
        clone._side_buffer = BufferManager(
            self._side_buffer.capacity_pages, clone.tracker
        )
        if self.materialized is not None:
            store = copy.copy(self.materialized.store)
            store.buffer = clone._side_buffer
            clone.materialized = MaterializedKNN(store)
        clone.view = ShardedNetworkView(
            clone.store, clone.points, clone.tracker, bounds=self.oracle
        )
        if self._ref_points is not None:
            clone._ref_view = ShardedNetworkView(
                clone.store, self._ref_points, clone.tracker, bounds=self.oracle
            )
            if self._ref_materialized is not None:
                ref_store = copy.copy(self._ref_materialized.store)
                ref_store.buffer = clone._side_buffer
                clone._ref_materialized = MaterializedKNN(ref_store)
        return clone

    # -- monochromatic RkNN -------------------------------------------------

    def rknn(
        self,
        query: int,
        k: int = 1,
        method: str = "eager",
        exclude: AbstractSet[int] = _EMPTY,
    ) -> RnnResult:
        """Reverse k-nearest-neighbor query (paper Sections 3-5).

        Parameters
        ----------
        query:
            Query node id.
        k:
            Neighborhood size (>= 1).
        method:
            One of :data:`METHODS`; ``eager-m`` needs
            :meth:`materialize` first.
        exclude:
            Point ids hidden for the query's duration.

        Returns
        -------
        RnnResult
            The reverse neighbors plus the merged per-shard cost diff.
        """
        self._check_query(query, k, method)
        points, diff = self._measure(
            lambda: self._run_rknn([query], k, method, exclude, route=False)
        )
        return RnnResult(tuple(points), diff.io_operations, diff.cpu_seconds, diff)

    def continuous_rknn(
        self,
        route: Sequence[int],
        k: int = 1,
        method: str = "eager",
        exclude: AbstractSet[int] = _EMPTY,
    ) -> RnnResult:
        """Continuous RkNN along a route of nodes (Section 5.1).

        Parameters
        ----------
        route:
            A walk: consecutive nodes must share an edge.
        k / method / exclude:
            As in :meth:`rknn`.

        Returns
        -------
        RnnResult
        """
        self._folded(lambda: validate_route(self.view, route))
        self._check_query(route[0], k, method)
        points, diff = self._measure(
            lambda: self._run_rknn(list(route), k, method, exclude, route=True)
        )
        return RnnResult(tuple(points), diff.io_operations, diff.cpu_seconds, diff)

    def _run_rknn(self, sources, k, method, exclude, *, route):
        if method == "eager":
            runner = eager_rknn_route if route else eager_rknn
            return runner(self.view, sources if route else sources[0], k, exclude)
        if method == "lazy":
            runner = lazy_rknn_route if route else lazy_rknn
            return runner(self.view, sources if route else sources[0], k, exclude)
        if method == "lazy-ep":
            runner = lazy_ep_rknn_route if route else lazy_ep_rknn
            return runner(self.view, sources if route else sources[0], k, exclude)
        mat = self._require_mat()
        runner = eager_m_rknn_route if route else eager_m_rknn
        return runner(self.view, mat, sources if route else sources[0], k, exclude)

    # -- bichromatic RkNN ---------------------------------------------------

    def bichromatic_rknn(
        self,
        query: int,
        k: int = 1,
        method: str = "eager",
        exclude: AbstractSet[int] = _EMPTY,
    ) -> RnnResult:
        """Bichromatic RkNN against the attached reference set.

        Parameters
        ----------
        query:
            Query node id.
        k:
            Neighborhood size among *reference* points.
        method:
            ``"eager"``, ``"lazy"`` or ``"eager-m"`` (the latter needs
            :meth:`materialize_reference`).
        exclude:
            Reference point ids hidden for the query's duration.

        Returns
        -------
        RnnResult
            Database points that keep the query among their k nearest
            reference points.
        """
        if self._ref_view is None:
            raise QueryError("attach_reference() before bichromatic queries")
        self._check_query(query, k, method)

        def run() -> list[int]:
            if method == "eager":
                return bichromatic_eager(self.view, self._ref_view, query, k, exclude)
            if method == "lazy":
                return bichromatic_lazy(self.view, self._ref_view, query, k, exclude)
            if method == "eager-m":
                if self._ref_materialized is None:
                    raise QueryError(
                        "materialize_reference() before bichromatic eager-m"
                    )
                return bichromatic_eager_m(
                    self.view, self._ref_view, self._ref_materialized,
                    query, k, exclude,
                )
            raise QueryError(
                "bichromatic queries support methods 'eager', 'lazy', 'eager-m'"
            )

        points, diff = self._measure(run)
        return RnnResult(tuple(points), diff.io_operations, diff.cpu_seconds, diff)

    # -- plain NN queries ---------------------------------------------------

    def knn(
        self,
        query: int,
        k: int = 1,
        exclude: AbstractSet[int] = _EMPTY,
    ) -> KnnResult:
        """The k nearest data points of a node.

        Parameters
        ----------
        query:
            Query node id.
        k:
            Number of neighbors requested.
        exclude:
            Point ids hidden for the query's duration.

        Returns
        -------
        KnnResult
            ``(point id, network distance)`` pairs in ascending order.
        """
        def run() -> list[tuple[int, float]]:
            if not isinstance(query, int):
                raise QueryError("the sharded backend takes node-id queries")
            return restricted_knn(self.view, query, k, exclude)

        neighbors, diff = self._measure(run)
        return KnnResult(tuple(neighbors), diff.io_operations, diff.cpu_seconds, diff)

    def range_nn(
        self,
        query: int,
        k: int,
        radius: float,
        exclude: AbstractSet[int] = _EMPTY,
    ) -> KnnResult:
        """``range-NN(n, k, e)``: k nearest points strictly within ``radius``.

        Parameters
        ----------
        query:
            Query node id.
        k:
            Maximum number of points returned.
        radius:
            Strict distance bound ``e``.
        exclude:
            Point ids hidden for the query's duration.

        Returns
        -------
        KnnResult
        """
        neighbors, diff = self._measure(
            lambda: restricted_range_nn(self.view, query, k, radius, exclude)
        )
        return KnnResult(tuple(neighbors), diff.io_operations, diff.cpu_seconds, diff)

    # -- updates ------------------------------------------------------------

    def insert_point(self, pid: int, node: int) -> UpdateResult:
        """Add a data point, maintaining the materialized lists if any.

        Parameters
        ----------
        pid:
            New point id (must be unused).
        node:
            Node the point resides on.

        Returns
        -------
        UpdateResult
            Number of updated K-NN lists plus the cost record.
        """
        def run() -> int:
            if not isinstance(node, int):
                raise QueryError("the sharded backend takes node-id locations")
            self.points = self.points.with_point(pid, node)
            self._rebuild_view()
            if self.materialized is not None:
                return self.materialized.insert(self.view, pid, [(node, 0.0)])
            return 0

        affected, diff = self._measure(run)
        self.generation += 1
        return UpdateResult(affected, diff.io_operations, diff.cpu_seconds, diff)

    def delete_point(self, pid: int) -> UpdateResult:
        """Remove a data point, maintaining the materialized lists if any.

        Parameters
        ----------
        pid:
            Id of the point to remove.

        Returns
        -------
        UpdateResult
        """
        def run() -> int:
            node = self.points.node_of(pid)
            self.points = self.points.without_point(pid)
            self._rebuild_view()
            if self.materialized is not None:
                return self.materialized.delete(self.view, pid, [(node, 0.0)])
            return 0

        affected, diff = self._measure(run)
        self.generation += 1
        return UpdateResult(affected, diff.io_operations, diff.cpu_seconds, diff)

    def _rebuild_view(self) -> None:
        self.view = ShardedNetworkView(
            self.store, self.points, self.tracker, bounds=self.oracle
        )

    # -- validation helpers -------------------------------------------------

    def _require_mat(self) -> MaterializedKNN:
        if self.materialized is None:
            raise QueryError("method 'eager-m' needs materialize() first")
        return self.materialized

    def _check_query(self, query: int, k: int, method: str) -> None:
        if method not in METHODS:
            raise QueryError(f"unknown method {method!r}; choose one of {METHODS}")
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        if not isinstance(query, int):
            raise QueryError("the sharded backend takes node-id queries")
        if not 0 <= query < self.graph.num_nodes:
            raise QueryError(f"query node {query} out of range")


class ShardedDirectedDatabase(_ShardedMeasureMixin):
    """Sharded disk-based directed graph database answering RkNN queries.

    Mirrors :class:`~repro.api_directed.DirectedGraphDatabase` over a
    :class:`~repro.shard.store.ShardedDiGraphStore`: backward
    expansions and forward probes both stitch across shard boundaries
    through the per-direction boundary tables.
    """

    def __init__(
        self,
        graph: DiGraph,
        points: NodePointSet | None = None,
        *,
        num_shards: int = 4,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
    ):
        if points is None:
            points = NodePointSet({})
        for pid, node in points.items():
            if not 0 <= node < graph.num_nodes:
                raise QueryError(f"point {pid} lies on unknown node {node}")
        self.graph = graph
        self.points = points
        self.page_size = page_size
        self.buffer_pages = buffer_pages
        self.tracker = CostTracker()
        self.store = ShardedDiGraphStore(
            graph,
            num_shards=num_shards,
            page_size=page_size,
            buffer_pages=buffer_pages,
            point_nodes=frozenset(node for _, node in points.items()),
        )
        self.view = ShardedDirectedView(self.store, points, self.tracker)
        self._side_buffer = BufferManager(buffer_pages, self.tracker)
        self.materialized: MaterializedKNN | None = None
        #: Update generation (see :class:`ShardedDatabase`).
        self.generation = 0

    @classmethod
    def from_arcs(
        cls,
        arcs: Iterable[tuple[int, int, float]],
        points: NodePointSet | None = None,
        **kwargs,
    ) -> "ShardedDirectedDatabase":
        """Build a sharded directed database straight from an arc list.

        Parameters
        ----------
        arcs:
            ``(tail, head, weight)`` triples.
        points:
            Optional :class:`~repro.points.points.NodePointSet`.
        **kwargs:
            Forwarded to the constructor (``num_shards``, ...).

        Returns
        -------
        ShardedDirectedDatabase
        """
        return cls(DiGraph.from_arcs(arcs), points, **kwargs)

    @property
    def disk(self):
        """The sharded store (planner access to shard-major page ranks)."""
        return self.store

    # -- materialization ----------------------------------------------------

    def materialize(self, capacity: int) -> None:
        """Precompute each node's forward K-NN list (directed all-NN).

        Parameters
        ----------
        capacity:
            List capacity ``K`` -- the largest ``k`` served by
            ``eager-m``.
        """
        lists = self._folded(lambda: directed_all_nn(self.view, capacity))
        store = KnnListStore(
            self.graph.num_nodes,
            capacity,
            lists,
            self._side_buffer,
            page_size=self.page_size,
            order=self.store.global_order(),
        )
        self.materialized = MaterializedKNN(store)

    # -- serving ------------------------------------------------------------

    def engine(self, **kwargs) -> "QueryEngine":
        """A batch :class:`~repro.engine.engine.QueryEngine` over this
        database (``knn`` / ``rknn`` / ``range`` specs).

        Returns
        -------
        QueryEngine
        """
        from repro.engine.engine import QueryEngine

        return QueryEngine(self, **kwargs)

    def query(self, statement):
        """Answer a qlang statement (or spec) on this database.

        See :meth:`repro.api.GraphDatabase.query`; the directed facade
        answers every kind except the bichromatic ones.
        """
        from repro.qlang import execute

        return execute(self, statement)

    def read_clone(self) -> "ShardedDirectedDatabase":
        """A read-only session with private per-shard buffers and trackers.

        Returns
        -------
        ShardedDirectedDatabase
        """
        clone = copy.copy(self)
        clone.tracker = CostTracker()
        clone.store = self.store.read_clone()
        clone._side_buffer = BufferManager(
            self._side_buffer.capacity_pages, clone.tracker
        )
        if self.materialized is not None:
            store = copy.copy(self.materialized.store)
            store.buffer = clone._side_buffer
            clone.materialized = MaterializedKNN(store)
        clone.view = ShardedDirectedView(clone.store, clone.points, clone.tracker)
        return clone

    # -- queries ------------------------------------------------------------

    def rknn(
        self,
        query: int,
        k: int = 1,
        method: str = "eager",
        exclude: AbstractSet[int] = _EMPTY,
    ) -> RnnResult:
        """Directed RkNN: points with ``d(p -> q) <= d(p -> p_k(p))``.

        Parameters
        ----------
        query:
            Query node id.
        k:
            Neighborhood size (>= 1).
        method:
            One of :data:`DIRECTED_METHODS`.
        exclude:
            Point ids hidden for the query's duration.

        Returns
        -------
        RnnResult
        """
        self._check(query, k, method)
        points, diff = self._measure(
            lambda: directed_rknn(
                self.view, query, k, method, self.materialized, exclude
            )
        )
        return RnnResult(tuple(points), diff.io_operations, diff.cpu_seconds, diff)

    def knn(
        self,
        query: int,
        k: int = 1,
        exclude: AbstractSet[int] = _EMPTY,
    ) -> KnnResult:
        """The k nearest points *from* ``query`` (forward distances).

        Parameters
        ----------
        query:
            Query node id.
        k:
            Number of neighbors requested.
        exclude:
            Point ids hidden for the query's duration.

        Returns
        -------
        KnnResult
        """
        neighbors, diff = self._measure(
            lambda: directed_knn(self.view, query, k, exclude)
        )
        return KnnResult(tuple(neighbors), diff.io_operations, diff.cpu_seconds, diff)

    def range_nn(
        self,
        query: int,
        k: int,
        radius: float,
        exclude: AbstractSet[int] = _EMPTY,
    ) -> KnnResult:
        """Forward range-NN from ``query`` with a strict ``radius``.

        Parameters
        ----------
        query:
            Query node id.
        k:
            Maximum number of points returned.
        radius:
            Strict bound on ``d(query -> x)``.
        exclude:
            Point ids hidden for the query's duration.

        Returns
        -------
        KnnResult
        """
        neighbors, diff = self._measure(
            lambda: directed_range_nn(self.view, query, k, radius, exclude)
        )
        return KnnResult(tuple(neighbors), diff.io_operations, diff.cpu_seconds, diff)

    # -- updates ------------------------------------------------------------

    def insert_point(self, pid: int, node: int) -> UpdateResult:
        """Add a data point, maintaining the materialized lists if any.

        Parameters
        ----------
        pid:
            New point id (must be unused).
        node:
            Node the point resides on.

        Returns
        -------
        UpdateResult
            The number of updated K-NN lists plus the cost record.
        """
        def run() -> int:
            self.points = self.points.with_point(pid, node)
            self.view = ShardedDirectedView(self.store, self.points, self.tracker)
            if self.materialized is not None:
                return directed_insert(self.view, self.materialized, pid, node)
            return 0

        affected, diff = self._measure(run)
        self.generation += 1
        return UpdateResult(affected, diff.io_operations, diff.cpu_seconds, diff)

    def delete_point(self, pid: int) -> UpdateResult:
        """Remove a data point, maintaining the materialized lists if any.

        Parameters
        ----------
        pid:
            Id of the point to remove.

        Returns
        -------
        UpdateResult
            The number of repaired K-NN lists plus the cost record.
        """
        def run() -> int:
            node = self.points.node_of(pid)
            self.points = self.points.without_point(pid)
            self.view = ShardedDirectedView(self.store, self.points, self.tracker)
            if self.materialized is not None:
                return directed_delete(self.view, self.materialized, pid, node)
            return 0

        affected, diff = self._measure(run)
        self.generation += 1
        return UpdateResult(affected, diff.io_operations, diff.cpu_seconds, diff)

    def _check(self, query: int, k: int, method: str) -> None:
        if method not in DIRECTED_METHODS:
            raise QueryError(
                f"unknown method {method!r}; choose one of {DIRECTED_METHODS}"
            )
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        if not isinstance(query, int):
            raise QueryError("directed networks take node-id queries")
        if not 0 <= query < self.graph.num_nodes:
            raise QueryError(f"query node {query} out of range")
        if method == "eager-m" and self.materialized is None:
            raise QueryError("method 'eager-m' needs materialize() first")
