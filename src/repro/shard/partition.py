"""Cutting a network into edge-disjoint shards.

A shard plan assigns every node to exactly one of ``K`` shards and
classifies every edge as *intra-shard* (both endpoints in the same
shard; stored in that shard's disk file) or *cut* (endpoints in two
shards; kept out of every disk file and served from the boundary-vertex
table of :mod:`repro.shard.store`).  Each edge therefore belongs to
exactly one store -- the partitioning is edge-disjoint.

The cut heuristic reuses the page-packing orders of
:mod:`repro.graph.partition`: a BFS or Hilbert order places
topologically (or spatially) close nodes next to each other, so slicing
the order into ``K`` contiguous runs yields shards whose internal
connectivity is high and whose cut is small -- the same locality
argument the paper makes for page packing, one level up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GraphError
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.graph.partition import bfs_order, hilbert_order
from repro.storage.disk_directed import weak_bfs_order

#: Cut heuristics accepted by :func:`cut_graph`.
ORDERS = ("bfs", "hilbert")


@dataclass(frozen=True)
class ShardPlan:
    """An edge-disjoint K-way partition of a network.

    Attributes
    ----------
    num_shards:
        Number of shards ``K`` (>= 1).
    assignment:
        ``assignment[node]`` is the shard owning ``node``.
    shard_nodes:
        Per shard, its nodes in packing order (a contiguous slice of
        the global node order, so the per-shard order is also the
        shard's page-packing order).
    cut_edges:
        Every edge whose endpoints live in different shards, as
        ``(u, v, weight)``.  For undirected graphs edges are canonical
        (``u < v``); for directed graphs each arc keeps its direction.
    """

    num_shards: int
    assignment: tuple[int, ...]
    shard_nodes: tuple[tuple[int, ...], ...]
    cut_edges: tuple[tuple[int, int, float], ...]

    @property
    def num_nodes(self) -> int:
        """Total node count across every shard."""
        return len(self.assignment)

    @property
    def num_cut_edges(self) -> int:
        """Number of edges crossing shard boundaries."""
        return len(self.cut_edges)

    def shard_of(self, node: int) -> int:
        """Shard owning ``node``."""
        return self.assignment[node]

    def boundary_nodes(self) -> frozenset[int]:
        """Nodes incident to at least one cut edge."""
        nodes: set[int] = set()
        for u, v, _ in self.cut_edges:
            nodes.add(u)
            nodes.add(v)
        return frozenset(nodes)


def _contiguous_slices(order: list[int], num_shards: int) -> list[list[int]]:
    """Split a node order into ``num_shards`` contiguous, near-equal runs."""
    size, remainder = divmod(len(order), num_shards)
    slices = []
    start = 0
    for i in range(num_shards):
        end = start + size + (1 if i < remainder else 0)
        slices.append(order[start:end])
        start = end
    return slices


def _check_shard_count(num_shards: int, num_nodes: int) -> None:
    if num_shards < 1:
        raise GraphError(f"need at least one shard, got {num_shards}")
    if num_shards > num_nodes:
        raise GraphError(
            f"cannot cut {num_nodes} nodes into {num_shards} shards"
        )


def _plan_from_slices(
    slices: list[list[int]],
    num_nodes: int,
    edges,
) -> ShardPlan:
    assignment = [-1] * num_nodes
    for shard_id, nodes in enumerate(slices):
        for node in nodes:
            assignment[node] = shard_id
    cut = tuple(
        (u, v, w) for u, v, w in edges if assignment[u] != assignment[v]
    )
    return ShardPlan(
        num_shards=len(slices),
        assignment=tuple(assignment),
        shard_nodes=tuple(tuple(nodes) for nodes in slices),
        cut_edges=cut,
    )


def cut_graph(graph: Graph, num_shards: int, order: str = "bfs") -> ShardPlan:
    """Cut an undirected graph into ``num_shards`` edge-disjoint shards.

    Parameters
    ----------
    graph:
        The network to partition.
    num_shards:
        Desired shard count ``K`` (``1 <= K <= |V|``).
    order:
        Cut heuristic: ``"bfs"`` slices the breadth-first packing order,
        ``"hilbert"`` the Hilbert space-filling-curve order (requires
        node coordinates).

    Returns
    -------
    ShardPlan
        The node assignment, per-shard packing orders and cut edges.
    """
    _check_shard_count(num_shards, graph.num_nodes)
    if order == "bfs":
        node_order = bfs_order(graph)
    elif order == "hilbert":
        node_order = hilbert_order(graph)
    else:
        raise GraphError(f"unknown cut order {order!r}; choose one of {ORDERS}")
    slices = _contiguous_slices(node_order, num_shards)
    return _plan_from_slices(slices, graph.num_nodes, graph.edges())


def cut_digraph(graph: DiGraph, num_shards: int) -> ShardPlan:
    """Cut a directed graph into ``num_shards`` edge-disjoint shards.

    Uses the weak (direction-blind) BFS order -- the same order the
    directed disk store packs pages by -- so forward and backward
    expansions stay local to a shard.  ``cut_edges`` holds directed
    arcs.
    """
    _check_shard_count(num_shards, graph.num_nodes)
    node_order = weak_bfs_order(graph)
    slices = _contiguous_slices(node_order, num_shards)
    return _plan_from_slices(slices, graph.num_nodes, graph.arcs())
