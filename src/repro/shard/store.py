"""Sharded disk-resident storage: one store + buffer per partition.

:class:`ShardedGraphStore` realizes a :class:`~repro.shard.partition.ShardPlan`
as ``K`` independent storage stacks.  Each :class:`GraphShard` owns

* the induced subgraph of its nodes, paged out through its **own**
  :class:`~repro.storage.disk.DiskGraph` (local dense node ids, the
  shard slice of the global packing order);
* a **private** :class:`~repro.storage.buffer.BufferManager` and
  :class:`~repro.storage.stats.CostTracker`, so every page fault is
  charged to the shard that served it;
* its slice of the **boundary-vertex table**: for every node incident
  to a cut edge, the cut arcs leaving it, keyed by their position in
  the node's original adjacency list.  Like the paper's node index,
  the boundary table is an in-memory structure -- consulting it is
  free, reading an adjacency list is a charged shard-local I/O.

``store.neighbors(node)`` therefore returns exactly the adjacency list
the unsharded :class:`~repro.storage.disk.DiskGraph` would -- the
intra-shard arcs come off the owning shard's disk and the cut arcs are
re-interleaved at their recorded positions, byte for byte, so heap tie
order in every downstream algorithm matches the single store.  Query
algorithms running over the stitched view produce identical results to
the single-store database while their I/O decomposes into per-shard
counters.

:class:`ShardedDiGraphStore` is the directed counterpart (two adjacency
files per shard, separate out-/in- boundary tables).
"""

from __future__ import annotations

import copy

from repro.errors import StorageError
from repro.graph.digraph import DiGraph
from repro.graph.graph import Graph
from repro.shard.partition import ShardPlan, cut_digraph, cut_graph
from repro.storage.buffer import BufferManager
from repro.storage.disk import DiskGraph
from repro.storage.disk_directed import DiskDiGraph
from repro.storage.page import DEFAULT_PAGE_SIZE
from repro.storage.stats import CostTracker

#: Default per-shard buffer, matching the single store's 256-page LRU:
#: each shard models an independent host with its own buffer pool.
DEFAULT_BUFFER_PAGES = 256

#: A boundary entry: original adjacency position -> (neighbor, weight).
CutArcs = dict[int, tuple[int, float]]


def _check_buffer(buffer_pages: int) -> int:
    if buffer_pages < 0:
        raise StorageError(f"buffer budget must be >= 0, got {buffer_pages}")
    return buffer_pages


def _cut_arcs(adjacency, is_cut) -> CutArcs:
    """Positions and arcs of an adjacency list's cut entries."""
    return {
        position: (nbr, weight)
        for position, (nbr, weight) in enumerate(adjacency)
        if is_cut(nbr)
    }


def _interleave(
    intra: list[tuple[int, float]],
    cut: CutArcs,
) -> tuple[tuple[int, float], ...]:
    """Merge disk-resident and boundary arcs back into original order."""
    merged: list[tuple[int, float]] = []
    disk_arcs = iter(intra)
    for position in range(len(intra) + len(cut)):
        entry = cut.get(position)
        merged.append(entry if entry is not None else next(disk_arcs))
    return tuple(merged)


class _ShardBase:
    """Per-shard scaffolding: id mapping, private buffer and tracker."""

    def __init__(self, shard_id: int, nodes: tuple[int, ...], buffer_pages: int):
        self.shard_id = shard_id
        self.global_ids = tuple(nodes)
        self._local_of = {node: i for i, node in enumerate(nodes)}
        self.tracker = CostTracker()
        self.buffer = BufferManager(buffer_pages, self.tracker)

    @property
    def num_nodes(self) -> int:
        """Nodes owned by this shard."""
        return len(self.global_ids)

    def local_of(self, node: int) -> int:
        """Local (dense) id of a global node owned by this shard."""
        return self._local_of[node]

    def page_of(self, node: int) -> int:
        """Shard-local page of ``node``'s adjacency list (free look-up)."""
        return self.disk.page_of(self._local_of[node])

    def read_clone(self):
        """A read-only copy with a private cold buffer and zeroed tracker."""
        clone = copy.copy(self)
        clone.tracker = CostTracker()
        clone.buffer = BufferManager(self.buffer.capacity_pages, clone.tracker)
        clone.disk = self._clone_disk(clone.buffer)
        return clone

    def _clone_disk(self, buffer: BufferManager):
        raise NotImplementedError  # pragma: no cover - subclass duty


class GraphShard(_ShardBase):
    """One undirected shard: subgraph disk store, private buffer, boundary.

    ``intra_edges`` is this shard's slice of the *global* edge
    sequence.  Edge insertion order determines adjacency order, so
    keeping the slice in sequence preserves every node's relative
    intra-shard neighbor order -- which the boundary table's position
    merge relies on to reproduce the unsharded adjacency lists exactly.
    """

    def __init__(
        self,
        shard_id: int,
        nodes: tuple[int, ...],
        intra_edges: list[tuple[int, int, float]],
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pages: int,
        point_nodes: frozenset[int] = frozenset(),
    ):
        super().__init__(shard_id, nodes, buffer_pages)
        member = self._local_of
        local_edges = [
            (member[u], member[v], weight) for u, v, weight in intra_edges
        ]
        self.subgraph = Graph(len(nodes), local_edges)
        self.disk = DiskGraph(
            self.subgraph,
            self.buffer,
            page_size=page_size,
            order=list(range(len(nodes))),
            point_nodes=frozenset(
                member[node] for node in point_nodes if node in member
            ),
        )
        #: boundary node (global id) -> its cut arcs (:data:`CutArcs`).
        self.boundary: dict[int, CutArcs] = {}

    @property
    def num_intra_edges(self) -> int:
        """Edges with both endpoints in this shard (on this shard's disk)."""
        return self.subgraph.num_edges

    @property
    def num_boundary_nodes(self) -> int:
        """Owned nodes incident to at least one cut edge."""
        return len(self.boundary)

    def neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        """Full adjacency of ``node`` in global ids, original order.

        The intra-shard part is a charged read of this shard's disk;
        the cut part comes from the in-memory boundary table, re-
        interleaved at its recorded positions so the result is
        byte-for-byte the unsharded adjacency list.
        """
        local = self._local_of[node]
        intra = [
            (self.global_ids[nbr], weight)
            for nbr, weight in self.disk.neighbors(local)
        ]
        cut = self.boundary.get(node)
        if not cut:
            return tuple(intra)
        return _interleave(intra, cut)

    def _clone_disk(self, buffer: BufferManager) -> DiskGraph:
        disk = copy.copy(self.disk)
        disk.buffer = buffer
        return disk


class DirectedGraphShard(_ShardBase):
    """One directed shard: local forward/backward files plus boundaries."""

    def __init__(
        self,
        shard_id: int,
        nodes: tuple[int, ...],
        intra_arcs: list[tuple[int, int, float]],
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pages: int,
        point_nodes: frozenset[int] = frozenset(),
    ):
        super().__init__(shard_id, nodes, buffer_pages)
        member = self._local_of
        # the shard's slice of the global arc sequence, kept in
        # sequence to preserve the relative order of both endpoints'
        # adjacency lists (see GraphShard)
        local_arcs = [
            (member[u], member[v], weight) for u, v, weight in intra_arcs
        ]
        self.subgraph = DiGraph(len(nodes), local_arcs)
        self.disk = DiskDiGraph(
            self.subgraph,
            self.buffer,
            page_size=page_size,
            order=list(range(len(nodes))),
            point_nodes=frozenset(
                member[node] for node in point_nodes if node in member
            ),
        )
        #: node -> cut arcs leaving it, positions indexing the
        #: original out-adjacency list.
        self.boundary_out: dict[int, CutArcs] = {}
        #: node -> cut arcs entering it, positions indexing the
        #: original in-adjacency list.
        self.boundary_in: dict[int, CutArcs] = {}

    @property
    def num_intra_arcs(self) -> int:
        """Arcs with both endpoints in this shard."""
        return self.subgraph.num_arcs

    @property
    def num_boundary_nodes(self) -> int:
        """Owned nodes incident to at least one cut arc (either way)."""
        return len(self.boundary_out.keys() | self.boundary_in.keys())

    def out_neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        """Outgoing arcs of ``node`` in global ids, original order."""
        local = self._local_of[node]
        intra = [
            (self.global_ids[nbr], weight)
            for nbr, weight in self.disk.out_neighbors(local)
        ]
        cut = self.boundary_out.get(node)
        if not cut:
            return tuple(intra)
        return _interleave(intra, cut)

    def in_neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        """Incoming arcs of ``node`` in global ids, original order."""
        local = self._local_of[node]
        intra = [
            (self.global_ids[nbr], weight)
            for nbr, weight in self.disk.in_neighbors(local)
        ]
        cut = self.boundary_in.get(node)
        if not cut:
            return tuple(intra)
        return _interleave(intra, cut)

    def _clone_disk(self, buffer: BufferManager) -> DiskDiGraph:
        disk = copy.copy(self.disk)
        disk._forward = copy.copy(self.disk._forward)
        disk._forward.buffer = buffer
        disk._backward = copy.copy(self.disk._backward)
        disk._backward.buffer = buffer
        return disk


class _ShardedStoreBase:
    """Store-level scaffolding shared by both sharded stores.

    Subclass constructors must set ``plan``, ``num_nodes`` and
    ``shards``, then call :meth:`_finish` to compute the shard-major
    page offsets.
    """

    def _finish(self) -> None:
        offsets = []
        total = 0
        for shard in self.shards:
            offsets.append(total)
            total += shard.disk.num_pages
        self._page_offsets = offsets

    @property
    def num_shards(self) -> int:
        """Number of shards ``K``."""
        return self.plan.num_shards

    @property
    def num_pages(self) -> int:
        """Total adjacency pages across every shard."""
        return sum(shard.disk.num_pages for shard in self.shards)

    @property
    def num_cut_edges(self) -> int:
        """Edges (or arcs) crossing shard boundaries."""
        return self.plan.num_cut_edges

    def shard_of(self, node: int) -> int:
        """Shard owning ``node`` (free index look-up)."""
        if not 0 <= node < self.num_nodes:
            raise StorageError(f"node {node} out of range")
        return self.plan.assignment[node]

    def page_of(self, node: int) -> int:
        """Global page rank of ``node`` (shard-major, free look-up).

        Pages of shard ``i`` rank strictly before pages of shard
        ``i + 1``, so ordering queries by this rank groups them by
        shard first and by page within a shard second -- exactly what
        the engine's shard-aware planner wants.
        """
        shard_id = self.shard_of(node)
        return self._page_offsets[shard_id] + self.shards[shard_id].page_of(node)

    def global_order(self) -> list[int]:
        """The concatenated per-shard packing orders (a global order)."""
        order: list[int] = []
        for nodes in self.plan.shard_nodes:
            order.extend(nodes)
        return order

    def trackers(self) -> list[CostTracker]:
        """The live per-shard cost trackers (shared references)."""
        return [shard.tracker for shard in self.shards]

    def shard_counters(self) -> list[CostTracker]:
        """Immutable snapshots of every shard's cumulative counters."""
        return [shard.tracker.snapshot() for shard in self.shards]

    def clear_buffers(self) -> None:
        """Drop every shard's buffered pages (cold-start the next query)."""
        for shard in self.shards:
            shard.buffer.clear()

    def reset_trackers(self) -> None:
        """Zero every shard's counters."""
        for shard in self.shards:
            shard.tracker.reset()

    def read_clone(self):
        """A read-only copy: every shard gets a cold private buffer."""
        clone = copy.copy(self)
        clone.shards = [shard.read_clone() for shard in self.shards]
        return clone


class ShardedGraphStore(_ShardedStoreBase):
    """K edge-disjoint shards serving one undirected network.

    Parameters
    ----------
    graph:
        The network to shard.
    num_shards:
        Shard count ``K`` (ignored when ``plan`` is given).
    order:
        Cut heuristic, ``"bfs"`` or ``"hilbert"`` (see
        :func:`~repro.shard.partition.cut_graph`).
    plan:
        A precomputed :class:`~repro.shard.partition.ShardPlan`.
    page_size / buffer_pages:
        Storage parameters.  ``buffer_pages`` is the **per-shard** LRU
        budget: each shard models an independent storage host with its
        own buffer pool, mirroring the multi-host deployment the
        backend is a stepping stone toward.
    point_nodes:
        Nodes carrying data points (sets the adjacency records'
        has-point flag, as in the unsharded store).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        num_shards: int = 4,
        order: str = "bfs",
        plan: ShardPlan | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        point_nodes: frozenset[int] = frozenset(),
    ):
        if plan is None:
            plan = cut_graph(graph, num_shards, order)
        self.plan = plan
        self.num_nodes = graph.num_nodes
        pages_each = _check_buffer(buffer_pages)
        # one pass over the global edge sequence buckets each edge into
        # its owning shard (cut edges go to the boundary tables below)
        intra_edges: list[list[tuple[int, int, float]]] = [
            [] for _ in range(plan.num_shards)
        ]
        assignment = plan.assignment
        for u, v, weight in graph.edges():
            if assignment[u] == assignment[v]:
                intra_edges[assignment[u]].append((u, v, weight))
        self.shards = [
            GraphShard(
                shard_id,
                plan.shard_nodes[shard_id],
                intra_edges[shard_id],
                page_size=page_size,
                buffer_pages=pages_each,
                point_nodes=point_nodes,
            )
            for shard_id in range(plan.num_shards)
        ]
        for node in plan.boundary_nodes():
            self.shards[assignment[node]].boundary[node] = _cut_arcs(
                graph.neighbors(node),
                lambda nbr, home=assignment[node]: assignment[nbr] != home,
            )
        self._finish()

    def neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        """Stitched adjacency list of ``node`` (charged to its shard)."""
        return self.shards[self.shard_of(node)].neighbors(node)


class ShardedDiGraphStore(_ShardedStoreBase):
    """K edge-disjoint shards serving one directed network.

    The directed counterpart of :class:`ShardedGraphStore`: the cut is
    computed on the weak (direction-blind) BFS order, each shard pages
    its local forward and backward files through a private buffer, and
    cut arcs are served from per-direction boundary tables.
    """

    def __init__(
        self,
        graph: DiGraph,
        *,
        num_shards: int = 4,
        plan: ShardPlan | None = None,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        point_nodes: frozenset[int] = frozenset(),
    ):
        if plan is None:
            plan = cut_digraph(graph, num_shards)
        self.plan = plan
        self.num_nodes = graph.num_nodes
        pages_each = _check_buffer(buffer_pages)
        intra_arcs: list[list[tuple[int, int, float]]] = [
            [] for _ in range(plan.num_shards)
        ]
        assignment = plan.assignment
        for u, v, weight in graph.arcs():
            if assignment[u] == assignment[v]:
                intra_arcs[assignment[u]].append((u, v, weight))
        self.shards = [
            DirectedGraphShard(
                shard_id,
                plan.shard_nodes[shard_id],
                intra_arcs[shard_id],
                page_size=page_size,
                buffer_pages=pages_each,
                point_nodes=point_nodes,
            )
            for shard_id in range(plan.num_shards)
        ]
        for node in plan.boundary_nodes():
            shard = self.shards[assignment[node]]
            is_cut = (
                lambda nbr, home=assignment[node]: assignment[nbr] != home
            )
            out_cut = _cut_arcs(graph.out_neighbors(node), is_cut)
            if out_cut:
                shard.boundary_out[node] = out_cut
            in_cut = _cut_arcs(graph.in_neighbors(node), is_cut)
            if in_cut:
                shard.boundary_in[node] = in_cut
        self._finish()

    def out_neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        """Stitched outgoing arcs of ``node`` (charged to its shard)."""
        return self.shards[self.shard_of(node)].out_neighbors(node)

    def in_neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        """Stitched incoming arcs of ``node`` (charged to its shard)."""
        return self.shards[self.shard_of(node)].in_neighbors(node)
