"""Sharded graph backend: K edge-disjoint partitions, one store each.

The scaling layer above the paper's single-disk storage scheme: a
network is cut into ``K`` edge-disjoint shards
(:mod:`repro.shard.partition`), each shard pages its induced subgraph
through a private disk store, LRU buffer and cost tracker
(:mod:`repro.shard.store`), and the cut edges are served from an
in-memory boundary-vertex table.  The facades
(:mod:`repro.shard.db`) run the paper's algorithms unchanged over a
stitched view (:mod:`repro.shard.view`), so answers are identical to
the unsharded databases while I/O decomposes into per-shard counters --
and the batch engine routes queries to their home shards and executes
independent shards on its worker pool.
"""

from repro.shard.db import ShardedDatabase, ShardedDirectedDatabase
from repro.shard.partition import ShardPlan, cut_digraph, cut_graph
from repro.shard.store import (
    DirectedGraphShard,
    GraphShard,
    ShardedDiGraphStore,
    ShardedGraphStore,
)
from repro.shard.view import ShardedDirectedView, ShardedNetworkView

__all__ = [
    "DirectedGraphShard",
    "GraphShard",
    "ShardPlan",
    "ShardedDatabase",
    "ShardedDiGraphStore",
    "ShardedDirectedDatabase",
    "ShardedDirectedView",
    "ShardedGraphStore",
    "ShardedNetworkView",
    "cut_digraph",
    "cut_graph",
]
