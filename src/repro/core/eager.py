"""The eager RkNN algorithm (paper Section 3.2, Fig. 4).

Eager traverses the network around the query like Dijkstra, but applies
Lemma 1 at every de-heaped node *before* expanding it: a ``range-NN``
probe with range ``d(n, q)`` looks for data points strictly closer to
``n`` than the query.  If ``k`` such points exist the node cannot lead
to any further reverse neighbor, so its adjacency list is not expanded.
Every point the probes discover is verified once (is the query among
its k NNs?) and added to the result on success.

The algorithm performs many local expansions (one probe per visited
node), which is why the paper finds it CPU-heavy but I/O-light: probes
revisit pages that are almost always buffered.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable

from repro.core.network import NetworkView
from repro.core.nn import range_nn, verify
from repro.core.pq import CountingHeap

_EMPTY: frozenset[int] = frozenset()


def eager_rknn(
    view: NetworkView,
    query_node: int,
    k: int = 1,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[int]:
    """Monochromatic RkNN of a query located on ``query_node``.

    ``exclude`` removes data points from consideration for the duration
    of the query (used when the query is drawn from the data set and
    models a new arrival, as in the paper's workloads).
    """
    return _eager(view, [query_node], k, exclude)


def eager_rknn_route(
    view: NetworkView,
    route: Iterable[int],
    k: int = 1,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[int]:
    """Continuous RkNN along a route (Section 5.1): the union of the
    RkNN sets of every route node, computed in a single expansion with
    the distance ``d(r, n) = min over route nodes``."""
    return _eager(view, list(route), k, exclude)


def _eager(
    view: NetworkView,
    sources: list[int],
    k: int,
    exclude: AbstractSet[int],
) -> list[int]:
    heap = CountingHeap(view.tracker)
    source_set = set(sources)
    for node in source_set:
        heap.push(0.0, node)
    visited: set[int] = set()
    checked: set[int] = set()  # points already verified (or known results)
    result: list[int] = []

    # A data point on a source node is at distance 0 from the query, so
    # the query trivially is its nearest neighbor: no other point can be
    # strictly closer than 0.
    for node in source_set:
        pid = view.point_at(node)
        if pid is not None and pid not in exclude and pid not in checked:
            checked.add(pid)
            result.append(pid)

    while heap:
        dist, node = heap.pop()
        if node in visited:
            continue
        visited.add(node)
        view.tracker.nodes_visited += 1
        found = range_nn(view, node, k, dist, exclude)
        for pid, pdist in found:
            if pid in checked:
                continue
            checked.add(pid)
            # d(p, n) + d(n, q) upper-bounds d(p, q); verification stops
            # exactly when the query is met, so the bound is safe.
            if verify(view, pid, k, source_set, pdist + dist, exclude):
                result.append(pid)
        if len(found) < k:
            # Lemma 1 does not apply: fewer than k points are strictly
            # closer to this node than the query, keep expanding.
            neighbors = view.neighbors(node)
            view.tracker.edges_expanded += len(neighbors)
            for nbr, weight in neighbors:
                if nbr not in visited:
                    heap.push(dist + weight, nbr)
    return sorted(result)
