"""Query-processing core: the paper's RkNN algorithms and primitives."""

from repro.core.baseline import brute_force_brknn, brute_force_knn, brute_force_rknn
from repro.core.bichromatic import (
    bichromatic_eager,
    bichromatic_eager_m,
    bichromatic_lazy,
)
from repro.core.continuous import continuous_rknn, validate_route
from repro.core.eager import eager_rknn, eager_rknn_route
from repro.core.eager_m import eager_m_rknn, eager_m_rknn_route
from repro.core.expansion import distances_from, expand_nodes
from repro.core.lazy import lazy_rknn, lazy_rknn_route
from repro.core.lazy_ep import lazy_ep_rknn, lazy_ep_rknn_route
from repro.core.materialize import MaterializedKNN, all_nn
from repro.core.network import NetworkView
from repro.core.nn import knn, range_nn, verify
from repro.core.result import KnnResult, RnnResult, UpdateResult

__all__ = [
    "MaterializedKNN",
    "NetworkView",
    "KnnResult",
    "RnnResult",
    "UpdateResult",
    "all_nn",
    "bichromatic_eager",
    "bichromatic_eager_m",
    "bichromatic_lazy",
    "brute_force_brknn",
    "brute_force_knn",
    "brute_force_rknn",
    "continuous_rknn",
    "distances_from",
    "eager_m_rknn",
    "eager_m_rknn_route",
    "eager_rknn",
    "eager_rknn_route",
    "expand_nodes",
    "knn",
    "lazy_ep_rknn",
    "lazy_ep_rknn_route",
    "lazy_rknn",
    "lazy_rknn_route",
    "range_nn",
    "validate_route",
    "verify",
]
