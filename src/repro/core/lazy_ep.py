"""Lazy-EP: lazy evaluation with extended pruning (Section 4.2, Fig. 13).

Lazy may expand far past regions that discovered points have already
disqualified (Fig. 12).  Lazy-EP fixes this by running a second heap
``H'`` in parallel: every discovered point becomes a source in ``H'``,
which computes point-to-node distances in the same ascending order as
the main expansion.  ``H'`` is advanced whenever its top distance is
smaller than the last distance de-heaped from the main heap ``H``, so
by the time a node comes up in ``H`` its k nearest *discovered* points
are known, and Lemma 1 prunes it immediately when the k-th of them is
strictly closer than the query.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from typing import AbstractSet, Iterable

from repro.core.network import NetworkView
from repro.core.nn import verify
from repro.core.numeric import strictly_less, tie_threshold
from repro.core.pq import CountingHeap

_EMPTY: frozenset[int] = frozenset()


def lazy_ep_rknn(
    view: NetworkView,
    query_node: int,
    k: int = 1,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[int]:
    """Monochromatic RkNN of a query located on ``query_node``."""
    return _lazy_ep(view, [query_node], k, exclude)


def lazy_ep_rknn_route(
    view: NetworkView,
    route: Iterable[int],
    k: int = 1,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[int]:
    """Continuous RkNN along a route using lazy-EP."""
    return _lazy_ep(view, list(route), k, exclude)


class _ParallelExpansion:
    """The second heap ``H'`` expanding discovered points in parallel."""

    def __init__(self, view: NetworkView, k: int, exclude: AbstractSet[int]):
        self.view = view
        self.k = k
        self.exclude = exclude
        self.heap = CountingHeap(view.tracker)
        self.closed: set[tuple[int, int]] = set()  # (node, point)
        # node -> ascending (distance, point) of discovered points (<= k kept)
        self.knn_dists: dict[int, list[tuple[float, int]]] = {}
        self.discovered: set[int] = set()

    def add_point(self, pid: int, node: int) -> None:
        """Register a point the *main* expansion discovered on ``node``.

        Only main-discovered points seed ``H'``: they have already been
        checked for result membership, so Lemma 1 pruning based on them
        never hides an unverified answer, and ``H'``'s work stays
        bounded by the main expansion's reach (no discovery cascade).
        """
        if pid not in self.discovered:
            self.discovered.add(pid)
            self.heap.push(0.0, (node, pid))

    def advance(self, limit: float) -> None:
        """Process every ``H'`` entry with distance strictly below ``limit``.

        Entries are *not* globally ascending over time (a point
        discovered late re-seeds ``H'`` at distance 0), so the per-node
        lists use sorted insertion and evict their largest entry when a
        closer point arrives.
        """
        heap = self.heap
        while heap and heap.peek_distance() < limit:
            dist, (node, pid) = heap.pop()
            if (node, pid) in self.closed:
                continue
            self.closed.add((node, pid))
            dists = self.knn_dists.setdefault(node, [])
            if len(dists) >= self.k and dist >= dists[-1][0]:
                continue  # k discovered points at least as close: dominated
            insort(dists, (dist, pid))
            del dists[self.k:]
            neighbors = self.view.neighbors(node)
            self.view.tracker.edges_expanded += len(neighbors)
            for nbr, weight in neighbors:
                if (nbr, pid) in self.closed:
                    continue
                nbr_dists = self.knn_dists.get(nbr)
                reach = dist + weight
                if nbr_dists and len(nbr_dists) >= self.k and reach >= nbr_dists[-1][0]:
                    continue
                heap.push(reach, (nbr, pid))

    def kth_dist(self, node: int) -> float:
        """Distance of the node's k-th discovered point (inf if unknown)."""
        dists = self.knn_dists.get(node)
        if dists is None or len(dists) < self.k:
            return math.inf
        return dists[self.k - 1][0]

    def strictly_closer(self, node: int, dist: float, skip_pid: int | None = None) -> int:
        """Discovered points strictly closer to ``node`` than ``dist``,
        not counting ``skip_pid`` (a point never competes with itself)."""
        dists = self.knn_dists.get(node)
        if not dists:
            return 0
        count = bisect_left(dists, (tie_threshold(dist), -1))
        if skip_pid is not None:
            count -= sum(1 for d, p in dists[:count] if p == skip_pid)
        return count


def _lazy_ep(
    view: NetworkView,
    sources: list[int],
    k: int,
    exclude: AbstractSet[int],
) -> list[int]:
    heap = CountingHeap(view.tracker)
    source_set = set(sources)
    for node in source_set:
        heap.push(0.0, node)
    parallel = _ParallelExpansion(view, k, exclude)
    visited: set[int] = set()
    checked: set[int] = set()
    result: list[int] = []

    while heap:
        dist, node = heap.pop()
        if node in visited:
            continue
        visited.add(node)
        view.tracker.nodes_visited += 1
        parallel.advance(dist)
        pid = view.point_at(node)
        if pid is not None and pid not in exclude and pid not in checked:
            checked.add(pid)
            # If k other discovered points are strictly closer to this
            # node than the query, p (at distance 0 from the node) has k
            # points strictly closer than d(p, q): no verification needed.
            if parallel.strictly_closer(node, dist, skip_pid=pid) < k:
                if verify(view, pid, k, source_set, dist, exclude):
                    result.append(pid)
            parallel.add_point(pid, node)
            # fold the just-discovered point (distance 0 from this node)
            # into the knn lists before the prune test below
            parallel.advance(dist)
        if strictly_less(parallel.kth_dist(node), dist):
            continue  # Lemma 1: k discovered points strictly closer than q
        neighbors = view.neighbors(node)
        view.tracker.edges_expanded += len(neighbors)
        for nbr, weight in neighbors:
            if nbr not in visited:
                heap.push(dist + weight, nbr)
    return sorted(result)
