"""Result objects returned by the public query API."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.stats import CostModel, CostTracker


@dataclass(frozen=True)
class RnnResult:
    """Outcome of one RkNN query.

    Attributes
    ----------
    points:
        The reverse k-nearest neighbors, as sorted point ids.
    io:
        Physical page transfers charged to the query (reads + writes).
    cpu_seconds:
        Wall-clock CPU time of the query.
    counters:
        Full counter diff (visited nodes, heap operations, buffer hits,
        range-NN probes, verifications, ...).
    """

    points: tuple[int, ...]
    io: int
    cpu_seconds: float
    counters: CostTracker = field(repr=False, default_factory=CostTracker)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def __contains__(self, pid: int) -> bool:
        return pid in self.points

    def total_seconds(self, model: CostModel | None = None) -> float:
        """Combined cost: CPU plus charged I/O (default 10 ms per page)."""
        model = model or CostModel()
        return model.total_seconds(self.counters)


@dataclass(frozen=True)
class KnnResult:
    """Outcome of a (k-)nearest-neighbor or range-NN query."""

    neighbors: tuple[tuple[int, float], ...]  # (point id, distance), ascending
    io: int
    cpu_seconds: float
    counters: CostTracker = field(repr=False, default_factory=CostTracker)

    def __len__(self) -> int:
        return len(self.neighbors)

    def __iter__(self):
        return iter(self.neighbors)

    def ids(self) -> tuple[int, ...]:
        """Just the point ids, in ascending distance order."""
        return tuple(pid for pid, _ in self.neighbors)


@dataclass(frozen=True)
class OracleResult:
    """Outcome of building (or opening) a landmark distance oracle.

    Attributes
    ----------
    landmarks:
        The selected landmark node ids, in selection order.
    entries:
        Materialized ``(landmark, node)`` distance pairs.
    pages:
        Pages of the persisted label file (0 for memory-only opens).
    io:
        Physical page transfers charged to the preprocessing.
    cpu_seconds:
        Wall-clock CPU time of the preprocessing.
    counters:
        Full counter diff of the preprocessing work.
    """

    landmarks: tuple[int, ...]
    entries: int
    pages: int
    io: int
    cpu_seconds: float
    counters: CostTracker = field(repr=False, default_factory=CostTracker)

    def total_seconds(self, model: CostModel | None = None) -> float:
        """Combined cost: CPU plus charged I/O (default 10 ms per page)."""
        model = model or CostModel()
        return model.total_seconds(self.counters)


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of a data-point insertion or deletion."""

    affected_nodes: int
    io: int
    cpu_seconds: float
    counters: CostTracker = field(repr=False, default_factory=CostTracker)

    def total_seconds(self, model: CostModel | None = None) -> float:
        """Combined cost: CPU plus charged I/O (default 10 ms per page)."""
        model = model or CostModel()
        return model.total_seconds(self.counters)
