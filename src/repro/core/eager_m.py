"""Eager-M: the eager algorithm over materialized K-NN lists (Section 4.1).

Instead of running a ``range-NN`` probe at every de-heaped node, eager-M
reads the node's materialized list: the prune test and the candidate
set come for one logical read.  Verification is also short-circuited:
for a candidate ``p`` at node ``n'``, if the upper bound
``d(q, n) + d(n, p)`` of ``d(p, q)`` does not exceed the distance of the
k-th *other* point in ``n'``'s list, ``p`` is a result without any
expansion; only inconclusive candidates fall back to a verify query.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Iterable

from repro.core.materialize import MaterializedKNN
from repro.core.network import NetworkView
from repro.core.nn import verify
from repro.core.numeric import strictly_less
from repro.core.pq import CountingHeap
from repro.errors import QueryError

_EMPTY: frozenset[int] = frozenset()


def eager_m_rknn(
    view: NetworkView,
    materialized: MaterializedKNN,
    query_node: int,
    k: int = 1,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[int]:
    """Monochromatic RkNN using materialized lists."""
    return _eager_m(view, materialized, [query_node], k, exclude)


def eager_m_rknn_route(
    view: NetworkView,
    materialized: MaterializedKNN,
    route: Iterable[int],
    k: int = 1,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[int]:
    """Continuous RkNN along a route using materialized lists."""
    return _eager_m(view, materialized, list(route), k, exclude)


def _eager_m(
    view: NetworkView,
    materialized: MaterializedKNN,
    sources: list[int],
    k: int,
    exclude: AbstractSet[int],
) -> list[int]:
    if k > materialized.capacity:
        raise QueryError(
            f"k={k} exceeds the materialized capacity K={materialized.capacity}"
        )
    heap = CountingHeap(view.tracker)
    source_set = set(sources)
    for node in source_set:
        heap.push(0.0, node)
    visited: set[int] = set()
    checked: set[int] = set()
    result: list[int] = []

    for node in source_set:
        pid = view.point_at(node)
        if pid is not None and pid not in exclude and pid not in checked:
            checked.add(pid)
            result.append(pid)

    while heap:
        dist, node = heap.pop()
        if node in visited:
            continue
        visited.add(node)
        view.tracker.nodes_visited += 1
        entries = [
            (pid, pdist)
            for pid, pdist in materialized.get(node)
            if pid not in exclude
        ]
        # candidates: the (up to k) nearest points strictly closer than q
        candidates = [
            (pid, pdist) for pid, pdist in entries if strictly_less(pdist, dist)
        ][:k]
        for pid, pdist in candidates:
            if pid in checked:
                continue
            checked.add(pid)
            if _verify_with_lists(
                view, materialized, pid, k, source_set, dist + pdist, exclude
            ):
                result.append(pid)
        if len(candidates) < k:
            neighbors = view.neighbors(node)
            view.tracker.edges_expanded += len(neighbors)
            for nbr, weight in neighbors:
                if nbr not in visited:
                    heap.push(dist + weight, nbr)
    return sorted(result)


def _verify_with_lists(
    view: NetworkView,
    materialized: MaterializedKNN,
    pid: int,
    k: int,
    targets: set[int],
    bound: float,
    exclude: AbstractSet[int],
) -> bool:
    """Short-circuit verification through the candidate's own node list.

    ``bound`` upper-bounds ``d(p, q)``.  Let ``t`` be the distance of the
    k-th point other than ``p`` in the list of ``p``'s node.  When
    ``bound <= t`` the query is within ``p``'s k-th neighbor radius, so
    ``p`` qualifies without expansion; otherwise the outcome is unknown
    (``bound`` is only an upper bound) and an exact verify query runs.
    """
    node = view.node_of(pid)
    entries = materialized.get(node)
    others = [e for e in entries if e[0] != pid and e[0] not in exclude]
    if len(others) >= k:
        threshold = others[k - 1][1]
    elif len(entries) < materialized.capacity:
        # The list is not truncated, so fewer than k other points exist
        # in the whole (reachable) network: p qualifies unconditionally.
        threshold = math.inf
    else:
        threshold = None  # truncated list hides the k-th other point
    if threshold is not None and bound <= threshold:
        return True
    return verify(view, pid, k, targets, bound, exclude)
