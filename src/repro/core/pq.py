"""Priority queues with cost accounting and entry invalidation.

The lazy algorithm (paper Section 3.3) keeps, for every de-heaped node,
pointers to the heap entries it inserted; when a verification query
later invalidates the node, those entries are removed from the heap.
:class:`InvalidatableHeap` supports exactly that: :meth:`push` returns
an entry id, and :meth:`invalidate` marks it dead so :meth:`pop` skips
it (lazy deletion, the standard binary-heap technique).

Both heap classes bump the shared tracker's ``heap_pushes`` /
``heap_pops`` counters so experiments can report machine-independent
work measures.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator

from repro.storage.stats import CostTracker


class CountingHeap:
    """Minimal binary min-heap ordered by ``(distance, tiebreak)``.

    A monotonically increasing sequence number breaks distance ties, so
    payloads are never compared (they may be non-orderable tuples).
    """

    def __init__(self, tracker: CostTracker | None = None):
        self._tracker = tracker
        self._entries: list[tuple[float, int, Any]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def push(self, distance: float, payload: Any) -> None:
        if self._tracker is not None:
            self._tracker.heap_pushes += 1
        heapq.heappush(self._entries, (distance, self._seq, payload))
        self._seq += 1

    def pop(self) -> tuple[float, Any]:
        if self._tracker is not None:
            self._tracker.heap_pops += 1
        distance, _, payload = heapq.heappop(self._entries)
        return distance, payload

    def peek_distance(self) -> float:
        """Distance of the current minimum entry (heap must be non-empty)."""
        return self._entries[0][0]


class InvalidatableHeap:
    """Min-heap whose entries can be retroactively removed by id."""

    def __init__(self, tracker: CostTracker | None = None):
        self._tracker = tracker
        self._entries: list[tuple[float, int, Any]] = []
        self._present: set[int] = set()  # live (pushed, not popped/invalidated)
        self._dead: set[int] = set()
        self._seq = 0

    def __len__(self) -> int:
        return len(self._present)

    def __bool__(self) -> bool:
        self._skip_dead()
        return bool(self._entries)

    def push(self, distance: float, payload: Any) -> int:
        """Insert an entry and return its id (for later invalidation)."""
        if self._tracker is not None:
            self._tracker.heap_pushes += 1
        entry_id = self._seq
        self._seq += 1
        heapq.heappush(self._entries, (distance, entry_id, payload))
        self._present.add(entry_id)
        return entry_id

    def invalidate(self, entry_id: int) -> None:
        """Mark an entry dead; it is silently skipped by :meth:`pop`.

        Invalidating an entry that was already popped is a no-op, so
        callers may keep stale entry ids around without harm.
        """
        if entry_id in self._present:
            self._present.discard(entry_id)
            self._dead.add(entry_id)

    def pop(self) -> tuple[float, int, Any]:
        """Remove and return the minimum live entry ``(dist, id, payload)``."""
        self._skip_dead()
        if self._tracker is not None:
            self._tracker.heap_pops += 1
        distance, entry_id, payload = heapq.heappop(self._entries)
        self._present.discard(entry_id)
        return distance, entry_id, payload

    def peek_distance(self) -> float:
        """Distance of the current minimum live entry."""
        self._skip_dead()
        return self._entries[0][0]

    def _skip_dead(self) -> None:
        while self._entries and self._entries[0][1] in self._dead:
            _, entry_id, _ = heapq.heappop(self._entries)
            self._dead.discard(entry_id)

    def drain(self) -> Iterator[tuple[float, int, Any]]:
        """Pop everything (used by tests to inspect heap contents)."""
        while self:
            yield self.pop()
