"""Floating-point discipline for network distances.

Every decisive comparison inside one Dijkstra expansion is exact (the
values share their summation order), but the paper's algorithms also
compare distances across *different* expansions: a range-NN probe's
result against the main traversal's distance, a verification bound
assembled as ``d(q, n) + d(n, p)`` against the verification's own path
sums, a materialized distance against a query-time distance.  Two sums
of the same real-valued path can then differ in the last few ulps,
which flips exact ties (e.g. a data point residing on the query node)
arbitrarily.

The helpers here make those cross-expansion comparisons deterministic:

* :func:`strictly_less` treats values within a relative guard band as
  equal, so "strictly closer than the query" never triggers on an
  exact tie that floating point happened to order the wrong way;
* :func:`inflate_bound` pads an upper bound so a verification can still
  reach a target whose true distance equals the bound in real
  arithmetic.

The guard (1e-9, purely *relative*) sits far above the accumulated
rounding error of path sums (~1e-13 relative) and far below any genuine
weight difference produced by the data sets.  It has no absolute floor:
network distances are sums of positive weights, so a true zero is
computed exactly and arbitrarily small scales still compare correctly.
"""

from __future__ import annotations

import math

#: Relative half-width of the tie guard band.
EPS = 1e-9


def strictly_less(a: float, b: float) -> bool:
    """True iff ``a < b`` by more than floating-point path-sum noise."""
    if math.isinf(a) or math.isinf(b):
        return a < b
    return a < b - EPS * max(abs(a), abs(b))


def inflate_bound(bound: float) -> float:
    """Pad an upper bound so real-arithmetic equality stays within it."""
    if math.isinf(bound):
        return bound
    return bound + EPS * abs(bound)


def tie_threshold(value: float) -> float:
    """Largest distance still considered *strictly* below ``value``.

    ``bisect_left(dists, tie_threshold(v))`` counts the entries of an
    ascending list that are strictly smaller than ``v`` beyond
    floating-point path-sum noise.
    """
    if math.isinf(value):
        return value
    return value - EPS * abs(value)
