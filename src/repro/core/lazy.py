"""The lazy RkNN algorithm (paper Section 3.3, Figs. 5-7).

Lazy expands the network around the query without per-node probes and
defers all pruning to the moment a data point is discovered.  The
verification query of a discovered point ``p`` doubles as the pruning
device: every node it visits that is closer to ``p`` than to the query
gets its counter incremented, and once a node's counter reaches ``k``
it is closed for the main expansion -- including retroactively, by
removing the heap entries the node had inserted (the paper's hash table
of heap-entry pointers, here :class:`~repro.core.pq.InvalidatableHeap`).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import AbstractSet, Iterable

from repro.core.network import NetworkView
from repro.core.numeric import inflate_bound, strictly_less
from repro.core.pq import CountingHeap, InvalidatableHeap

_EMPTY: frozenset[int] = frozenset()


def lazy_rknn(
    view: NetworkView,
    query_node: int,
    k: int = 1,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[int]:
    """Monochromatic RkNN of a query located on ``query_node``."""
    return _lazy(view, [query_node], k, exclude)


def lazy_rknn_route(
    view: NetworkView,
    route: Iterable[int],
    k: int = 1,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[int]:
    """Continuous RkNN along a route (Section 5.1) using lazy evaluation."""
    return _lazy(view, list(route), k, exclude)


class _LazyState:
    """Bookkeeping shared between the main expansion and verifications."""

    def __init__(self, view: NetworkView, k: int):
        self.view = view
        self.k = k
        self.heap: InvalidatableHeap = InvalidatableHeap(view.tracker)
        # de-heaped node -> distance from the query at processing time
        self.processed: dict[int, float] = {}
        # node -> ids of heap entries inserted while processing it
        self.entries_of: dict[int, list[int]] = {}
        # node -> number of data points known to be strictly closer than q
        self.count: dict[int, int] = {}

    def bump_count(self, node: int) -> None:
        """Register one more point strictly closer to ``node`` than the
        query; on reaching ``k``, retro-actively invalidate the heap
        entries the node inserted (paper Fig. 7, line 11)."""
        new_count = self.count.get(node, 0) + 1
        self.count[node] = new_count
        if new_count == self.k:
            for entry_id in self.entries_of.pop(node, ()):
                self.heap.invalidate(entry_id)


def _lazy(
    view: NetworkView,
    sources: list[int],
    k: int,
    exclude: AbstractSet[int],
) -> list[int]:
    state = _LazyState(view, k)
    source_set = set(sources)
    for node in source_set:
        state.heap.push(0.0, node)
    checked: set[int] = set()
    result: list[int] = []

    while state.heap:
        dist, _, node = state.heap.pop()
        if node in state.processed:
            continue
        state.processed[node] = dist
        view.tracker.nodes_visited += 1
        if state.count.get(node, 0) >= k:
            # Already closer to k data points than to the query: by
            # Lemma 1 the node leads nowhere, and a point residing here
            # cannot qualify either.
            continue
        pid = view.point_at(node)
        if pid is not None and pid not in exclude and pid not in checked:
            checked.add(pid)
            # The node was de-heaped, so dist is (an upper bound of, and
            # for never-invalidated regions exactly) d(p, q).
            if _lazy_verify(state, pid, node, dist, source_set, exclude):
                result.append(pid)
            if state.count.get(node, 0) >= k:
                continue
        entry_ids: list[int] = []
        neighbors = view.neighbors(node)
        view.tracker.edges_expanded += len(neighbors)
        for nbr, weight in neighbors:
            if nbr not in state.processed:
                entry_ids.append(state.heap.push(dist + weight, nbr))
        if entry_ids:
            state.entries_of[node] = entry_ids
    return sorted(result)


def _lazy_verify(
    state: _LazyState,
    pid: int,
    point_node: int,
    dist_pq: float,
    targets: set[int],
    exclude: AbstractSet[int],
) -> bool:
    """Verification query of ``p`` with pruning side effects.

    Expands around ``p`` with range ``d(p, q)``.  Visited nodes that are
    *strictly* closer to ``p`` than to the query have their counters
    bumped:

    * nodes not yet processed by the main expansion satisfy
      ``d(n, p) < d(p, q) <= d(n, q)`` whenever ``d(n, p) < d(p, q)``
      strictly (the main expansion has already advanced past d(p, q));
    * processed nodes are compared against their recorded distance.

    Returns ``True`` iff a target (query/route) node is reached before
    ``k`` data points strictly closer to ``p``.
    """
    view = state.view
    view.tracker.verifications += 1
    heap = CountingHeap(view.tracker)
    heap.push(0.0, point_node)
    limit = inflate_bound(dist_pq)
    visited: set[int] = set()
    point_dists: list[float] = []
    success = False
    while heap:
        dist, node = heap.pop()
        if node in visited:
            continue
        if dist > limit:
            break
        visited.add(node)
        view.tracker.nodes_visited += 1
        strictly_closer = bisect_left(point_dists, dist)
        if node in targets:
            success = strictly_closer < state.k
            break
        if strictly_closer >= state.k:
            break
        # pruning side effect (Lemma 1 via the discovered point)
        processed_dist = state.processed.get(node)
        if processed_dist is None:
            if strictly_less(dist, dist_pq):
                state.bump_count(node)
        elif strictly_less(dist, processed_dist):
            state.bump_count(node)
        other = view.point_at(node)
        if other is not None and other != pid and other not in exclude:
            insort(point_dists, dist)
        neighbors = view.neighbors(node)
        view.tracker.edges_expanded += len(neighbors)
        for nbr, weight in neighbors:
            if nbr not in visited:
                ndist = dist + weight
                if ndist <= limit:
                    heap.push(ndist, nbr)
    return success
