"""Query-time access layer over the disk-resident network.

:class:`NetworkView` bundles what every query algorithm needs:

* the adjacency file (:class:`~repro.storage.disk.DiskGraph`) -- charged
  logical reads;
* the data points -- an in-memory index for restricted networks (the
  paper's node-id index stores the point a node contains), or a charged
  :class:`~repro.storage.disk.EdgePointStore` for unrestricted ones;
* the shared :class:`~repro.storage.stats.CostTracker`.

Bichromatic queries build two views (one per point set) over the *same*
disk graph and buffer, so both expansions share the cache exactly as a
single system would.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import QueryError
from repro.graph.graph import edge_key
from repro.points.points import EdgePointSet, NodePointSet, PointSet
from repro.storage.disk import DiskGraph, EdgePointStore
from repro.storage.stats import CostTracker


class NetworkView:
    """Uniform access to the network and one data-point set."""

    def __init__(
        self,
        disk: DiskGraph,
        points: PointSet,
        tracker: CostTracker,
        edge_store: EdgePointStore | None = None,
        bounds=None,
    ):
        self.disk = disk
        self.tracker = tracker
        self.restricted = points.restricted
        #: Optional :class:`~repro.oracle.bounds.LowerBoundProvider`
        #: consulted by the expansion loops (answer-preserving pruning).
        self.bounds = bounds
        if isinstance(points, NodePointSet):
            self._node_points: NodePointSet | None = points
            self._edge_points: EdgePointSet | None = None
            self._edge_store = None
        elif isinstance(points, EdgePointSet):
            if edge_store is None:
                raise QueryError("unrestricted views need an EdgePointStore")
            self._node_points = None
            self._edge_points = points
            self._edge_store = edge_store
        else:  # pragma: no cover - defensive
            raise QueryError(f"unsupported point set type {type(points).__name__}")

    # -- graph ---------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.disk.num_nodes

    def neighbors(self, node: int) -> tuple[tuple[int, float], ...]:
        """Adjacency list of ``node`` (charged through the buffer)."""
        return self.disk.neighbors(node)

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``(u, v)``, found by reading ``u``'s adjacency list.

        This is a charged read like any other adjacency access; callers
        that already iterate the list should use the weight from there.
        """
        for nbr, weight in self.neighbors(u):
            if nbr == v:
                return weight
        raise QueryError(f"no edge between {u} and {v}")

    # -- points ---------------------------------------------------------------

    @property
    def num_points(self) -> int:
        points = self._node_points or self._edge_points
        return len(points) if points is not None else 0

    def point_ids(self) -> Iterable[int]:
        points = self._node_points or self._edge_points
        return points.ids() if points is not None else ()

    def point_at(self, node: int) -> int | None:
        """Point on ``node`` (restricted networks; free index look-up)."""
        if self._node_points is None:
            raise QueryError("point_at() requires a restricted network")
        return self._node_points.point_at(node)

    def node_of(self, pid: int) -> int:
        """Node holding point ``pid`` (restricted networks)."""
        if self._node_points is None:
            raise QueryError("node_of() requires a restricted network")
        return self._node_points.node_of(pid)

    def edge_points(self, u: int, v: int) -> tuple[tuple[int, float], ...]:
        """Points on edge ``(u, v)`` (unrestricted; charged read)."""
        if self._edge_store is None:
            raise QueryError("edge_points() requires an unrestricted network")
        return self._edge_store.points_on(u, v)

    def point_location(self, pid: int) -> tuple[int, int, float]:
        """The ``(u, v, pos)`` triplet of point ``pid`` (unrestricted)."""
        if self._edge_points is None:
            raise QueryError("point_location() requires an unrestricted network")
        return self._edge_points.location(pid)

    def has_points_on(self, u: int, v: int) -> bool:
        """Whether edge ``(u, v)`` carries points (free index look-up)."""
        if self._edge_points is None:
            raise QueryError("has_points_on() requires an unrestricted network")
        return bool(self._edge_points.points_on(*edge_key(u, v)))
