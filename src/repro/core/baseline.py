"""Brute-force reference implementations (correctness oracles).

The naive strategy sketched at the start of paper Section 3.1: for every
data point, compute its distance to the query and check whether fewer
than ``k`` other points are strictly closer.  It touches every point and
is therefore only suitable as a baseline/oracle, which is exactly how
the test suite and the ablation benchmarks use it.

All functions work directly on the in-memory :class:`Graph` (no I/O
accounting), so oracle results are independent of the storage stack.
"""

from __future__ import annotations

import heapq
import math
from typing import AbstractSet, Iterable, Mapping

from repro.graph.graph import Graph, edge_key
from repro.points.points import EdgePointSet, NodePointSet

_EMPTY: frozenset[int] = frozenset()

#: A query/point location: a node id, or an ``(u, v, pos)`` edge triplet.
Location = int | tuple[int, int, float]


def dijkstra(
    graph: Graph,
    seeds: Iterable[tuple[int, float]],
    cutoff: float = math.inf,
) -> dict[int, float]:
    """Plain Dijkstra from (possibly several) seeded nodes."""
    dists: dict[int, float] = {}
    heap = [(dist, node) for node, dist in seeds]
    heapq.heapify(heap)
    while heap:
        dist, node = heapq.heappop(heap)
        if node in dists or dist > cutoff:
            continue
        dists[node] = dist
        for nbr, weight in graph.neighbors(node):
            if nbr not in dists:
                heapq.heappush(heap, (dist + weight, nbr))
    return dists


def location_seeds(graph: Graph, location: Location) -> list[tuple[int, float]]:
    """Node seeds representing a location (node, or position on an edge)."""
    if isinstance(location, int):
        return [(location, 0.0)]
    u, v, pos = location
    a, b = edge_key(u, v)
    weight = graph.weight(a, b)
    return [(a, float(pos)), (b, weight - float(pos))]


def direct_distance(loc1: Location, loc2: Location) -> float | None:
    """Same-edge direct distance ``|pos - pos'|`` (paper Section 5.2),
    or ``None`` when the locations do not share an edge."""
    if isinstance(loc1, int) or isinstance(loc2, int):
        return None
    if edge_key(loc1[0], loc1[1]) != edge_key(loc2[0], loc2[1]):
        return None
    return abs(loc1[2] - loc2[2])


def location_distance(
    graph: Graph, loc1: Location, loc2: Location
) -> float:
    """Exact network distance between two locations."""
    best = direct_distance(loc1, loc2)
    best = math.inf if best is None else best
    dists = dijkstra(graph, location_seeds(graph, loc1))
    for node, offset in location_seeds(graph, loc2):
        reach = dists.get(node)
        if reach is not None:
            best = min(best, reach + offset)
    return best


def _point_locations(points) -> Mapping[int, Location]:
    if isinstance(points, NodePointSet):
        return {pid: node for pid, node in points.items()}
    if isinstance(points, EdgePointSet):
        return {pid: loc for pid, loc in points.items()}
    raise TypeError(f"unsupported point set {type(points).__name__}")


def _distance_to_location(
    graph: Graph,
    node_dists: Mapping[int, float],
    origin: Location,
    target: Location,
) -> float:
    """Distance from the origin of ``node_dists`` to ``target``.

    ``node_dists`` must come from :func:`dijkstra` seeded at ``origin``;
    the same-edge direct segment between the two locations is added on
    top of the node-mediated paths.
    """
    best = direct_distance(origin, target)
    best = math.inf if best is None else best
    for node, offset in location_seeds(graph, target):
        reach = node_dists.get(node)
        if reach is not None:
            best = min(best, reach + offset)
    return best


def _query_distance(
    graph: Graph,
    point_loc: Location,
    node_dists: Mapping[int, float],
    query_locs: list[Location],
) -> float:
    """Distance from a point to the nearest of the query locations."""
    best = math.inf
    for query_loc in query_locs:
        direct = direct_distance(point_loc, query_loc)
        if direct is not None:
            best = min(best, direct)
    for node, offset in location_seeds(graph, point_loc):
        reach = node_dists.get(node)
        if reach is not None:
            best = min(best, reach + offset)
    return best


def brute_force_rknn(
    graph: Graph,
    points,
    query: Location | list[Location],
    k: int = 1,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[int]:
    """Monochromatic RkNN by exhaustive per-point checking.

    ``query`` may be a single location or a list of locations (the
    continuous-query case, where the distance to the query is the
    minimum over the route's nodes, Section 5.1).
    """
    return brute_force_brknn(graph, points, points, query, k, exclude)


def brute_force_brknn(
    graph: Graph,
    data_points,
    ref_points,
    query: Location | list[Location],
    k: int = 1,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[int]:
    """Bichromatic RkNN oracle: data points whose k NNs *among the
    reference points* include the query.  With ``ref_points is
    data_points`` this degenerates to the monochromatic case (a point
    never counts against itself)."""
    query_locs = query if isinstance(query, list) else [query]
    query_seeds: list[tuple[int, float]] = []
    for loc in query_locs:
        query_seeds.extend(location_seeds(graph, loc))
    query_dists = dijkstra(graph, query_seeds)
    data_locs = _point_locations(data_points)
    ref_locs = _point_locations(ref_points)
    result = []
    for pid, ploc in data_locs.items():
        if pid in exclude:
            continue
        rough = _query_distance(graph, ploc, query_dists, query_locs)
        if math.isinf(rough):
            continue  # the query is unreachable from p
        # Re-derive both d(p, q) and every d(p, other) from a single
        # expansion around p, so exact ties (e.g. a point residing on the
        # query node) compare consistently under floating point -- the
        # query-side and point-side path sums may differ in the last ulp.
        cutoff = rough * (1.0 + 1e-9) + 1e-9
        point_dists = dijkstra(graph, location_seeds(graph, ploc), cutoff=cutoff)
        dist_pq = min(
            _distance_to_location(graph, point_dists, ploc, loc)
            for loc in query_locs
        )
        strictly_closer = 0
        for other, oloc in ref_locs.items():
            if other == pid or other in exclude:
                continue
            dist_po = _distance_to_location(graph, point_dists, ploc, oloc)
            if dist_po < dist_pq:
                strictly_closer += 1
                if strictly_closer >= k:
                    break
        if strictly_closer < k:
            result.append(pid)
    return sorted(result)


def brute_force_knn(
    graph: Graph,
    points,
    source: Location,
    k: int,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[tuple[int, float]]:
    """The k nearest points of a location, by exhaustive distances."""
    dists = dijkstra(graph, location_seeds(graph, source))
    ranked = []
    for pid, ploc in _point_locations(points).items():
        if pid in exclude:
            continue
        dist = _distance_to_location(graph, dists, source, ploc)
        if not math.isinf(dist):
            ranked.append((dist, pid))
    ranked.sort()
    return [(pid, dist) for dist, pid in ranked[:k]]
