"""Nearest-neighbor primitives on restricted networks.

Three queries from paper Section 3.1:

* :func:`knn` -- the k nearest data points of a node;
* :func:`range_nn` -- ``range-NN(n, k, e)``: the k nearest data points
  at distance *strictly smaller* than ``e`` (possibly fewer);
* :func:`verify` -- ``verify(p, k, q)``: whether the query location is
  among the k nearest neighbors of data point ``p``, implemented as a
  range-NN around ``p`` that terminates as soon as ``q`` is met.

Tie handling follows the RkNN definition
``RkNN(q) = {p | d(p, q) <= d(p, p_k(p))}``: a point belongs to the
result when *fewer than k* other points are **strictly** closer to it
than the query, so ties favor the query.

When the view carries a bound provider (``view.bounds``, see
:mod:`repro.oracle`), probes and verifications first consult the
answer-preserving pruning rules of :mod:`repro.oracle.prune`:
provably-empty probes skip their expansion, probes with a proven
result horizon stop early, and verifications the bounds decide
outright never expand at all.  Answers are bitwise identical either
way; only the expansion work shrinks.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from typing import AbstractSet, Iterable

from repro.core.expansion import expand_nodes
from repro.core.numeric import inflate_bound, strictly_less
from repro.core.network import NetworkView
from repro.oracle.prune import probe_plan, verify_plan

_EMPTY: frozenset[int] = frozenset()


def knn(
    view: NetworkView,
    source: int,
    k: int,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[tuple[int, float]]:
    """The ``k`` nearest data points of node ``source`` (ascending)."""
    return range_nn(view, source, k, math.inf, exclude)


def range_nn(
    view: NetworkView,
    source: int,
    k: int,
    radius: float,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[tuple[int, float]]:
    """``range-NN(source, k, radius)``: up to ``k`` points with distance
    strictly below ``radius``, in ascending distance order."""
    view.tracker.range_nn_calls += 1
    result: list[tuple[int, float]] = []
    if k <= 0 or radius <= 0:
        return result
    skip, horizon = probe_plan(view, source, k, radius, exclude)
    if skip:
        return result
    for node, dist in expand_nodes(view, [(source, 0.0)], max_dist=horizon):
        if not strictly_less(dist, radius):
            break
        pid = view.point_at(node)
        if pid is not None and pid not in exclude:
            result.append((pid, dist))
            if len(result) == k:
                break
    return result


def verify(
    view: NetworkView,
    pid: int,
    k: int,
    targets: Iterable[int],
    bound: float,
    exclude: AbstractSet[int] = _EMPTY,
) -> bool:
    """``verify(p, k, q)``: is the query among the k NNs of point ``p``?

    Expands the network around ``p`` until a target node is met (for
    single-point queries ``targets`` holds the query node; continuous
    queries pass every node of the route, per Section 5.1).  ``bound``
    is any upper bound of ``d(p, q)`` -- the search fails once the
    frontier passes it.  Returns ``True`` iff fewer than ``k`` data
    points (other than ``p`` and ``exclude``) lie strictly closer to
    ``p`` than the first target met.
    """
    view.tracker.verifications += 1
    target_set = set(targets)
    decision, bound = verify_plan(view, pid, k, target_set, bound, exclude)
    if decision is not None:
        return decision
    bound = inflate_bound(bound)  # survive fp noise when d(p, q) == bound
    start = view.node_of(pid)
    point_dists: list[float] = []  # ascending distances of points seen
    for node, dist in expand_nodes(view, [(start, 0.0)], max_dist=bound):
        strictly_closer = bisect_left(point_dists, dist)
        if node in target_set:
            return strictly_closer < k
        if strictly_closer >= k:
            # k points already lie strictly below every future frontier
            # distance, hence strictly below d(p, q): p cannot qualify.
            return False
        other = view.point_at(node)
        if other is not None and other != pid and other not in exclude:
            insort(point_dists, dist)
    return False
