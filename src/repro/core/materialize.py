"""Materialized K-NN lists: construction and maintenance (Section 4.1).

Full materialization of all pairwise distances needs ``|V|(|V|-1)/2``
entries; the paper instead stores, for every node, its ``K`` nearest
data points, where ``K`` bounds the ``k`` of any future query.  The
lists are built by the single-pass **all-NN** algorithm (Fig. 8) in
``O(K |E| log(K |E|))`` and kept up to date under point insertions and
deletions (Fig. 10), both implemented here.

Everything is expressed over *seeds* ``(node, point, distance)`` so the
same code serves restricted networks (one seed: the point's node at
distance 0) and unrestricted ones (two seeds: the edge endpoints at
their direct offsets).
"""

from __future__ import annotations

from bisect import insort
from typing import Iterable, Sequence

from repro.core.network import NetworkView
from repro.core.pq import CountingHeap
from repro.errors import MaterializationError
from repro.storage.buffer import BufferManager
from repro.storage.disk import KnnListStore
from repro.storage.page import DEFAULT_PAGE_SIZE

Seed = tuple[int, int, float]  # (node, point id, initial distance)


def all_nn(
    view: NetworkView,
    capacity: int,
    seeds: Iterable[Seed],
) -> dict[int, list[tuple[int, float]]]:
    """Compute the ``capacity`` nearest data points of every node.

    A single heap expands all points simultaneously (paper Fig. 8): an
    entry ``(d, node, point)`` means the point reaches the node at
    distance ``d``.  A node that already completed its list, or that
    the same point already visited, is ignored.  Each edge enters the
    heap at most ``capacity`` times per direction.
    """
    if capacity < 1:
        raise MaterializationError(f"K must be >= 1, got {capacity}")
    heap = CountingHeap(view.tracker)
    for node, pid, dist in seeds:
        heap.push(dist, (node, pid))
    lists: dict[int, list[tuple[int, float]]] = {}
    closed: set[tuple[int, int]] = set()
    while heap:
        dist, (node, pid) = heap.pop()
        if (node, pid) in closed:
            continue
        closed.add((node, pid))
        entries = lists.setdefault(node, [])
        if len(entries) >= capacity:
            continue
        entries.append((pid, dist))
        neighbors = view.neighbors(node)
        view.tracker.edges_expanded += len(neighbors)
        for nbr, weight in neighbors:
            if (nbr, pid) not in closed and len(lists.get(nbr, ())) < capacity:
                heap.push(dist + weight, (nbr, pid))
    return lists


class MaterializedKNN:
    """Disk-backed materialized K-NN lists with update maintenance."""

    def __init__(self, store: KnnListStore):
        self.store = store

    @property
    def capacity(self) -> int:
        return self.store.capacity

    @classmethod
    def build(
        cls,
        view: NetworkView,
        capacity: int,
        seeds: Iterable[Seed],
        buffer: BufferManager,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        order: Sequence[int] | None = None,
    ) -> "MaterializedKNN":
        """Run all-NN and lay the lists out on disk pages."""
        lists = all_nn(view, capacity, seeds)
        store = KnnListStore(
            view.num_nodes,
            capacity,
            lists,
            buffer,
            page_size=page_size,
            order=order,
        )
        return cls(store)

    def get(self, node: int) -> tuple[tuple[int, float], ...]:
        """Materialized list of ``node`` (charged read)."""
        return self.store.get(node)

    # -- maintenance -----------------------------------------------------

    def insert(self, view: NetworkView, pid: int, seeds: Iterable[tuple[int, float]]) -> int:
        """Propagate a new data point into the lists (Section 4.1).

        ``seeds`` are ``(node, distance)`` pairs locating the point.
        Expansion stops at nodes whose K-th neighbor is at least as
        close as the new point (ties keep the incumbent, matching the
        paper's insertion example).  Returns the number of updated nodes.
        """
        heap = CountingHeap(view.tracker)
        for node, dist in seeds:
            heap.push(dist, node)
        visited: set[int] = set()
        updated = 0
        while heap:
            dist, node = heap.pop()
            if node in visited:
                continue
            visited.add(node)
            view.tracker.nodes_visited += 1
            entries = list(self.store.get(node))
            if any(existing == pid for existing, _ in entries):
                raise MaterializationError(f"point {pid} already materialized")
            if len(entries) >= self.capacity and dist >= entries[-1][1]:
                continue  # the point does not improve this node's list
            insort(entries, (pid, dist), key=lambda item: item[1])
            del entries[self.capacity:]
            self.store.put(node, entries)
            updated += 1
            neighbors = view.neighbors(node)
            view.tracker.edges_expanded += len(neighbors)
            for nbr, weight in neighbors:
                if nbr not in visited:
                    heap.push(dist + weight, nbr)
        return updated

    def delete(self, view: NetworkView, pid: int, seeds: Iterable[tuple[int, float]]) -> int:
        """Remove a data point and repair every influenced list (Fig. 10).

        Step 1 expands around the deleted point, removing it from the
        lists of all *affected* nodes; the expansion stops at *border*
        nodes (whose lists do not change).  Step 2 refills the affected
        lists by a constrained expansion seeded with the border nodes'
        entries and the affected nodes' surviving entries.  Returns the
        number of affected nodes.
        """
        capacity = self.capacity
        # ---- step 1: find affected nodes, drop the deleted point --------
        heap = CountingHeap(view.tracker)
        for node, dist in seeds:
            heap.push(dist, node)
        visited: set[int] = set()
        affected: dict[int, list[tuple[int, float]]] = {}
        while heap:
            dist, node = heap.pop()
            if node in visited:
                continue
            visited.add(node)
            view.tracker.nodes_visited += 1
            entries = list(self.store.get(node))
            survivors = [entry for entry in entries if entry[0] != pid]
            if len(survivors) == len(entries):
                continue  # border node: list unchanged, do not expand
            affected[node] = survivors
            neighbors = view.neighbors(node)
            view.tracker.edges_expanded += len(neighbors)
            for nbr, weight in neighbors:
                if nbr not in visited:
                    heap.push(dist + weight, nbr)

        # ---- step 2: refill the affected lists ---------------------------
        refill = CountingHeap(view.tracker)
        for node, survivors in affected.items():
            for other, dist in survivors:
                refill.push(dist, (node, other))
            neighbors = view.neighbors(node)
            view.tracker.edges_expanded += len(neighbors)
            for nbr, weight in neighbors:
                if nbr in affected:
                    continue
                for other, dist in self.store.get(nbr):
                    if other != pid:
                        refill.push(dist + weight, (node, other))
        closed: set[tuple[int, int]] = set()
        while refill:
            dist, (node, other) = refill.pop()
            if (node, other) in closed:
                continue
            closed.add((node, other))
            entries = affected[node]
            known = any(existing == other for existing, _ in entries)
            if not known:
                if len(entries) >= capacity:
                    continue  # full again: farther candidates are dominated
                entries.append((other, dist))
            neighbors = view.neighbors(node)
            view.tracker.edges_expanded += len(neighbors)
            for nbr, weight in neighbors:
                if nbr in affected and (nbr, other) not in closed:
                    refill.push(dist + weight, (nbr, other))
        for node, entries in affected.items():
            self.store.put(node, entries)
        return len(affected)
