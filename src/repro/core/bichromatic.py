"""Bichromatic RkNN queries on restricted networks (Section 5.1).

``bRkNN(q)`` returns the data points ``p`` in P for which the query is
among the k nearest *reference* points (set Q) of ``p``.  The paper
reduces this to the monochromatic machinery run over Q: a node ``n``
qualifies when the query is among the k Q-nearest-neighbors of ``n``,
and the result is the P points residing on qualifying nodes.

Key simplification exploited by :func:`bichromatic_eager`: the main
expansion knows the exact distance ``d(n, q)`` when ``n`` is de-heaped,
so the same range-NN probe that implements the Lemma 1 prune *is* the
qualification test -- fewer than k Q-points strictly closer means the
node qualifies, no verification phase needed.
"""

from __future__ import annotations

from typing import AbstractSet

from repro.core.lazy import _LazyState, _lazy_verify
from repro.core.materialize import MaterializedKNN
from repro.core.network import NetworkView
from repro.core.nn import range_nn
from repro.core.numeric import strictly_less
from repro.core.pq import CountingHeap
from repro.errors import QueryError

_EMPTY: frozenset[int] = frozenset()


def bichromatic_eager(
    data_view: NetworkView,
    ref_view: NetworkView,
    query_node: int,
    k: int = 1,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[int]:
    """Bichromatic RkNN by eager expansion over the reference set.

    ``exclude`` removes reference (Q) points for the query's duration.
    """
    heap = CountingHeap(ref_view.tracker)
    heap.push(0.0, query_node)
    visited: set[int] = set()
    result: list[int] = []
    while heap:
        dist, node = heap.pop()
        if node in visited:
            continue
        visited.add(node)
        ref_view.tracker.nodes_visited += 1
        closer = range_nn(ref_view, node, k, dist, exclude)
        if len(closer) >= k:
            # k reference points strictly closer than the query: the node
            # does not qualify and (Lemma 1) neither does anything beyond.
            continue
        pid = data_view.point_at(node)
        if pid is not None:
            result.append(pid)
        neighbors = ref_view.neighbors(node)
        ref_view.tracker.edges_expanded += len(neighbors)
        for nbr, weight in neighbors:
            if nbr not in visited:
                heap.push(dist + weight, nbr)
    return sorted(result)


def bichromatic_eager_m(
    data_view: NetworkView,
    ref_view: NetworkView,
    materialized: MaterializedKNN,
    query_node: int,
    k: int = 1,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[int]:
    """Bichromatic RkNN using K-NN lists materialized *over Q*.

    The paper's adaptation (Section 5.1): "for eager-M, we simply
    materialize the set KNN(n) subset-of Q for each node n".
    """
    if k > materialized.capacity:
        raise QueryError(
            f"k={k} exceeds the materialized capacity K={materialized.capacity}"
        )
    heap = CountingHeap(ref_view.tracker)
    heap.push(0.0, query_node)
    visited: set[int] = set()
    result: list[int] = []
    while heap:
        dist, node = heap.pop()
        if node in visited:
            continue
        visited.add(node)
        ref_view.tracker.nodes_visited += 1
        raw = materialized.get(node)
        entries = [(pid, pdist) for pid, pdist in raw if pid not in exclude]
        closer = [entry for entry in entries if strictly_less(entry[1], dist)]
        if len(closer) >= k:
            continue
        truncated = (
            len(raw) == materialized.capacity
            and strictly_less(raw[-1][1], dist)
        )
        if truncated:
            # Points beyond the K-th stored entry could still be strictly
            # closer than the query: fall back to an exact probe.
            qualified = len(range_nn(ref_view, node, k, dist, exclude)) < k
        else:
            qualified = True  # the stored list covers everything below dist
        if not qualified:
            continue
        pid = data_view.point_at(node)
        if pid is not None:
            result.append(pid)
        neighbors = ref_view.neighbors(node)
        ref_view.tracker.edges_expanded += len(neighbors)
        for nbr, weight in neighbors:
            if nbr not in visited:
                heap.push(dist + weight, nbr)
    return sorted(result)


def bichromatic_lazy(
    data_view: NetworkView,
    ref_view: NetworkView,
    query_node: int,
    k: int = 1,
    exclude: AbstractSet[int] = _EMPTY,
) -> list[int]:
    """Bichromatic RkNN by lazy expansion over the reference set.

    Discovered reference points prune the traversal through the same
    counter/invalidation machinery as monochromatic lazy.  Because the
    counters can be incomplete when a node is de-heaped, each node that
    carries a P point is qualified with an exact range-NN probe.
    """
    state = _LazyState(ref_view, k)
    state.heap.push(0.0, query_node)
    targets = {query_node}
    checked: set[int] = set()
    result: list[int] = []
    while state.heap:
        dist, _, node = state.heap.pop()
        if node in state.processed:
            continue
        state.processed[node] = dist
        ref_view.tracker.nodes_visited += 1
        if state.count.get(node, 0) >= k:
            continue
        ref_pid = ref_view.point_at(node)
        if ref_pid is not None and ref_pid not in exclude and ref_pid not in checked:
            checked.add(ref_pid)
            # Pruning side effects only; reference points are not results.
            _lazy_verify(state, ref_pid, node, dist, targets, exclude)
            if state.count.get(node, 0) >= k:
                # The node itself is now known to be disqualified; its
                # data point (if any) fails too (the reference point is
                # strictly closer to it than the query, k times over).
                continue
        data_pid = data_view.point_at(node)
        if data_pid is not None:
            if len(range_nn(ref_view, node, k, dist, exclude)) < k:
                result.append(data_pid)
        entry_ids = []
        neighbors = ref_view.neighbors(node)
        ref_view.tracker.edges_expanded += len(neighbors)
        for nbr, weight in neighbors:
            if nbr not in state.processed:
                entry_ids.append(state.heap.push(dist + weight, nbr))
        if entry_ids:
            state.entries_of[node] = entry_ids
    return sorted(result)
