"""Network-expansion primitives (Dijkstra-style traversal).

The paper's algorithms are all built on incremental network expansion:
nodes are visited in ascending order of their network distance from one
or more sources (Section 2.2, Section 3.1).  :func:`expand_nodes` is a
generator so callers stop paying I/O the moment they stop iterating --
the adjacency list of a yielded node is only fetched if the caller asks
for the next node.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

from repro.core.network import NetworkView
from repro.core.pq import CountingHeap


def expand_nodes(
    view: NetworkView,
    sources: Iterable[tuple[int, float]],
    max_dist: float = math.inf,
) -> Iterator[tuple[int, float]]:
    """Yield ``(node, distance)`` in ascending distance from ``sources``.

    ``sources`` is a list of ``(node, initial_distance)`` pairs (several
    sources express expansions from edge locations or routes).  Nodes
    farther than ``max_dist`` are never yielded; each reachable node is
    yielded exactly once, at its true network distance from the nearest
    source.
    """
    heap = CountingHeap(view.tracker)
    for node, dist in sources:
        heap.push(dist, node)
    visited: set[int] = set()
    while heap:
        dist, node = heap.pop()
        if node in visited:
            continue
        if dist > max_dist:
            return
        visited.add(node)
        view.tracker.nodes_visited += 1
        yield node, dist
        neighbors = view.neighbors(node)
        view.tracker.edges_expanded += len(neighbors)
        for nbr, weight in neighbors:
            if nbr not in visited:
                ndist = dist + weight
                if ndist <= max_dist:
                    heap.push(ndist, nbr)


def distances_from(
    view: NetworkView,
    sources: Iterable[tuple[int, float]],
    max_dist: float = math.inf,
) -> dict[int, float]:
    """Materialize :func:`expand_nodes` into a ``node -> distance`` map."""
    return {node: dist for node, dist in expand_nodes(view, sources, max_dist)}
